"""Integration tests for the ``repro report`` CLI subcommand."""

import json

import pytest

from repro.cli import build_parser, main


def run_grid_into(store_dir, cells=("adversarial", "random")):
    """Fill a store with two saha_getoor WL cells via the real run path."""
    names = [
        f"ADV[algorithm=saha_getoor,order={order},workload=random]" for order in cells
    ]
    assert main(["run", *names, "--quiet", "--store", str(store_dir)]) == 0


class TestParser:
    def test_report_arguments(self):
        args = build_parser().parse_args(
            [
                "report", "/tmp/store", "--grid", "ADV", "--grid", "WL",
                "--html", "out", "--markdown", "r.md", "--quiet",
            ]
        )
        assert args.command == "report"
        assert args.store == "/tmp/store"
        assert args.grid == ["ADV", "WL"]
        assert args.html == "out"
        assert args.markdown == "r.md"
        assert args.quiet is True

    def test_grid_defaults_to_autodetect(self):
        args = build_parser().parse_args(["report", "s"])
        assert args.grid is None
        assert args.bench_dir == "."


class TestReportCommand:
    def test_end_to_end_html_and_markdown(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_grid_into(store)
        capsys.readouterr()
        html_dir = tmp_path / "report"
        md_path = tmp_path / "report.md"
        code = main(
            [
                "report", str(store),
                "--html", str(html_dir), "--markdown", str(md_path), "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "report: 2 cell(s)" in out
        html = (html_dir / "index.html").read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "saha_getoor" in html
        markdown = md_path.read_text()
        assert "Space–approximation tradeoff" in markdown
        assert "saha_getoor" in markdown

    def test_report_prints_markdown_by_default(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_grid_into(store, cells=("adversarial",))
        capsys.readouterr()
        assert main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "# Streaming set cover — tradeoff report" in out
        assert "Missing cells" in out

    def test_partial_grid_reports_missing_markers(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_grid_into(store, cells=("adversarial",))
        capsys.readouterr()
        assert main(["report", str(store), "--grid", "ADV"]) == 0
        out = capsys.readouterr().out
        assert "47 missing" in out
        assert "∅ missing" in out

    def test_empty_store_renders_instead_of_raising(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "empty"), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "report: 0 cell(s), 0 missing" in out

    def test_empty_store_with_grid_lists_every_cell_missing(self, tmp_path, capsys):
        assert (
            main(["report", str(tmp_path / "empty"), "--grid", "adversarial", "--quiet"])
            == 0
        )
        assert "48 missing" in capsys.readouterr().out

    def test_corrupt_entry_counted_not_fatal(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_grid_into(store, cells=("adversarial",))
        shard = store / "zz"
        shard.mkdir()
        (shard / "bad.json").write_text("{broken")
        capsys.readouterr()
        assert main(["report", str(store), "--quiet"]) == 0
        assert "1 unreadable" in capsys.readouterr().out

    def test_unknown_grid_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown grid"):
            main(["report", str(tmp_path), "--grid", "nope"])

    def test_bench_dir_section_included(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_grid_into(store, cells=("adversarial",))
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        (bench_dir / "BENCH_kernels.json").write_text(
            json.dumps(
                {
                    "schema": "bench_kernels/v1",
                    "grid": [{"n": 4, "m": 8, "greedy": {"speedup_numpy": 2.5}}],
                }
            )
        )
        capsys.readouterr()
        assert main(["report", str(store), "--bench-dir", str(bench_dir)]) == 0
        out = capsys.readouterr().out
        assert "Benchmark trajectory" in out
        assert "2.50x" in out

    def test_seed_override_matches_seeded_run(self, tmp_path, capsys):
        store = tmp_path / "store"
        name = "ADV[algorithm=saha_getoor,order=random,workload=random]"
        assert main(["run", name, "--seed", "5", "--quiet", "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["report", str(store), "--grid", name, "--seed", "5", "--quiet"]) == 0
        assert "0 missing" in capsys.readouterr().out
        assert main(["report", str(store), "--grid", name, "--quiet"]) == 0
        assert "1 missing" in capsys.readouterr().out

    def test_report_is_deterministic_across_invocations(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_grid_into(store)
        capsys.readouterr()
        assert main(["report", str(store)]) == 0
        first = capsys.readouterr().out
        assert main(["report", str(store)]) == 0
        assert capsys.readouterr().out == first
