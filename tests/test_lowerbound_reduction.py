"""Unit tests for the Lemma 3.4 / 4.5 reduction protocols."""

import pytest

from repro.communication.protocols.maxcover_protocol import FullExchangeMaxCoverProtocol
from repro.communication.protocols.setcover_protocol import FullExchangeSetCoverProtocol
from repro.lowerbound.dmc import DMCParameters
from repro.lowerbound.dsc import DSCParameters
from repro.lowerbound.reduction import (
    DisjViaSetCoverProtocol,
    GHDViaMaxCoverProtocol,
    evaluate_disj_reduction,
    evaluate_ghd_reduction,
)
from repro.problems.disjointness import sample_ddisj, sample_ddisj_no, sample_ddisj_yes
from repro.problems.ghd import sample_dghd_no, sample_dghd_yes
from repro.utils.rng import RandomSource


@pytest.fixture
def dsc_params():
    # Explicit t large enough that the embedded sets concentrate.
    return DSCParameters(universe_size=180, num_pairs=4, alpha=2, t=18)


@pytest.fixture
def dmc_params():
    return DMCParameters(num_pairs=3, epsilon=0.35)


class TestDisjReduction:
    def test_disjoint_inputs_answered_yes(self, dsc_params):
        rng = RandomSource(1)
        reduction = DisjViaSetCoverProtocol(
            FullExchangeSetCoverProtocol(solver="exact"),
            dsc_params,
            seed=rng.spawn(),
            decision_threshold=2,
        )
        t = dsc_params.resolved_t()
        for _ in range(4):
            instance = sample_ddisj_yes(t, seed=rng.spawn())
            assert reduction.execute(instance.alice, instance.bob).output == "Yes"

    def test_intersecting_inputs_answered_no(self, dsc_params):
        rng = RandomSource(2)
        reduction = DisjViaSetCoverProtocol(
            FullExchangeSetCoverProtocol(solver="exact"),
            dsc_params,
            seed=rng.spawn(),
            decision_threshold=2,
        )
        t = dsc_params.resolved_t()
        for _ in range(4):
            instance = sample_ddisj_no(t, seed=rng.spawn())
            assert reduction.execute(instance.alice, instance.bob).output == "No"

    def test_default_threshold_is_two_alpha(self, dsc_params):
        reduction = DisjViaSetCoverProtocol(
            FullExchangeSetCoverProtocol(), dsc_params, seed=1
        )
        assert reduction.decision_threshold == 2 * dsc_params.alpha

    def test_transcript_metadata(self, dsc_params):
        rng = RandomSource(3)
        reduction = DisjViaSetCoverProtocol(
            FullExchangeSetCoverProtocol(solver="exact"),
            dsc_params,
            seed=rng.spawn(),
            decision_threshold=2,
        )
        instance = sample_ddisj(dsc_params.resolved_t(), seed=rng.spawn())
        transcript = reduction.execute(instance.alice, instance.bob)
        record = transcript.metadata["embedding"]
        assert 0 <= record.special_index < dsc_params.num_pairs
        assert record.answer in ("Yes", "No")
        assert transcript.total_bits > 0

    def test_evaluate_helper(self, dsc_params):
        rng = RandomSource(4)
        reduction = DisjViaSetCoverProtocol(
            FullExchangeSetCoverProtocol(solver="exact"),
            dsc_params,
            seed=rng.spawn(),
            decision_threshold=2,
        )
        instances = [
            sample_ddisj(dsc_params.resolved_t(), seed=rng.spawn()) for _ in range(6)
        ]
        error, bits = evaluate_disj_reduction(reduction, instances)
        assert error <= 1 / 6
        assert bits > 0

    def test_evaluate_requires_instances(self, dsc_params):
        reduction = DisjViaSetCoverProtocol(
            FullExchangeSetCoverProtocol(), dsc_params, seed=1
        )
        with pytest.raises(ValueError):
            evaluate_disj_reduction(reduction, [])


class TestGHDReduction:
    def test_yes_instances(self, dmc_params):
        rng = RandomSource(5)
        reduction = GHDViaMaxCoverProtocol(
            FullExchangeMaxCoverProtocol(k=2, solver="exact"),
            dmc_params,
            seed=rng.spawn(),
        )
        a, b = dmc_params.resolved_set_sizes()
        for _ in range(3):
            instance = sample_dghd_yes(dmc_params.t1, a, b, seed=rng.spawn())
            assert reduction.execute(instance.alice, instance.bob).output == "Yes"

    def test_no_instances(self, dmc_params):
        rng = RandomSource(6)
        reduction = GHDViaMaxCoverProtocol(
            FullExchangeMaxCoverProtocol(k=2, solver="exact"),
            dmc_params,
            seed=rng.spawn(),
        )
        a, b = dmc_params.resolved_set_sizes()
        for _ in range(3):
            instance = sample_dghd_no(dmc_params.t1, a, b, seed=rng.spawn())
            assert reduction.execute(instance.alice, instance.bob).output == "No"

    def test_evaluate_helper(self, dmc_params):
        rng = RandomSource(7)
        reduction = GHDViaMaxCoverProtocol(
            FullExchangeMaxCoverProtocol(k=2, solver="exact"),
            dmc_params,
            seed=rng.spawn(),
        )
        a, b = dmc_params.resolved_set_sizes()
        instances = [
            sample_dghd_yes(dmc_params.t1, a, b, seed=rng.spawn()),
            sample_dghd_no(dmc_params.t1, a, b, seed=rng.spawn()),
        ]
        error, bits = evaluate_ghd_reduction(reduction, instances)
        assert error == 0.0
        assert bits > 0

    def test_evaluate_requires_instances(self, dmc_params):
        reduction = GHDViaMaxCoverProtocol(
            FullExchangeMaxCoverProtocol(k=2), dmc_params, seed=1
        )
        with pytest.raises(ValueError):
            evaluate_ghd_reduction(reduction, [])
