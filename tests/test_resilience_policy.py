"""Tests for retry policy, backoff, and the circuit breaker."""

from __future__ import annotations

import pytest

from repro.exceptions import CircuitOpenError, TransientTaskError
from repro.resilience.policy import (
    DEFAULT_POLICY,
    RETRY_ENV_VAR,
    CircuitBreaker,
    RetryPolicy,
    backoff_delay,
    parse_retry_spec,
    policy_from_env,
    retry_call,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError, match="breaker_threshold"):
            RetryPolicy(breaker_threshold=0)
        with pytest.raises(ValueError, match="max_pool_respawns"):
            RetryPolicy(max_pool_respawns=-1)

    def test_spec_round_trip(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_backoff=0.1,
            multiplier=3.0,
            max_backoff=2.0,
            jitter=0.25,
            timeout=1.5,
            breaker_threshold=7,
            max_pool_respawns=2,
        )
        assert parse_retry_spec(policy.spec()) == policy

    def test_spec_without_timeout(self):
        assert "timeout" not in RetryPolicy(timeout=None).spec()


class TestParseRetrySpec:
    def test_unset_fields_keep_defaults(self):
        policy = parse_retry_spec("attempts=7")
        assert policy.max_attempts == 7
        assert policy.base_backoff == DEFAULT_POLICY.base_backoff

    def test_timeout_disabling_spellings(self):
        for value in ("none", "0", "off"):
            assert parse_retry_spec(f"timeout={value}").timeout is None

    def test_bad_clause_rejected(self):
        with pytest.raises(ValueError, match="bad retry clause"):
            parse_retry_spec("bogus=1")
        with pytest.raises(ValueError, match="bad retry clause"):
            parse_retry_spec("attempts")

    def test_base_policy_overlay(self):
        base = RetryPolicy(max_attempts=9, jitter=0.0)
        policy = parse_retry_spec("backoff=0.5", base=base)
        assert policy.max_attempts == 9
        assert policy.base_backoff == 0.5

    def test_policy_from_env(self, monkeypatch):
        monkeypatch.delenv(RETRY_ENV_VAR, raising=False)
        assert policy_from_env() == DEFAULT_POLICY
        monkeypatch.setenv(RETRY_ENV_VAR, "attempts=4,timeout=2")
        policy = policy_from_env()
        assert policy.max_attempts == 4
        assert policy.timeout == 2.0


class TestBackoffDelay:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, jitter=0.0, max_backoff=10.0)
        assert backoff_delay(policy, 1) == pytest.approx(0.1)
        assert backoff_delay(policy, 2) == pytest.approx(0.2)
        assert backoff_delay(policy, 3) == pytest.approx(0.4)

    def test_capped_at_max_backoff(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=10.0, jitter=0.0, max_backoff=0.3)
        assert backoff_delay(policy, 5) == pytest.approx(0.3)

    def test_attempt_zero_is_free(self):
        assert backoff_delay(DEFAULT_POLICY, 0) == 0.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, jitter=0.5)
        delays = [backoff_delay(policy, 1, seed=s, path=("T",)) for s in range(32)]
        assert delays == [backoff_delay(policy, 1, seed=s, path=("T",)) for s in range(32)]
        assert all(0.05 <= d <= 0.1 for d in delays)
        # Different seeds actually decorrelate.
        assert len(set(delays)) > 1


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        breaker.check()  # still closed
        breaker.record_failure()
        assert breaker.open
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.open
        assert breaker.total_failures == 2

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)


class TestRetryCall:
    def test_passes_attempt_number(self):
        seen = []

        def flaky(attempt):
            seen.append(attempt)
            if attempt < 2:
                raise TransientTaskError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_backoff=0.0, jitter=0.0)
        assert retry_call(flaky, policy=policy, sleep=lambda s: None) == "ok"
        assert seen == [0, 1, 2]

    def test_exhausted_attempts_propagate_the_transient(self):
        def always_fails(attempt):
            raise TransientTaskError("still broken")

        policy = RetryPolicy(max_attempts=2, base_backoff=0.0, jitter=0.0)
        with pytest.raises(TransientTaskError):
            retry_call(always_fails, policy=policy, sleep=lambda s: None)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def buggy(attempt):
            calls.append(attempt)
            raise TypeError("a real bug")

        with pytest.raises(TypeError):
            retry_call(buggy, policy=RetryPolicy(max_attempts=5), sleep=lambda s: None)
        assert calls == [0]

    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_backoff=0.1, multiplier=2.0, jitter=0.5)

        def run_once():
            slept = []

            def flaky(attempt):
                if attempt < 3:
                    raise TransientTaskError("transient")
                return attempt

            retry_call(flaky, policy=policy, seed=7, path=("T",), sleep=slept.append)
            return slept

        first, second = run_once(), run_once()
        assert first == second
        assert len(first) == 3
