"""Wire-protocol tests: framing, determinism, bounds, sync/async helpers."""

from __future__ import annotations

import asyncio
import socket
import struct

import pytest

from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    STATUSES,
    FrameError,
    decode_frame,
    encode_frame,
    frame_length,
    make_response,
    read_message,
    recv_message,
    send_message,
)


class TestFraming:
    def test_round_trip(self):
        message = {"id": "r1", "kind": "maxcover", "params": {"k": 3}}
        frame = encode_frame(message)
        assert frame_length(frame[:4]) == len(frame) - 4
        assert decode_frame(frame[4:]) == message

    def test_encoding_is_deterministic(self):
        a = encode_frame({"b": 1, "a": {"y": 2, "x": 1}})
        b = encode_frame({"a": {"x": 1, "y": 2}, "b": 1})
        assert a == b

    def test_declared_oversize_rejected(self):
        prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="exceeds"):
            frame_length(prefix)

    def test_oversize_body_rejected_at_encode(self, monkeypatch):
        monkeypatch.setattr("repro.service.protocol.MAX_FRAME_BYTES", 16)
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame({"data": "x" * 64})

    def test_non_object_frame_rejected(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_frame(b"[1,2,3]")

    def test_undecodable_frame_rejected(self):
        with pytest.raises(FrameError, match="undecodable"):
            decode_frame(b"\xff\xfe not json")


class TestSyncHelpers:
    def test_socketpair_round_trip(self):
        left, right = socket.socketpair()
        try:
            send_message(left, {"id": "r9", "kind": "ping"})
            assert recv_message(right) == {"id": "r9", "kind": "ping"}
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_message(right) is None
        finally:
            right.close()

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame({"id": "r1", "kind": "cover"})
            left.sendall(frame[: len(frame) - 2])
            left.close()
            with pytest.raises(FrameError, match="mid-frame"):
                recv_message(right)
        finally:
            right.close()


class TestAsyncHelpers:
    def _reader_with(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_read_message_round_trip(self):
        async def go():
            reader = self._reader_with(encode_frame({"id": "r1", "kind": "health"}))
            return await read_message(reader)

        assert asyncio.run(go()) == {"id": "r1", "kind": "health"}

    def test_clean_eof_returns_none(self):
        async def go():
            return await read_message(self._reader_with(b""))

        assert asyncio.run(go()) is None

    def test_truncated_frame_raises(self):
        async def go():
            frame = encode_frame({"id": "r1", "kind": "cover"})
            return await read_message(self._reader_with(frame[:-3]))

        with pytest.raises(FrameError, match="mid-frame"):
            asyncio.run(go())


class TestResponses:
    def test_all_statuses_assemble(self):
        for status in STATUSES:
            response = make_response("r1", status, error="e")
            assert response["v"] == PROTOCOL_VERSION
            assert response["status"] == status

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="unknown response status"):
            make_response("r1", "wat")

    def test_extra_fields_pass_through(self):
        response = make_response("r1", "ok", result={"x": 1}, cached=True)
        assert response["cached"] is True and response["result"] == {"x": 1}
