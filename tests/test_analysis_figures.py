"""Figure-layer tests: sparklines, bars, and the text-fallback artifacts."""

import pytest

from repro.analysis.bench import BenchEntry, BenchTrajectory
from repro.analysis.figures import (
    FigureArtifact,
    bench_trajectory_figure,
    hbar,
    passes_vs_space_figure,
    space_vs_approximation_figure,
    sparkline,
)
from repro.analysis.tradeoff import Envelope, TradeoffPoint


def make_point(label="greedy", ratio=(1.0, 1.5, 2.0), space=(90.0, 100.0, 120.0), passes=(2.0, 2.0, 2.0)):
    return TradeoffPoint(
        group=(("algorithm", label),),
        count=4,
        ratio=Envelope(*ratio) if ratio else None,
        space=Envelope(*space) if space else None,
        passes=Envelope(*passes) if passes else None,
    )


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([1, 2, 3, 8]) == "▁▂▃█"

    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        assert sparkline([5], lo=0, hi=10) == "▅"


class TestHbar:
    def test_half_full(self):
        assert hbar(3, 6, width=4) == "██░░"

    def test_clamps_to_width(self):
        assert hbar(100, 10, width=4) == "████"

    def test_zero_max_is_empty(self):
        assert hbar(1, 0, width=3) == "░░░"

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            hbar(1, 1, width=0)


class TestSpaceVsApproximationFigure:
    def test_text_fallback_artifact(self):
        artifact = space_vs_approximation_figure([make_point()], use_mpl=False)
        assert isinstance(artifact, FigureArtifact)
        assert artifact.kind == "text"
        assert artifact.path is None
        assert "greedy" in artifact.text
        assert "ratio" in artifact.text

    def test_rows_sorted_by_median_space(self):
        big = make_point(label="big", space=(500.0, 600.0, 700.0))
        small = make_point(label="small", space=(10.0, 20.0, 30.0))
        artifact = space_vs_approximation_figure([big, small], use_mpl=False)
        assert artifact.text.index("small") < artifact.text.index("big")

    def test_no_usable_points_still_renders(self):
        artifact = space_vs_approximation_figure([], use_mpl=False)
        assert artifact.kind == "text"
        assert "no cells" in artifact.text

    def test_points_without_ratio_are_skipped(self):
        artifact = space_vs_approximation_figure(
            [make_point(ratio=None)], use_mpl=False
        )
        assert "no cells" in artifact.text

    def test_forcing_mpl_without_install_raises(self):
        from repro.analysis import figures

        if figures.HAVE_MATPLOTLIB:
            pytest.skip("matplotlib installed; forcing cannot fail")
        with pytest.raises(RuntimeError):
            space_vs_approximation_figure([make_point()], outdir=".", use_mpl=True)

    def test_no_outdir_means_text_even_with_mpl(self):
        artifact = space_vs_approximation_figure([make_point()], outdir=None)
        assert artifact.kind == "text"


class TestPassesVsSpaceFigure:
    def test_text_fallback_with_theory_overlay(self):
        artifact = passes_vs_space_figure(
            [make_point()], theory=[(1, 640.0), (2, 80.0)], use_mpl=False
        )
        assert artifact.kind == "text"
        assert "theory" in artifact.text
        assert "640" in artifact.text

    def test_without_theory(self):
        artifact = passes_vs_space_figure([make_point()], use_mpl=False)
        assert "theory" not in artifact.text
        assert "greedy" in artifact.text

    def test_empty_points_message(self):
        artifact = passes_vs_space_figure([], use_mpl=False)
        assert "no cells" in artifact.text


class TestBenchTrajectoryFigure:
    def test_sparkline_per_baseline(self):
        trajectory = BenchTrajectory(
            name="kernels",
            schema="bench_kernels/v1",
            entries=[BenchEntry("256x512", 4.9), BenchEntry("512x1024", 7.7)],
        )
        artifact = bench_trajectory_figure([trajectory], use_mpl=False)
        assert artifact.kind == "text"
        assert "kernels" in artifact.text
        assert "best 7.7x" in artifact.text

    def test_no_baselines_message(self):
        artifact = bench_trajectory_figure([], use_mpl=False)
        assert "no BENCH_" in artifact.text
