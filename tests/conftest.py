"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the reusable cross-backend harness (tests/kernel_conformance.py)
# importable from every test directory, including tests/property/.
_TESTS_DIR = str(Path(__file__).resolve().parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)

from repro.setcover.instance import SetCoverInstance, SetSystem
from repro.utils.rng import RandomSource
from repro.workloads.random_instances import plant_cover_instance, random_instance


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic random source shared by tests that need randomness."""
    return RandomSource(12345)


@pytest.fixture
def tiny_system() -> SetSystem:
    """A hand-written 6-element system with known optimum 2 ({0,1,2} ∪ {3,4,5})."""
    return SetSystem(
        6,
        [
            [0, 1, 2],
            [3, 4, 5],
            [0, 3],
            [1, 4],
            [2, 5],
            [0, 1, 2, 3],
        ],
    )


@pytest.fixture
def chain_system() -> SetSystem:
    """A system where greedy is forced to pick 3 sets but opt is 2."""
    # Classic greedy-vs-opt gadget: two sets partition the universe, a third
    # large set lures greedy away.
    return SetSystem(
        8,
        [
            [0, 1, 2, 3],          # left half (optimal)
            [4, 5, 6, 7],          # right half (optimal)
            [1, 2, 3, 4, 5, 6],    # greedy bait: largest but leaves both ends
            [0],
            [7],
        ],
    )


@pytest.fixture
def planted_instance() -> SetCoverInstance:
    """A medium planted-cover instance with known optimum 4."""
    return plant_cover_instance(
        universe_size=120, num_sets=30, cover_size=4, seed=777
    )


@pytest.fixture
def small_random_instance() -> SetCoverInstance:
    """A coverable random instance used by streaming integration tests."""
    return random_instance(universe_size=60, num_sets=25, seed=999)
