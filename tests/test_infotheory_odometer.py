"""Unit tests for the exact information odometer (Lemma 3.6 machinery)."""

import pytest

from repro.infotheory.odometer import InformationOdometer, truncate_at_budget


def uniform_bits_inputs():
    return [(x, y, 0.25) for x in (0, 1) for y in (0, 1)]


class TestOdometerReadings:
    def test_readings_monotone(self):
        # Round 1: Alice sends her bit.  Round 2: Bob sends his bit.
        odometer = InformationOdometer(
            uniform_bits_inputs(), lambda x, y: [("alice", x), ("bob", y)]
        )
        readings = odometer.readings()
        totals = [r.total for r in readings]
        assert totals == sorted(totals)
        assert readings[0].total == pytest.approx(0.0)
        assert readings[-1].total == pytest.approx(2.0)

    def test_per_direction_accounting(self):
        odometer = InformationOdometer(
            uniform_bits_inputs(), lambda x, y: [("alice", x), ("bob", y)]
        )
        after_first = odometer.reading_after(1)
        assert after_first.revealed_to_bob == pytest.approx(1.0)
        assert after_first.revealed_to_alice == pytest.approx(0.0)

    def test_silent_protocol_reveals_nothing(self):
        odometer = InformationOdometer(
            uniform_bits_inputs(), lambda x, y: ["hello", "world"]
        )
        assert odometer.final_information_cost() == pytest.approx(0.0)

    def test_correlated_inputs_reveal_less(self):
        # Bob already knows Alice's bit: sending it reveals nothing.
        inputs = [(0, 0, 0.5), (1, 1, 0.5)]
        odometer = InformationOdometer(inputs, lambda x, y: [("alice", x)])
        assert odometer.final_information_cost() == pytest.approx(0.0)

    def test_max_rounds(self):
        odometer = InformationOdometer(
            uniform_bits_inputs(), lambda x, y: [x, y, x ^ y]
        )
        assert odometer.max_rounds == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            InformationOdometer([], lambda x, y: [x])
        odometer = InformationOdometer(uniform_bits_inputs(), lambda x, y: [x])
        with pytest.raises(ValueError):
            odometer.reading_after(-1)


class TestTruncation:
    def test_budget_zero_allows_only_silent_prefix(self):
        odometer = InformationOdometer(
            uniform_bits_inputs(), lambda x, y: [("alice", x), ("bob", y)]
        )
        assert truncate_at_budget(odometer, 0.0) == 0

    def test_budget_one_allows_one_round(self):
        odometer = InformationOdometer(
            uniform_bits_inputs(), lambda x, y: [("alice", x), ("bob", y)]
        )
        assert truncate_at_budget(odometer, 1.0) == 1

    def test_large_budget_allows_everything(self):
        odometer = InformationOdometer(
            uniform_bits_inputs(), lambda x, y: [("alice", x), ("bob", y)]
        )
        assert truncate_at_budget(odometer, 10.0) == 2

    def test_negative_budget_rejected(self):
        odometer = InformationOdometer(uniform_bits_inputs(), lambda x, y: [x])
        with pytest.raises(ValueError):
            truncate_at_budget(odometer, -1.0)
