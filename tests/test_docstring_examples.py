"""Run the runnable examples in the audited module docstrings.

The docstring audit (repro.runtime, repro.kernels, repro.analysis) promises
every public module a module docstring *with a runnable example*; this suite
executes those examples via :mod:`doctest` so they cannot rot.
"""

import doctest
import importlib

import pytest

from repro.kernels import HAS_NUMPY

AUDITED_MODULES = [
    "repro.runtime",
    "repro.runtime.executor",
    "repro.runtime.scenarios",
    "repro.runtime.seeding",
    "repro.runtime.store",
    "repro.runtime.tasks",
    "repro.runtime.transport",
    "repro.kernels",
    "repro.kernels.base",
    "repro.kernels.pyint",
    pytest.param(
        "repro.kernels.numpy_backend",
        marks=pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy"),
    ),
    "repro.resilience",
    "repro.resilience.chaos",
    "repro.service",
    "repro.service.cache",
    "repro.service.client",
    "repro.service.deadline",
    "repro.service.instances",
    "repro.service.protocol",
    "repro.service.requests",
    "repro.resilience.degrade",
    "repro.resilience.durability",
    "repro.resilience.faults",
    "repro.resilience.policy",
    "repro.telemetry",
    "repro.telemetry.instrument",
    "repro.telemetry.metrics",
    "repro.telemetry.profiling",
    "repro.telemetry.schema",
    "repro.telemetry.session",
    "repro.telemetry.spans",
    "repro.analysis",
    "repro.analysis.bench",
    "repro.analysis.figures",
    "repro.analysis.loader",
    "repro.analysis.records",
    "repro.analysis.render",
    "repro.analysis.tradeoff",
]


@pytest.mark.parametrize("module_name", AUDITED_MODULES)
def test_module_docstring_example_runs(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} docstring has no runnable example"
    assert results.failed == 0


@pytest.mark.parametrize("module_name", AUDITED_MODULES)
def test_module_docstring_mentions_its_role(module_name):
    """Every audited docstring opens with a one-line summary sentence."""
    module = importlib.import_module(module_name)
    first_line = module.__doc__.strip().splitlines()[0]
    assert first_line.endswith((".", ":")) and len(first_line) > 20
