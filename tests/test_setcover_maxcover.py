"""Unit tests for the offline maximum coverage solvers."""

import pytest

from repro.setcover.instance import SetSystem
from repro.setcover.maxcover import (
    coverage_of,
    exact_max_coverage,
    greedy_max_coverage,
)


class TestGreedyMaxCoverage:
    def test_full_cover_when_k_large(self, tiny_system):
        chosen, value = greedy_max_coverage(tiny_system, k=6)
        assert value == 6

    def test_k_one_picks_largest(self, tiny_system):
        chosen, value = greedy_max_coverage(tiny_system, k=1)
        assert value == 4  # the {0,1,2,3} set
        assert chosen == [5]

    def test_k_zero(self, tiny_system):
        chosen, value = greedy_max_coverage(tiny_system, k=0)
        assert chosen == [] and value == 0

    def test_negative_k_rejected(self, tiny_system):
        with pytest.raises(ValueError):
            greedy_max_coverage(tiny_system, k=-1)

    def test_one_minus_one_over_e_guarantee(self, planted_instance):
        k = 3
        _, greedy_value = greedy_max_coverage(planted_instance.system, k)
        _, exact_value = exact_max_coverage(planted_instance.system, k)
        assert greedy_value >= (1 - 1 / 2.718281828) * exact_value

    def test_stops_when_no_gain(self):
        system = SetSystem(3, [[0, 1, 2], [0], [1]])
        chosen, value = greedy_max_coverage(system, k=3)
        assert value == 3
        assert len(chosen) == 1  # further sets add nothing


class TestExactMaxCoverage:
    def test_exact_at_least_greedy(self, tiny_system):
        for k in (1, 2, 3):
            _, greedy_value = greedy_max_coverage(tiny_system, k)
            _, exact_value = exact_max_coverage(tiny_system, k)
            assert exact_value >= greedy_value

    def test_exact_k2_on_tiny(self, tiny_system):
        chosen, value = exact_max_coverage(tiny_system, 2)
        assert value == 6
        assert len(chosen) == 2

    def test_candidate_restriction(self, tiny_system):
        chosen, value = exact_max_coverage(tiny_system, 2, candidate_indices=[2, 3, 4])
        assert set(chosen) <= {2, 3, 4}
        assert value == 4

    def test_k_exceeding_sets(self):
        system = SetSystem(4, [[0, 1], [2]])
        chosen, value = exact_max_coverage(system, k=5)
        assert value == 3
        assert len(chosen) == 2

    def test_negative_k_rejected(self, tiny_system):
        with pytest.raises(ValueError):
            exact_max_coverage(tiny_system, -2)


class TestCoverageOf:
    def test_matches_system_coverage(self, tiny_system):
        assert coverage_of(tiny_system, [0, 2]) == tiny_system.coverage([0, 2])

    def test_empty(self, tiny_system):
        assert coverage_of(tiny_system, []) == 0
