"""Unit tests for the hard set cover distribution D_SC."""

import pytest

from repro.exceptions import DistributionError
from repro.lowerbound.dsc import (
    DSCParameters,
    sample_dsc,
    sample_dsc_random_partition,
)
from repro.lowerbound.properties import (
    check_remark_3_1,
    good_index_fraction,
    good_indices,
)
from repro.setcover.exact import exact_cover_value
from repro.utils.bitset import bitset_size, universe_mask
from repro.utils.rng import RandomSource


@pytest.fixture
def params():
    return DSCParameters(universe_size=120, num_pairs=6, alpha=2, t=6)


class TestParameters:
    def test_resolved_t_default(self):
        parameters = DSCParameters(universe_size=1024, num_pairs=64, alpha=2)
        t = parameters.resolved_t()
        assert 1 <= t <= 1024

    def test_resolved_t_explicit(self, params):
        assert params.resolved_t() == 6

    def test_invalid_t(self):
        with pytest.raises(DistributionError):
            DSCParameters(universe_size=10, num_pairs=2, alpha=1, t=20).resolved_t()

    def test_invalid_universe(self):
        with pytest.raises(DistributionError):
            DSCParameters(universe_size=1, num_pairs=2, alpha=1)

    def test_invalid_alpha(self):
        with pytest.raises(DistributionError):
            DSCParameters(universe_size=16, num_pairs=2, alpha=0)


class TestSampling:
    def test_shapes(self, params):
        instance = sample_dsc(params, seed=1)
        assert len(instance.alice_sets) == 6
        assert len(instance.bob_sets) == 6
        assert instance.set_system().num_sets == 12

    def test_theta_forced(self, params):
        assert sample_dsc(params, seed=2, theta=0).theta == 0
        assert sample_dsc(params, seed=2, theta=1).theta == 1

    def test_invalid_theta(self, params):
        with pytest.raises(DistributionError):
            sample_dsc(params, seed=2, theta=2)

    def test_special_index_only_when_theta_one(self, params):
        assert sample_dsc(params, seed=3, theta=0).special_index is None
        assert sample_dsc(params, seed=3, theta=1).special_index is not None

    def test_pair_union_structure(self, params):
        # Remark 3.1-(iii): S_i ∪ T_i = [n] \ f_i(A_i ∩ B_i).
        instance = sample_dsc(params, seed=4, theta=0)
        full = universe_mask(instance.universe_size)
        for i in range(instance.num_pairs):
            pair = instance.disjointness[i]
            mapping = instance.mappings[i]
            expected = full & ~mapping.extend_mask(pair.intersection)
            assert instance.pair_union_mask(i) == expected

    def test_theta_one_special_pair_covers(self, params):
        instance = sample_dsc(params, seed=5, theta=1)
        special = instance.special_index
        assert instance.pair_union_mask(special) == universe_mask(instance.universe_size)
        assert instance.planted_opt == 2

    def test_theta_zero_no_pair_covers(self, params):
        instance = sample_dsc(params, seed=6, theta=0)
        full = universe_mask(instance.universe_size)
        for i in range(instance.num_pairs):
            assert instance.pair_union_mask(i) != full

    def test_exact_opt_gap_weak(self, params):
        # θ=1 gives opt 2 (or 1 in degenerate cases); θ=0 gives opt > 2.
        opt_theta1 = exact_cover_value(sample_dsc(params, seed=7, theta=1).set_system())
        opt_theta0 = exact_cover_value(sample_dsc(params, seed=7, theta=0).set_system())
        assert opt_theta1 <= 2
        assert opt_theta0 > 2

    def test_remark_checks_pass(self, params):
        rng = RandomSource(8)
        for theta in (0, 1):
            instance = sample_dsc(params, seed=rng.spawn(), theta=theta)
            checks = check_remark_3_1(instance)
            assert all(check.holds for check in checks), [
                (c.name, c.detail) for c in checks if not c.holds
            ]

    def test_set_sizes_not_trivial(self, params):
        instance = sample_dsc(params, seed=9)
        sizes = [bitset_size(m) for m in instance.alice_sets + instance.bob_sets]
        n = instance.universe_size
        assert all(0 < size <= n for size in sizes)

    def test_communication_inputs_split(self, params):
        instance = sample_dsc(params, seed=10)
        alice, bob = instance.communication_inputs()
        assert alice.num_sets == instance.num_pairs
        assert bob.num_sets == instance.num_pairs
        assert set(alice.sets) == set(range(instance.num_pairs))
        assert set(bob.sets) == set(
            range(instance.num_pairs, 2 * instance.num_pairs)
        )


class TestRandomPartition:
    def test_partition_covers_all_sets(self, params):
        instance, alice, bob, assignment = sample_dsc_random_partition(params, seed=11)
        assert len(assignment) == 2 * instance.num_pairs
        assert set(alice.sets) | set(bob.sets) == set(assignment)
        assert not (set(alice.sets) & set(bob.sets))

    def test_good_indices_definition(self, params):
        instance, _alice, _bob, assignment = sample_dsc_random_partition(params, seed=12)
        for index in good_indices(assignment, instance.num_pairs):
            assert assignment[index] != assignment[index + instance.num_pairs]

    def test_good_fraction_concentrates_near_half(self):
        parameters = DSCParameters(universe_size=64, num_pairs=40, alpha=2, t=4)
        rng = RandomSource(13)
        fractions = [
            good_index_fraction(
                sample_dsc_random_partition(parameters, seed=rng.spawn())[3], 40
            )
            for _ in range(20)
        ]
        mean = sum(fractions) / len(fractions)
        assert 0.4 <= mean <= 0.6
