"""Regenerate tests/data/golden_report.md from the renderer fixture.

Run after an *intentional* report-format change::

    PYTHONPATH=src python tests/regen_golden_report.py

then review the golden diff like any other code change.
"""

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).parent))

from test_analysis_render import GOLDEN_PATH, fixture_analysis, fixture_bench  # noqa: E402

from repro.analysis.render import build_report, render_markdown  # noqa: E402


def main() -> None:
    doc = build_report(
        fixture_analysis(),
        bench=fixture_bench(),
        title="Golden fixture report",
        use_mpl=False,
    )
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(render_markdown(doc))
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
