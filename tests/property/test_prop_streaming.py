"""Property-based tests for the streaming substrate and preprocessing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    EmekRosenSemiStreaming,
    IterativePruningSetCover,
    McGregorVuMaxCoverage,
    ProgressiveGreedyPasses,
    SahaGetoorGreedy,
    StoreEverythingMaxCover,
    StoreEverythingSetCover,
)
from repro.core.maxcover_stream import StreamingMaxCoverage
from repro.core.value_estimation import CountingBoundEstimator
from repro.kernels import HAS_NUMPY
from repro.setcover.exact import exact_cover_value, exact_set_cover
from repro.setcover.instance import SetSystem
from repro.setcover.preprocess import preprocess
from repro.setcover.verify import is_feasible_cover, verify_cover
from repro.streaming.engine import run_streaming_algorithm
from repro.streaming.space import SpaceMeter
from repro.streaming.stream import SetStream, StreamOrder
from repro.workloads.io import dumps_instance, loads_instance
from repro.setcover.instance import SetCoverInstance


@st.composite
def coverable_systems(draw, max_universe=16, max_sets=8):
    n = draw(st.integers(min_value=1, max_value=max_universe))
    m = draw(st.integers(min_value=1, max_value=max_sets))
    sets = [
        draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
        for _ in range(m)
    ]
    covered = set().union(*sets) if sets else set()
    missing = set(range(n)) - covered
    if missing:
        sets[0] = set(sets[0]) | missing
    return SetSystem(n, sets)


@st.composite
def arbitrary_systems(draw, max_universe=16, max_sets=8):
    n = draw(st.integers(min_value=1, max_value=max_universe))
    m = draw(st.integers(min_value=1, max_value=max_sets))
    sets = [
        draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
        for _ in range(m)
    ]
    return SetSystem(n, sets)


class TestStreamProperties:
    @given(arbitrary_systems(), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_random_order_is_permutation(self, system, seed):
        stream = SetStream(system, order=StreamOrder.RANDOM, seed=seed)
        indices = [index for index, _ in stream.iterate_pass()]
        assert sorted(indices) == list(range(system.num_sets))

    @given(arbitrary_systems(), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_masks_match_system(self, system, seed):
        stream = SetStream(system, order=StreamOrder.RANDOM, seed=seed)
        for index, mask in stream.iterate_pass():
            assert mask == system.mask(index)

    @given(arbitrary_systems(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_pass_counter_matches_iterations(self, system, passes):
        stream = SetStream(system)
        for _ in range(passes):
            list(stream.iterate_pass())
        assert stream.passes_consumed == passes


class TestSpaceMeterProperties:
    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 100)), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_peak_is_max_of_running_totals(self, updates):
        meter = SpaceMeter()
        running_peak = 0
        for category, words in updates:
            meter.set_usage(category, words)
            running_peak = max(running_peak, meter.current_words)
        assert meter.peak_words == running_peak
        assert meter.peak_words >= meter.current_words


class TestStreamingAlgorithmProperties:
    @given(coverable_systems(), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_single_pass_greedy_feasible_any_order(self, system, seed):
        result = run_streaming_algorithm(
            SahaGetoorGreedy(),
            system,
            order=StreamOrder.RANDOM,
            seed=seed,
            verify_solution=False,
        )
        assert is_feasible_cover(system, result.solution)
        assert result.passes == 1


class TestPreprocessProperties:
    @given(coverable_systems())
    @settings(max_examples=40, deadline=None)
    def test_preprocessing_preserves_optimum(self, system):
        original_opt = exact_cover_value(system)
        result = preprocess(system)
        if result.residual_target_mask == 0:
            reduced_solution = []
        else:
            reduced_solution = exact_set_cover(
                result.system, target_mask=result.residual_target_mask
            )
        lifted = result.lift_solution(reduced_solution)
        verify_cover(system, lifted)
        assert len(lifted) == original_opt

    @given(coverable_systems())
    @settings(max_examples=40, deadline=None)
    def test_forced_picks_are_original_indices(self, system):
        result = preprocess(system)
        assert all(0 <= i < system.num_sets for i in result.forced_picks)
        assert all(0 <= i < system.num_sets for i in result.kept_indices)


#: Constructors for every streaming algorithm in the batched pipeline; each
#: call builds a fresh instance (the rng-carrying ones get fixed seeds so the
#: python/numpy runs consume identical streams).
_PARITY_ALGORITHMS = [
    ("emek-rosen", lambda: EmekRosenSemiStreaming()),
    ("saha-getoor", lambda: SahaGetoorGreedy()),
    ("saha-getoor-frac", lambda: SahaGetoorGreedy(threshold_fraction=0.25)),
    ("demaine", lambda: ProgressiveGreedyPasses(num_passes=3)),
    ("har-peled", lambda: IterativePruningSetCover(alpha=2, opt_guess=3, seed=101)),
    ("mcgregor-vu", lambda: McGregorVuMaxCoverage(k=2, sketch_size=3, seed=202)),
    ("store-setcover", lambda: StoreEverythingSetCover(solver="greedy")),
    ("store-maxcover", lambda: StoreEverythingMaxCover(k=2, solver="greedy")),
    (
        "streaming-maxcover",
        lambda: StreamingMaxCoverage(k=2, epsilon=0.5, solver="greedy", seed=303),
    ),
    ("counting-bound", lambda: CountingBoundEstimator()),
]


@pytest.mark.skipif(not HAS_NUMPY, reason="NumPy backend not installed")
class TestKernelBackendParity:
    """Whole streaming runs must be byte-identical across kernel backends.

    The equivalent of ``REPRO_KERNEL=python`` vs ``REPRO_KERNEL=numpy``
    parity, pinned per-system via ``backend=`` so both run in one process:
    every baseline plus the streaming max-coverage subroutine must produce
    the same :class:`StreamingResult` — solution, estimate, pass count,
    full space report, metadata — on both backends, under adversarial and
    random arrival orders alike.
    """

    @given(coverable_systems(), st.sampled_from([None, 7, 12345]))
    @settings(max_examples=25, deadline=None)
    def test_streaming_results_identical_across_backends(self, system, order_seed):
        order = StreamOrder.ADVERSARIAL if order_seed is None else StreamOrder.RANDOM
        masks = system.masks()
        n = system.universe_size
        for label, build in _PARITY_ALGORITHMS:
            results = {}
            for backend in ("python", "numpy"):
                pinned = SetSystem.from_masks(n, masks, backend=backend)
                assert pinned.backend == backend
                results[backend] = run_streaming_algorithm(
                    build(),
                    pinned,
                    order=order,
                    seed=order_seed,
                    verify_solution=False,
                )
            python_result, numpy_result = results["python"], results["numpy"]
            assert python_result == numpy_result, (
                f"{label} diverged across kernel backends"
            )


class TestSerializationProperties:
    @given(arbitrary_systems())
    @settings(max_examples=40, deadline=None)
    def test_text_round_trip(self, system):
        instance = SetCoverInstance(system)
        rebuilt = loads_instance(dumps_instance(instance))
        assert rebuilt.system == system
