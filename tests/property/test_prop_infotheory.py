"""Property-based tests for the information-theory toolkit.

These exercise the identities the paper's Appendix A relies on over random
small joint distributions, so the exact-computation code paths (marginals,
conditionals, chain rule) are validated beyond the handcrafted cases.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.distributions import JointDistribution
from repro.infotheory.entropy import (
    conditional_entropy,
    conditional_mutual_information,
    entropy,
    mutual_information,
)
from repro.infotheory.facts import (
    check_fact_a4,
    check_fact_chain_rule,
    check_fact_conditioning_reduces_entropy,
    check_fact_entropy_bounds,
    check_fact_mi_nonnegative,
)


@st.composite
def random_joints(draw, num_variables=3, max_support=2):
    """A random joint over `num_variables` binary-ish variables."""
    variables = [f"V{i}" for i in range(num_variables)]
    assignments = []
    for v0 in range(max_support):
        for v1 in range(max_support):
            for v2 in range(max_support):
                assignments.append((v0, v1, v2)[:num_variables])
    weights = [
        draw(st.integers(min_value=0, max_value=20)) for _ in range(len(assignments))
    ]
    if sum(weights) == 0:
        weights[0] = 1
    total = sum(weights)
    pmf = {
        assignment: weight / total
        for assignment, weight in zip(assignments, weights)
        if weight > 0
    }
    return JointDistribution(variables, pmf)


class TestEntropyProperties:
    @given(random_joints())
    @settings(max_examples=60, deadline=None)
    def test_entropy_bounds(self, joint):
        assert check_fact_entropy_bounds(joint, "V0")

    @given(random_joints())
    @settings(max_examples=60, deadline=None)
    def test_mi_nonnegative(self, joint):
        assert check_fact_mi_nonnegative(joint, ["V0"], ["V1"])

    @given(random_joints())
    @settings(max_examples=60, deadline=None)
    def test_conditioning_reduces_entropy(self, joint):
        assert check_fact_conditioning_reduces_entropy(joint, "V0", ["V1"], ["V2"])

    @given(random_joints())
    @settings(max_examples=60, deadline=None)
    def test_chain_rule(self, joint):
        assert check_fact_chain_rule(joint, "V0", "V1", "V2")

    @given(random_joints())
    @settings(max_examples=60, deadline=None)
    def test_fact_a4(self, joint):
        assert check_fact_a4(joint, "V0", "V1", "V2")

    @given(random_joints())
    @settings(max_examples=60, deadline=None)
    def test_mi_symmetry(self, joint):
        lhs = mutual_information(joint, ["V0"], ["V1"])
        rhs = mutual_information(joint, ["V1"], ["V0"])
        assert math.isclose(lhs, rhs, abs_tol=1e-7)

    @given(random_joints())
    @settings(max_examples=60, deadline=None)
    def test_joint_entropy_decomposition(self, joint):
        # H(X, Y) = H(X) + H(Y | X).
        lhs = entropy(joint, ["V0", "V1"])
        rhs = entropy(joint, ["V0"]) + conditional_entropy(joint, ["V1"], ["V0"])
        assert math.isclose(lhs, rhs, abs_tol=1e-7)

    @given(random_joints())
    @settings(max_examples=60, deadline=None)
    def test_mi_upper_bounded_by_entropy(self, joint):
        assert mutual_information(joint, ["V0"], ["V1"]) <= entropy(joint, ["V0"]) + 1e-7

    @given(random_joints())
    @settings(max_examples=60, deadline=None)
    def test_conditional_mi_nonnegative(self, joint):
        assert conditional_mutual_information(joint, ["V0"], ["V1"], ["V2"]) >= -1e-9
