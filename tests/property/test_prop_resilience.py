"""Property tests: fault recovery never changes bytes.

The resilience contract, stated as a property: for any fault schedule drawn
from the supported injection points, any worker count, and either kernel
backend, the executor's :class:`RunReport` payloads and the result store's
persisted entries are byte-identical to a fault-free serial run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import HAS_NUMPY, KERNEL_ENV_VAR
from repro.resilience.durability import canonical_json
from repro.resilience.faults import FAULTS_ENV_VAR
from repro.runtime import ResultStore, RuntimeTask, TaskExecutor, freeze_params
from repro.runtime.store import task_fingerprint

#: One schedule per injection point (plus "no faults"), each at a rate that
#: fires often but (until=1) always clears on the first retry.
FAULT_SPECS = (
    None,
    "seed={seed},executor.submit:raise:0.6:1",
    "seed={seed},executor.submit:crash:0.6:1",
    "seed={seed},executor.submit:corrupt:0.6:1",
    "seed={seed},store.put:torn:0.6:1",
    "seed={seed},engine.pass:raise:0.4:1",
    "seed={seed},kernel.make:raise:0.5:1",
)

BACKENDS = ("python", "numpy") if HAS_NUMPY else ("python",)


def grid_tasks():
    return [
        RuntimeTask(
            key=f"E12[t={t},seed={seed}]",
            runner="E12",
            params=freeze_params({"t": t}),
            seed=seed,
        )
        for t in (2, 3)
        for seed in (1, 2)
    ]


def run_grid(tmp_root: Path, env: dict, workers: int):
    """Run the grid under ``env`` overrides; return (payloads, store bytes)."""
    saved = {name: os.environ.get(name) for name in env}
    os.environ.update({k: v for k, v in env.items() if v is not None})
    for name, value in env.items():
        if value is None:
            os.environ.pop(name, None)
    try:
        store = ResultStore(tmp_root)
        report = TaskExecutor(workers=workers, store=store).run(grid_tasks())
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    payloads = [canonical_json(outcome.payload) for outcome in report.outcomes]
    entries = {}
    for task in grid_tasks():
        fingerprint = task_fingerprint(task)
        entry = json.loads(store.path_for(fingerprint).read_text())
        entries[fingerprint] = canonical_json(entry["result"])
    return payloads, entries


_baselines: dict = {}


def baseline(tmp_path_factory_root: Path, backend: str):
    """Fault-free serial reference for ``backend`` (computed once)."""
    if backend not in _baselines:
        root = tmp_path_factory_root / f"baseline-{backend}"
        _baselines[backend] = run_grid(
            root,
            {FAULTS_ENV_VAR: None, KERNEL_ENV_VAR: backend},
            workers=1,
        )
    return _baselines[backend]


class TestRecoveryParity:
    @given(
        spec_index=st.integers(min_value=0, max_value=len(FAULT_SPECS) - 1),
        fault_seed=st.integers(min_value=0, max_value=2**16),
        workers=st.sampled_from([1, 2, 4]),
        backend=st.sampled_from(BACKENDS),
    )
    @settings(max_examples=12, deadline=None)
    def test_faulted_runs_match_clean_serial_bytes(
        self, tmp_path_factory, spec_index, fault_seed, workers, backend
    ):
        shared_root = tmp_path_factory.getbasetemp()
        clean_payloads, clean_entries = baseline(shared_root, backend)

        template = FAULT_SPECS[spec_index]
        spec = template.format(seed=fault_seed) if template else None
        run_root = tmp_path_factory.mktemp("prop-resilience")
        payloads, entries = run_grid(
            run_root,
            {FAULTS_ENV_VAR: spec, KERNEL_ENV_VAR: backend},
            workers=workers,
        )
        assert payloads == clean_payloads
        assert entries == clean_entries

    @pytest.mark.skipif(not HAS_NUMPY, reason="needs both kernel backends")
    def test_backends_agree_on_clean_bytes(self, tmp_path_factory):
        shared_root = tmp_path_factory.getbasetemp()
        python_payloads, python_entries = baseline(shared_root, "python")
        numpy_payloads, numpy_entries = baseline(shared_root, "numpy")
        assert python_payloads == numpy_payloads
        assert python_entries == numpy_entries
