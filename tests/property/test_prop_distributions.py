"""Property-based tests for the hard-distribution samplers and gadgets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbound.dsc import DSCParameters, sample_dsc
from repro.lowerbound.mapping_extension import random_mapping_extension
from repro.problems.disjointness import sample_ddisj, sample_ddisj_no, sample_ddisj_yes
from repro.problems.ghd import ghd_answer, sample_dghd
from repro.utils.bitset import bitset_size, universe_mask

seeds = st.integers(min_value=0, max_value=10 ** 9)


class TestDisjointnessProperties:
    @given(st.integers(min_value=1, max_value=30), seeds)
    @settings(max_examples=60, deadline=None)
    def test_yes_instances_disjoint(self, t, seed):
        instance = sample_ddisj_yes(t, seed=seed)
        assert not (instance.alice & instance.bob)
        assert instance.alice <= frozenset(range(t))

    @given(st.integers(min_value=1, max_value=30), seeds)
    @settings(max_examples=60, deadline=None)
    def test_no_instances_single_intersection(self, t, seed):
        instance = sample_ddisj_no(t, seed=seed)
        assert len(instance.alice & instance.bob) == 1

    @given(st.integers(min_value=1, max_value=30), seeds)
    @settings(max_examples=60, deadline=None)
    def test_label_matches_structure(self, t, seed):
        instance = sample_ddisj(t, seed=seed)
        assert instance.is_disjoint == (instance.z == 0)


class TestGHDProperties:
    @given(st.integers(min_value=9, max_value=40), seeds)
    @settings(max_examples=40, deadline=None)
    def test_labelled_instances_respect_promise(self, t, seed):
        instance = sample_dghd(t, seed=seed)
        answer = ghd_answer(instance)
        if answer != "*":
            assert answer == instance.label


class TestMappingExtensionProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=60),
        seeds,
    )
    @settings(max_examples=60, deadline=None)
    def test_blocks_partition(self, t, extra, seed):
        n = t + extra
        mapping = random_mapping_extension(n, t, seed=seed)
        union = set()
        total = 0
        for i in range(t):
            block = mapping.image(i)
            assert not (union & block)
            union |= block
            total += len(block)
        assert union == set(range(n))
        assert total == n


class TestDscProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=6),
        seeds,
        st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=25, deadline=None)
    def test_structure_invariants(self, num_pairs, t, seed, theta):
        n = 12 * t
        parameters = DSCParameters(
            universe_size=n, num_pairs=num_pairs, alpha=2, t=t
        )
        instance = sample_dsc(parameters, seed=seed, theta=theta)
        full = universe_mask(n)
        # Every set is a subset of the universe (it may be empty at tiny t,
        # when an embedded A_i or B_i happens to be all of [t]).
        for mask in instance.alice_sets + instance.bob_sets:
            assert mask & ~full == 0
            assert 0 <= bitset_size(mask) <= n
        # Pair unions equal [n] minus the mapped intersection.
        for i in range(num_pairs):
            pair = instance.disjointness[i]
            expected = full & ~instance.mappings[i].extend_mask(pair.intersection)
            assert instance.pair_union_mask(i) == expected
        # θ = 1 plants exactly one disjoint pair; θ = 0 plants none.
        disjoint_pairs = [
            i for i in range(num_pairs) if instance.disjointness[i].is_disjoint
        ]
        if theta == 1:
            assert disjoint_pairs == [instance.special_index]
        else:
            assert disjoint_pairs == []
