"""Hypothesis differential suite for the compiled kernel backend.

Random set systems are pushed through *whole* solver and streaming runs on
every backend the registry knows about, and every observable is compared
against the pure-Python reference:

* full greedy set-cover traces (picks, per-step statistics, exceptions);
* whole :class:`~repro.streaming.algorithm_base.StreamingResult` objects for
  the one-pass baselines (Emek–Rosén exercises the parallel claim sweep,
  store-everything exercises greedy over restricted systems);
* the compiled backend at thread counts {1, 2, 4} with deliberately tiny
  chunks, pinning the parallel sweeps deterministic — byte-identical output
  at every thread count, on every drawn system.

Backends are enumerated from :func:`repro.kernels.kernel_registry`, so a
future fourth backend lands in this differential suite with no edits.
"""

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from kernel_conformance import assert_kernel_conformance, build_kernel, key_patterns
from repro.baselines import EmekRosenSemiStreaming, StoreEverythingSetCover
from repro.exceptions import InfeasibleInstanceError
from repro.kernels import registered_backends
from repro.kernels.pyint import PyIntKernel
from repro.setcover.greedy import greedy_cover_trace
from repro.setcover.instance import SetSystem
from repro.streaming.engine import run_streaming_algorithm
from repro.streaming.stream import StreamOrder

BACKENDS = registered_backends()
HAS_COMPILED = "compiled" in BACKENDS

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@st.composite
def mask_systems(draw, max_n=80, max_m=10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    masks = draw(
        st.lists(st.integers(min_value=0, max_value=(1 << n) - 1), min_size=m, max_size=m)
    )
    return n, masks


@st.composite
def coverable_mask_systems(draw, max_n=14, max_m=7):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    universe = (1 << n) - 1
    masks = draw(
        st.lists(st.integers(min_value=0, max_value=universe), min_size=m, max_size=m)
    )
    union = 0
    for mask in masks:
        union |= mask
    if union != universe:
        masks[0] |= universe & ~union
    return n, masks


class TestWholeGreedyRunParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=40, deadline=None)
    @given(data=mask_systems())
    def test_full_trace_matches_python_backend(self, backend, data):
        n, masks = data
        reference = SetSystem.from_masks(n, masks, backend="python")
        system = SetSystem.from_masks(n, masks, backend=backend)
        try:
            expected = greedy_cover_trace(reference)
        except InfeasibleInstanceError:
            with pytest.raises(InfeasibleInstanceError):
                greedy_cover_trace(system)
            return
        actual = greedy_cover_trace(system)
        assert actual.solution == expected.solution
        assert actual.steps == expected.steps


class TestWholeStreamingRunParity:
    @settings(max_examples=25, deadline=None)
    @given(data=coverable_mask_systems(), order_seed=st.sampled_from([None, 7, 12345]))
    def test_streaming_results_identical_across_registry(self, data, order_seed):
        n, masks = data
        order = StreamOrder.ADVERSARIAL if order_seed is None else StreamOrder.RANDOM
        for build in (
            EmekRosenSemiStreaming,  # one batched claim_resolution pass
            lambda: StoreEverythingSetCover(solver="greedy"),
        ):
            results = {}
            for backend in BACKENDS:
                pinned = SetSystem.from_masks(n, masks, backend=backend)
                results[backend] = run_streaming_algorithm(
                    build(),
                    pinned,
                    order=order,
                    seed=order_seed,
                    verify_solution=False,
                )
            for backend in BACKENDS[1:]:
                assert results[backend] == results["python"], (
                    f"{backend} StreamingResult diverged from python"
                )


@pytest.mark.skipif(not HAS_COMPILED, reason="compiled backend unavailable")
class TestThreadDeterminism:
    """Thread counts {1, 2, 4} must be byte-identical to serial and PyInt."""

    @settings(max_examples=25, deadline=None)
    @given(data=mask_systems(max_n=70, max_m=9), uncovered_bits=st.integers(min_value=0))
    def test_primitives_identical_at_every_thread_count(self, data, uncovered_bits):
        n, masks = data
        uncovered = uncovered_bits & ((1 << n) - 1)
        reference = PyIntKernel(n, masks)
        expected_claims = {
            name: reference.claim_resolution(keys)
            for name, keys in key_patterns(len(masks))
        }
        for threads in (1, 2, 4):
            kernel = build_kernel("compiled", n, masks, threads=threads, chunk_rows=2)
            assert kernel.gains(uncovered) == reference.gains(uncovered)
            assert kernel.best_gain_index(uncovered) == reference.best_gain_index(
                uncovered
            )
            assert kernel.element_frequencies() == reference.element_frequencies()
            for name, keys in key_patterns(len(masks)):
                assert kernel.claim_resolution(keys) == expected_claims[name], (
                    threads,
                    name,
                )

    @settings(max_examples=15, deadline=None)
    @given(data=mask_systems(max_n=48, max_m=8))
    def test_full_conformance_at_every_thread_count(self, data):
        n, masks = data
        for threads in (1, 2, 4):
            kernel = build_kernel("compiled", n, masks, threads=threads, chunk_rows=2)
            assert_kernel_conformance(kernel, n, masks)

    @settings(max_examples=15, deadline=None)
    @given(data=coverable_mask_systems())
    def test_streaming_result_identical_at_every_thread_count(self, data):
        """Whole Emek–Rosén runs (claim-sweep heavy) pinned across threads.

        The thread count rides in via the environment knob — exactly how a
        production deployment would set it — re-resolved per system build.
        """
        import os

        n, masks = data
        results = []
        for threads in (1, 2, 4):
            os.environ["REPRO_KERNEL_THREADS"] = str(threads)
            try:
                pinned = SetSystem.from_masks(n, masks, backend="compiled")
                results.append(
                    run_streaming_algorithm(
                        EmekRosenSemiStreaming(),
                        pinned,
                        order=StreamOrder.ADVERSARIAL,
                        verify_solution=False,
                    )
                )
            finally:
                os.environ.pop("REPRO_KERNEL_THREADS", None)
        assert results[0] == results[1] == results[2]


def test_no_numba_warning_is_single_shot():
    """On a numba-less interpreter the compiled tier warns exactly once."""
    if not HAS_COMPILED:
        pytest.skip("compiled backend unavailable")
    from repro.kernels import compiled

    if compiled.HAS_NUMBA:
        pytest.skip("numba installed: no fallback warning expected")
    original = compiled._WARNED_NO_NUMBA
    compiled._WARNED_NO_NUMBA = False
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            build_kernel("compiled", 8, [0b1010, 0b0101])
            build_kernel("compiled", 8, [0b1010, 0b0101])
        fallback_warnings = [
            w for w in caught if "numba is not installed" in str(w.message)
        ]
        assert len(fallback_warnings) == 1
    finally:
        compiled._WARNED_NO_NUMBA = original
