"""Property-based tests for the bitset helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitset import (
    bitset_difference,
    bitset_from_iterable,
    bitset_intersection,
    bitset_size,
    bitset_to_set,
    bitset_union,
    universe_mask,
)

element_sets = st.sets(st.integers(min_value=0, max_value=200), max_size=60)


class TestBitsetProperties:
    @given(element_sets)
    def test_round_trip(self, elements):
        assert bitset_to_set(bitset_from_iterable(elements)) == elements

    @given(element_sets)
    def test_size_matches_cardinality(self, elements):
        assert bitset_size(bitset_from_iterable(elements)) == len(elements)

    @given(element_sets, element_sets)
    def test_union_matches_set_union(self, a, b):
        mask = bitset_union(bitset_from_iterable(a), bitset_from_iterable(b))
        assert bitset_to_set(mask) == a | b

    @given(element_sets, element_sets)
    def test_intersection_matches_set_intersection(self, a, b):
        mask = bitset_intersection(bitset_from_iterable(a), bitset_from_iterable(b))
        assert bitset_to_set(mask) == a & b

    @given(element_sets, element_sets)
    def test_difference_matches_set_difference(self, a, b):
        mask = bitset_difference(bitset_from_iterable(a), bitset_from_iterable(b))
        assert bitset_to_set(mask) == a - b

    @given(st.integers(min_value=0, max_value=300))
    def test_universe_mask_size(self, n):
        assert bitset_size(universe_mask(n)) == n

    @given(element_sets, element_sets)
    def test_de_morgan_within_universe(self, a, b):
        n = 201
        full = universe_mask(n)
        mask_a = bitset_from_iterable(a)
        mask_b = bitset_from_iterable(b)
        lhs = full & ~(mask_a | mask_b)
        rhs = (full & ~mask_a) & (full & ~mask_b)
        assert lhs == rhs
