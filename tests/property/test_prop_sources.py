"""Property tests: instance backings are pure representation changes.

For any random mask system, the heap / shared-memory / mmap backings and
the windowed :class:`ChunkedKernel` must agree with the resident reference
kernel on every observable — gains, frequencies, unions, claim resolution,
and the full greedy trace.  Backings may change where bytes live, never
what any consumer computes.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

import pytest

from repro.kernels import PyIntKernel, registered_backends
from repro.kernels.chunked import ChunkedKernel
from repro.setcover.instance import SetSystem
from repro.setcover.source import (
    HeapSource,
    MmapSource,
    SharedMemorySource,
    write_container,
)

# Enumerated from the make_kernel registry so newly registered backends are
# covered by the windowed-kernel parity sweep automatically.
BACKENDS = registered_backends()

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@st.composite
def mask_systems(draw, max_n=80, max_m=10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    masks = draw(
        st.lists(st.integers(min_value=0, max_value=(1 << n) - 1), min_size=m, max_size=m)
    )
    return n, masks


def each_backing(system):
    """Yield one open source per backing kind over the same packed bytes."""
    packed = system.to_packed()
    yield HeapSource.from_packed(packed)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "prop.repro"
        write_container(path, packed)
        source = MmapSource.open(path)
        try:
            yield source
        finally:
            source.close()
    shared = SharedMemorySource.publish(packed)
    try:
        yield shared
    finally:
        shared.close()


class TestBackingParity:
    @given(mask_systems(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_chunked_kernel_matches_reference_on_every_backing(self, case, chunk_rows):
        n, masks = case
        system = SetSystem.from_masks(n, masks)
        reference = PyIntKernel(n, masks)
        uncovered = (1 << n) - 1
        keys = reference.set_sizes()
        for source in each_backing(system):
            for backend in BACKENDS:
                kernel = ChunkedKernel(source, backend=backend, chunk_rows=chunk_rows)
                assert kernel.gains(uncovered) == reference.gains(uncovered)
                assert kernel.best_gain_index(uncovered) == reference.best_gain_index(
                    uncovered
                )
                assert kernel.element_frequencies() == reference.element_frequencies()
                assert kernel.union() == reference.union()
                assert kernel.set_sizes() == reference.set_sizes()
                assert kernel.claim_resolution(keys) == reference.claim_resolution(keys)

    @given(mask_systems())
    @settings(max_examples=25, deadline=None)
    def test_views_and_digests_identical_across_backings(self, case):
        n, masks = case
        system = SetSystem.from_masks(n, masks)
        expected = system.to_packed().buffer
        digests = set()
        for source in each_backing(system):
            assert bytes(source.view()) == expected
            digests.add(source.digest())
            assert [source.mask_at(i) for i in range(len(masks))] == list(masks)
        assert len(digests) == 1

    @given(mask_systems(max_n=48, max_m=8))
    @settings(max_examples=20, deadline=None)
    def test_windowed_greedy_trace_matches_resident(self, case):
        from repro.setcover.greedy import greedy_cover_trace

        n, masks = case
        system = SetSystem.from_masks(n, masks)
        coverable = system.coverage_mask(range(len(masks)))
        expected = greedy_cover_trace(system, required_mask=coverable)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "greedy.repro"
            system.to_file(path)
            windowed = SetSystem.from_source(MmapSource.open(path))
            actual = greedy_cover_trace(windowed, required_mask=coverable)
            windowed.close()
        assert actual.solution == expected.solution
        assert actual.steps == expected.steps
