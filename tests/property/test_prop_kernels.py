"""Property tests: kernel backend parity and lazy-greedy trace equivalence.

Two families of invariants guard the compute-kernel seam:

* **Backend parity** — on any random system, :class:`NumpyKernel` and
  :class:`PyIntKernel` return identical gains, projections, frequencies,
  unions and sizes (the packed uint64 matrix is a pure representation
  change).
* **Lazy = eager greedy** — the CELF lazy greedy must reproduce the seed
  implementation's full-rescan loop *byte for byte*: same picks, same
  per-step statistics, same exceptions, on every backend, including the
  ``required_mask`` / ``max_sets`` edge cases.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro.kernels as kernels
from repro.exceptions import InfeasibleInstanceError
from repro.kernels import PyIntKernel, make_kernel, registered_backends
from repro.setcover.greedy import greedy_cover_trace
from repro.setcover.instance import SetSystem
from repro.setcover.maxcover import greedy_max_coverage
from repro.utils.bitset import bitset_size

# Enumerated from the make_kernel registry so newly registered backends are
# covered by these suites automatically (no hardcoded name lists).
BACKENDS = registered_backends()
ACCELERATED = [name for name in BACKENDS if name != "python"]

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@st.composite
def mask_systems(draw, max_n=96, max_m=12):
    """A universe size and a list of random set masks over it."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    masks = draw(
        st.lists(st.integers(min_value=0, max_value=(1 << n) - 1), min_size=m, max_size=m)
    )
    return n, masks


def reference_greedy_trace(system, required_mask=None, max_sets=None):
    """The seed implementation: full rescan of all sets per pick."""
    universe = required_mask
    if universe is None:
        universe = system.uncovered_mask([])
    uncovered = universe
    solution, steps = [], []
    available = set(range(system.num_sets))
    while uncovered:
        best_index = -1
        best_gain = 0
        for index in available:
            gain = bitset_size(system.mask(index) & uncovered)
            if gain > best_gain or (gain == best_gain and gain > 0 and index < best_index):
                best_gain = gain
                best_index = index
        if best_gain == 0:
            raise InfeasibleInstanceError("reference: uncoverable")
        available.remove(best_index)
        uncovered &= ~system.mask(best_index)
        solution.append(best_index)
        steps.append((best_index, best_gain, bitset_size(uncovered)))
        if max_sets is not None and len(solution) >= max_sets and uncovered:
            raise InfeasibleInstanceError("reference: cap exceeded")
    return solution, steps


def reference_greedy_max_coverage(system, k):
    """The seed implementation of greedy max coverage (full rescan)."""
    chosen, covered = [], 0
    available = set(range(system.num_sets))
    for _ in range(min(k, system.num_sets)):
        best_index, best_gain = None, -1
        for index in available:
            gain = bitset_size(system.mask(index) & ~covered)
            if gain > best_gain or (
                gain == best_gain and best_index is not None and index < best_index
            ):
                best_gain = gain
                best_index = index
        if best_index is None or best_gain <= 0:
            break
        chosen.append(best_index)
        available.remove(best_index)
        covered |= system.mask(best_index)
    return chosen, bitset_size(covered)


class TestBackendParity:
    @pytest.mark.skipif(not ACCELERATED, reason="no accelerated backends installed")
    @settings(max_examples=60, deadline=None)
    @given(data=mask_systems(), uncovered_bits=st.integers(min_value=0))
    def test_registered_backends_match_python(self, data, uncovered_bits):
        n, masks = data
        uncovered = uncovered_bits & ((1 << n) - 1)
        py = PyIntKernel(n, masks)
        for backend in ACCELERATED:
            kernel = make_kernel(n, masks, backend=backend)
            assert kernel.gains(uncovered) == py.gains(uncovered), backend
            assert kernel.restrict(uncovered) == py.restrict(uncovered), backend
            assert kernel.element_frequencies() == py.element_frequencies(), backend
            assert kernel.union() == py.union(), backend
            assert kernel.set_sizes() == py.set_sizes(), backend
            for index in range(len(masks)):
                assert kernel.gain(index, uncovered) == py.gain(index, uncovered)

    @settings(max_examples=40, deadline=None)
    @given(data=mask_systems())
    def test_frequencies_sum_to_incidences(self, data):
        n, masks = data
        system = SetSystem.from_masks(n, masks)
        assert sum(system.element_frequencies()) == system.incidence_count()


class TestGainTrackerParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=50, deadline=None)
    @given(
        data=mask_systems(max_n=48, max_m=8),
        covers=st.lists(st.integers(min_value=0), min_size=0, max_size=6),
    )
    def test_tracker_tracks_best_gain_index(self, backend, data, covers):
        """After any sequence of disjoint covers the tracker's pick equals a
        fresh batched argmax — the exactness invariant of gain maintenance."""
        n, masks = data
        kernel = make_kernel(n, masks, backend=backend)
        uncovered = (1 << n) - 1
        tracker = kernel.gain_tracker(uncovered)
        assert tracker.best() == kernel.best_gain_index(uncovered)
        for cover_bits in covers:
            newly = cover_bits & uncovered
            tracker.cover(newly)
            uncovered &= ~newly
            assert tracker.best() == kernel.best_gain_index(uncovered)


class TestLazyGreedyEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=60, deadline=None)
    @given(data=mask_systems())
    def test_trace_identical_to_reference(self, backend, data):
        n, masks = data
        system = SetSystem.from_masks(n, masks, backend=backend)
        try:
            expected = reference_greedy_trace(system)
        except InfeasibleInstanceError:
            with pytest.raises(InfeasibleInstanceError):
                greedy_cover_trace(system)
            return
        trace = greedy_cover_trace(system)
        assert trace.solution == expected[0]
        assert [
            (s.chosen_set, s.newly_covered, s.remaining_uncovered) for s in trace.steps
        ] == expected[1]

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=60, deadline=None)
    @given(data=mask_systems(), required_bits=st.integers(min_value=0), cap=st.integers(min_value=1, max_value=6))
    def test_required_mask_and_cap_edges(self, backend, data, required_bits, cap):
        n, masks = data
        system = SetSystem.from_masks(n, masks, backend=backend)
        required = required_bits & ((1 << n) - 1)
        try:
            expected = reference_greedy_trace(system, required_mask=required, max_sets=cap)
        except InfeasibleInstanceError:
            with pytest.raises(InfeasibleInstanceError):
                greedy_cover_trace(system, required_mask=required, max_sets=cap)
            return
        trace = greedy_cover_trace(system, required_mask=required, max_sets=cap)
        assert trace.solution == expected[0]

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=60, deadline=None)
    @given(data=mask_systems(), k=st.integers(min_value=0, max_value=8))
    def test_max_coverage_identical_to_reference(self, backend, data, k):
        n, masks = data
        system = SetSystem.from_masks(n, masks, backend=backend)
        assert greedy_max_coverage(system, k) == reference_greedy_max_coverage(system, k)
