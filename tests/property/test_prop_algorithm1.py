"""Property-based tests for Algorithm 1 and the streaming substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm1 import AlgorithmOneConfig, StreamingSetCover
from repro.core.guessing import OptGuessingSetCover
from repro.setcover.exact import exact_cover_value
from repro.setcover.instance import SetSystem
from repro.setcover.verify import is_feasible_cover
from repro.streaming.engine import run_streaming_algorithm
from repro.streaming.stream import StreamOrder


@st.composite
def coverable_systems(draw, max_universe=24, max_sets=10):
    n = draw(st.integers(min_value=2, max_value=max_universe))
    m = draw(st.integers(min_value=2, max_value=max_sets))
    sets = [
        draw(
            st.sets(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=max(1, n // 2),
            )
        )
        for _ in range(m)
    ]
    covered = set().union(*sets)
    missing = set(range(n)) - covered
    if missing:
        sets[-1] = set(sets[-1]) | missing
    return SetSystem(n, sets)


class TestAlgorithmOneProperties:
    @given(
        coverable_systems(),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_always_feasible(self, system, alpha, seed):
        opt = exact_cover_value(system)
        config = AlgorithmOneConfig(alpha=alpha, opt_guess=opt, epsilon=0.5)
        result = run_streaming_algorithm(
            StreamingSetCover(config, seed=seed), system, verify_solution=False
        )
        assert is_feasible_cover(system, result.solution)

    @given(
        coverable_systems(),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_pass_budget_respected(self, system, alpha, seed):
        opt = exact_cover_value(system)
        config = AlgorithmOneConfig(alpha=alpha, opt_guess=opt, epsilon=0.5)
        result = run_streaming_algorithm(
            StreamingSetCover(config, seed=seed), system, verify_solution=False
        )
        assert result.passes <= 2 * alpha + 2

    @given(coverable_systems(), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_guessing_wrapper_feasible_without_opt(self, system, seed):
        result = run_streaming_algorithm(
            OptGuessingSetCover(alpha=2, epsilon=0.5, seed=seed),
            system,
            verify_solution=False,
        )
        assert is_feasible_cover(system, result.solution)

    @given(coverable_systems(), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_order_feasible(self, system, seed):
        opt = exact_cover_value(system)
        config = AlgorithmOneConfig(alpha=2, opt_guess=opt, epsilon=0.5)
        result = run_streaming_algorithm(
            StreamingSetCover(config, seed=seed),
            system,
            order=StreamOrder.RANDOM,
            seed=seed,
            verify_solution=False,
        )
        assert is_feasible_cover(system, result.solution)

    @given(coverable_systems(), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_space_meter_nonnegative_and_peak_consistent(self, system, seed):
        opt = exact_cover_value(system)
        config = AlgorithmOneConfig(alpha=2, opt_guess=opt, epsilon=0.5)
        result = run_streaming_algorithm(
            StreamingSetCover(config, seed=seed), system, verify_solution=False
        )
        report = result.space
        assert report.peak_words >= report.final_words >= 0
        assert report.peak_words >= max(report.peak_by_category.values(), default=0)
