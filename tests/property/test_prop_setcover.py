"""Property-based tests for the offline set cover solvers."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.setcover.exact import brute_force_set_cover, exact_set_cover
from repro.setcover.fractional import counting_lower_bound
from repro.setcover.greedy import greedy_set_cover
from repro.setcover.instance import SetSystem
from repro.setcover.maxcover import exact_max_coverage, greedy_max_coverage
from repro.setcover.verify import is_feasible_cover


@st.composite
def coverable_systems(draw, max_universe=10, max_sets=6):
    """Small random systems patched to be coverable."""
    n = draw(st.integers(min_value=1, max_value=max_universe))
    m = draw(st.integers(min_value=1, max_value=max_sets))
    sets = [
        draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
        for _ in range(m)
    ]
    covered = set().union(*sets) if sets else set()
    missing = set(range(n)) - covered
    if missing:
        sets[0] = set(sets[0]) | missing
    return SetSystem(n, sets)


class TestGreedyProperties:
    @given(coverable_systems())
    @settings(max_examples=40, deadline=None)
    def test_greedy_feasible(self, system):
        solution = greedy_set_cover(system)
        assert is_feasible_cover(system, solution)

    @given(coverable_systems())
    @settings(max_examples=40, deadline=None)
    def test_greedy_no_duplicates(self, system):
        solution = greedy_set_cover(system)
        assert len(solution) == len(set(solution))

    @given(coverable_systems())
    @settings(max_examples=40, deadline=None)
    def test_greedy_within_ln_n_of_opt(self, system):
        greedy = greedy_set_cover(system)
        opt = exact_set_cover(system)
        n = system.universe_size
        assert len(greedy) <= max(1, math.ceil(len(opt) * (math.log(n) + 1)))


class TestExactProperties:
    @given(coverable_systems(max_universe=8, max_sets=5))
    @settings(max_examples=30, deadline=None)
    def test_exact_matches_brute_force(self, system):
        assert len(exact_set_cover(system)) == len(brute_force_set_cover(system))

    @given(coverable_systems())
    @settings(max_examples=40, deadline=None)
    def test_exact_feasible_and_minimal_vs_greedy(self, system):
        exact = exact_set_cover(system)
        assert is_feasible_cover(system, exact)
        assert len(exact) <= len(greedy_set_cover(system))

    @given(coverable_systems())
    @settings(max_examples=40, deadline=None)
    def test_counting_bound_below_opt(self, system):
        assert counting_lower_bound(system) <= len(exact_set_cover(system))


class TestMaxCoverageProperties:
    @given(coverable_systems(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_exact_at_least_greedy(self, system, k):
        _, greedy_value = greedy_max_coverage(system, k)
        _, exact_value = exact_max_coverage(system, k)
        assert exact_value >= greedy_value

    @given(coverable_systems(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_coverage_monotone_in_k(self, system, k):
        _, smaller = exact_max_coverage(system, k)
        _, larger = exact_max_coverage(system, k + 1)
        assert larger >= smaller

    @given(coverable_systems(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_greedy_guarantee(self, system, k):
        _, greedy_value = greedy_max_coverage(system, k)
        _, exact_value = exact_max_coverage(system, k)
        assert greedy_value >= (1 - 1 / math.e) * exact_value - 1e-9
