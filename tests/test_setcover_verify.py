"""Unit tests for solution verification helpers."""

import pytest

from repro.setcover.verify import is_feasible_cover, uncovered_elements, verify_cover


class TestUncoveredElements:
    def test_full_cover(self, tiny_system):
        assert uncovered_elements(tiny_system, [0, 1]) == set()

    def test_partial_cover(self, tiny_system):
        assert uncovered_elements(tiny_system, [0]) == {3, 4, 5}

    def test_empty_solution(self, tiny_system):
        assert uncovered_elements(tiny_system, []) == {0, 1, 2, 3, 4, 5}


class TestIsFeasible:
    def test_feasible(self, tiny_system):
        assert is_feasible_cover(tiny_system, [0, 1])

    def test_infeasible(self, tiny_system):
        assert not is_feasible_cover(tiny_system, [2, 3])


class TestVerifyCover:
    def test_accepts_valid(self, tiny_system):
        verify_cover(tiny_system, [0, 1])

    def test_rejects_incomplete(self, tiny_system):
        with pytest.raises(ValueError, match="missing"):
            verify_cover(tiny_system, [0])

    def test_rejects_out_of_range(self, tiny_system):
        with pytest.raises(ValueError, match="out of range"):
            verify_cover(tiny_system, [0, 99])

    def test_rejects_duplicates(self, tiny_system):
        with pytest.raises(ValueError, match="duplicate"):
            verify_cover(tiny_system, [0, 0, 1])
