"""Unit tests for the set disjointness problem and D_Disj."""

import pytest

from repro.problems.disjointness import (
    DisjointnessInstance,
    disjointness_answer,
    enumerate_ddisj_support,
    sample_ddisj,
    sample_ddisj_no,
    sample_ddisj_yes,
)
from repro.utils.rng import RandomSource


class TestInstanceBasics:
    def test_answer_disjoint(self):
        instance = DisjointnessInstance(4, frozenset({0}), frozenset({1}))
        assert instance.is_disjoint
        assert disjointness_answer(instance) == "Yes"

    def test_answer_intersecting(self):
        instance = DisjointnessInstance(4, frozenset({0, 2}), frozenset({2}))
        assert not instance.is_disjoint
        assert disjointness_answer(instance) == "No"
        assert instance.intersection == frozenset({2})


class TestSamplers:
    def test_yes_instances_disjoint(self):
        rng = RandomSource(1)
        for _ in range(50):
            instance = sample_ddisj_yes(10, seed=rng.spawn())
            assert instance.is_disjoint
            assert instance.z == 0

    def test_no_instances_have_single_intersection(self):
        rng = RandomSource(2)
        for _ in range(50):
            instance = sample_ddisj_no(10, seed=rng.spawn())
            assert len(instance.intersection) == 1
            assert instance.z == 1
            assert instance.planted_element in instance.intersection

    def test_mixed_sampler_label_consistent(self):
        rng = RandomSource(3)
        for _ in range(50):
            instance = sample_ddisj(8, seed=rng.spawn())
            if instance.z == 0:
                assert instance.is_disjoint
            else:
                assert len(instance.intersection) == 1

    def test_subsets_of_universe(self):
        instance = sample_ddisj(12, seed=5)
        assert instance.alice <= frozenset(range(12))
        assert instance.bob <= frozenset(range(12))

    def test_element_survival_rate(self):
        # Each element stays in A with probability 1/3 (before planting).
        rng = RandomSource(4)
        total = 0
        trials = 200
        t = 20
        for _ in range(trials):
            instance = sample_ddisj_yes(t, seed=rng.spawn())
            total += len(instance.alice)
        mean = total / trials
        assert t / 3 - 1.5 <= mean <= t / 3 + 1.5

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            sample_ddisj(0)
        with pytest.raises(ValueError):
            sample_ddisj_yes(0)
        with pytest.raises(ValueError):
            sample_ddisj_no(0)


class TestSupportEnumeration:
    def test_probabilities_sum_to_one(self):
        total = sum(p for _, _, _, p in enumerate_ddisj_support(3))
        assert total == pytest.approx(1.0)

    def test_z_split_is_even(self):
        yes_mass = sum(p for _, _, z, p in enumerate_ddisj_support(3) if z == 0)
        assert yes_mass == pytest.approx(0.5)

    def test_z_zero_outcomes_disjoint(self):
        for alice, bob, z, _ in enumerate_ddisj_support(2):
            if z == 0:
                assert not (alice & bob)
            else:
                assert len(alice & bob) >= 1

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            list(enumerate_ddisj_support(0))
