"""Unit tests for the space meter."""

import pytest

from repro.exceptions import SpaceBudgetExceededError
from repro.streaming.space import SpaceMeter


class TestBasicAccounting:
    def test_charge_and_current(self):
        meter = SpaceMeter()
        meter.charge("a", 10)
        meter.charge("b", 5)
        assert meter.current_words == 15
        assert meter.usage("a") == 10

    def test_peak_tracks_maximum(self):
        meter = SpaceMeter()
        meter.charge("a", 10)
        meter.release("a", 8)
        meter.charge("a", 3)
        assert meter.current_words == 5
        assert meter.peak_words == 10

    def test_set_usage_absolute(self):
        meter = SpaceMeter()
        meter.set_usage("x", 7)
        meter.set_usage("x", 3)
        assert meter.usage("x") == 3
        assert meter.peak_words == 7

    def test_release_all(self):
        meter = SpaceMeter()
        meter.charge("a", 4)
        meter.release("a")
        assert meter.usage("a") == 0

    def test_release_too_much_rejected(self):
        meter = SpaceMeter()
        meter.charge("a", 2)
        with pytest.raises(ValueError):
            meter.release("a", 5)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter().charge("a", -1)

    def test_reset_category(self):
        meter = SpaceMeter()
        meter.charge("a", 9)
        meter.reset_category("a")
        assert meter.usage("a") == 0
        assert meter.peak_words == 9


class TestBudget:
    def test_budget_enforced(self):
        meter = SpaceMeter(budget=10)
        meter.charge("a", 10)
        with pytest.raises(SpaceBudgetExceededError):
            meter.charge("a", 1)

    def test_budget_error_carries_values(self):
        meter = SpaceMeter(budget=5)
        try:
            meter.charge("a", 6)
        except SpaceBudgetExceededError as exc:
            assert exc.used == 6
            assert exc.budget == 5
        else:  # pragma: no cover
            pytest.fail("expected SpaceBudgetExceededError")

    def test_charge_exactly_to_budget_allowed(self):
        meter = SpaceMeter(budget=10)
        meter.charge("incidences", 10)
        assert meter.current_words == 10
        assert meter.peak_words == 10

    def test_one_word_over_budget_raises(self):
        meter = SpaceMeter(budget=10)
        meter.charge("incidences", 10)
        with pytest.raises(SpaceBudgetExceededError):
            meter.charge("solution", 1)

    def test_budget_edge_across_categories(self):
        meter = SpaceMeter(budget=10)
        meter.charge("a", 6)
        meter.charge("b", 4)  # exactly at budget, split across categories
        meter.release("a", 1)
        meter.charge("b", 1)  # back to exactly the budget
        assert meter.current_words == 10
        with pytest.raises(SpaceBudgetExceededError):
            meter.set_usage("a", 6)

    def test_zero_budget_allows_only_zero_usage(self):
        meter = SpaceMeter(budget=0)
        meter.set_usage("counters", 0)
        with pytest.raises(SpaceBudgetExceededError):
            meter.charge("counters", 1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter(budget=-1)


class TestReport:
    def test_report_contents(self):
        meter = SpaceMeter()
        meter.charge("incidences", 100)
        meter.charge("solution", 3)
        meter.release("incidences", 50)
        report = meter.report()
        assert report.peak_words == 103
        assert report.final_words == 53
        assert report.peak_by_category["incidences"] == 100
        assert report.dominant_category() == "incidences"

    def test_empty_report(self):
        report = SpaceMeter().report()
        assert report.peak_words == 0
        assert report.dominant_category() is None
