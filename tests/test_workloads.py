"""Unit tests for the workload generators."""

import pytest

from repro.setcover.exact import exact_cover_value
from repro.workloads.adversarial import dmc_stream_instance, dsc_stream_instance
from repro.workloads.coverage import coverage_workload, topic_coverage_instance
from repro.workloads.random_instances import (
    disjoint_blocks_instance,
    plant_cover_instance,
    random_instance,
    random_set_system,
    zipfian_instance,
)


class TestRandomSetSystem:
    def test_fixed_size_sets(self):
        system = random_set_system(50, 10, set_size=7, seed=1)
        assert system.num_sets == 10
        assert all(system.set_size(i) == 7 for i in range(10))

    def test_density_sets(self):
        system = random_set_system(100, 20, density=0.3, seed=2)
        total = system.incidence_count()
        assert 400 <= total <= 800  # 20 * 100 * 0.3 = 600 expected

    def test_default_density_coverable_often(self):
        system = random_set_system(80, 40, seed=3)
        assert system.num_sets == 40

    def test_conflicting_arguments(self):
        with pytest.raises(ValueError):
            random_set_system(10, 5, set_size=3, density=0.5)

    def test_invalid_set_size(self):
        with pytest.raises(ValueError):
            random_set_system(10, 5, set_size=20)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            random_set_system(10, 5, density=1.5)

    def test_determinism(self):
        a = random_set_system(30, 10, set_size=5, seed=9)
        b = random_set_system(30, 10, set_size=5, seed=9)
        assert a == b


class TestRandomInstance:
    def test_always_coverable(self):
        for seed in range(5):
            instance = random_instance(40, 15, seed=seed)
            assert instance.system.is_coverable()

    def test_patched_fallback_is_coverable_and_flagged(self):
        # Density 0 never draws a covering system, so all 32 attempts fail
        # and the coverability patch must kick in on the last draw.
        instance = random_instance(12, 4, density=0.0, seed=1)
        assert instance.metadata["patched"] is True
        assert instance.system.is_coverable()
        # Only the last set was patched (with exactly the missing elements).
        assert instance.system.mask(3) == (1 << 12) - 1
        assert all(instance.system.mask(i) == 0 for i in range(3))

    def test_unpatched_instances_carry_no_flag(self):
        instance = random_instance(40, 15, density=0.3, seed=2)
        assert "patched" not in instance.metadata


class TestWithPatchedMask:
    def test_returns_new_system_without_mutating_original(self):
        from repro.setcover.instance import SetSystem

        system = SetSystem(6, [[0, 1], [2]], names=["a", "b"])
        masks_before = system.masks()
        patched = system.with_patched_mask(1, 0b111000)
        assert system.masks() == masks_before
        assert patched.mask(1) == 0b111100
        assert patched.mask(0) == system.mask(0)
        assert patched.names == ["a", "b"]

    def test_rejects_bad_index_and_foreign_elements(self):
        from repro.setcover.instance import SetSystem

        system = SetSystem(4, [[0]])
        with pytest.raises(ValueError):
            system.with_patched_mask(5, 1)
        with pytest.raises(ValueError):
            system.with_patched_mask(0, 1 << 10)


class TestPlantedCover:
    def test_planted_opt_is_exact(self):
        instance = plant_cover_instance(60, 20, 3, seed=4)
        assert exact_cover_value(instance.system) == 3

    def test_coverable(self):
        instance = plant_cover_instance(100, 25, 5, seed=5)
        assert instance.system.is_coverable()

    def test_planted_positions_recorded(self):
        instance = plant_cover_instance(60, 20, 3, seed=6)
        positions = instance.metadata["planted_positions"]
        assert len(positions) == 3
        assert all(0 <= p < 20 for p in positions)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            plant_cover_instance(10, 5, 0)
        with pytest.raises(ValueError):
            plant_cover_instance(10, 5, 6)
        with pytest.raises(ValueError):
            plant_cover_instance(3, 10, 5)

    def test_custom_decoy_size(self):
        instance = plant_cover_instance(60, 20, 3, decoy_set_size=2, seed=7)
        assert instance.metadata["decoy_set_size"] == 2


class TestZipfAndBlocks:
    def test_zipfian_coverable(self):
        instance = zipfian_instance(80, 30, set_size=10, seed=8)
        assert instance.system.is_coverable()
        assert instance.metadata["kind"] == "zipf"

    def test_zipfian_invalid_skew(self):
        with pytest.raises(ValueError):
            zipfian_instance(10, 5, 3, skew=0.0)

    def test_disjoint_blocks(self):
        instance = disjoint_blocks_instance(24, 4, seed=9)
        assert instance.planted_opt == 4
        system = instance.system
        union = system.coverage(range(4))
        assert union == 24
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (system.elements(i) & system.elements(j))

    def test_disjoint_blocks_invalid(self):
        with pytest.raises(ValueError):
            disjoint_blocks_instance(5, 6)


class TestCoverageWorkloads:
    def test_topic_coverage_shapes(self):
        instance = topic_coverage_instance(50, 20, communities=4, seed=10)
        assert instance.system.universe_size == 50
        assert instance.system.num_sets == 20
        assert instance.metadata["communities"] == 4

    def test_coverage_workload_sets_k(self):
        instance = coverage_workload(50, 20, k=3, seed=11)
        assert instance.metadata["k"] == 3

    def test_invalid_communities(self):
        with pytest.raises(ValueError):
            topic_coverage_instance(10, 5, communities=0)


class TestAdversarialWorkloads:
    def test_dsc_instance_shapes(self):
        instance = dsc_stream_instance(60, 5, alpha=2, theta=1, seed=12)
        assert instance.system.num_sets == 10
        assert instance.planted_opt == 2
        assert instance.metadata["kind"] == "dsc"

    def test_dsc_theta_zero_has_no_planted_opt(self):
        instance = dsc_stream_instance(60, 5, alpha=2, theta=0, seed=13)
        assert instance.planted_opt is None

    def test_dmc_instance_shapes(self):
        instance = dmc_stream_instance(4, epsilon=0.4, seed=14)
        assert instance.system.num_sets == 8
        assert instance.metadata["k"] == 2
