"""Unit tests for the hard maximum coverage distribution D_MC."""

import pytest

from repro.exceptions import DistributionError
from repro.lowerbound.dmc import DMCParameters, lemma_4_3_tau, sample_dmc
from repro.lowerbound.properties import claim_4_4_bounds, dmc_value_gap
from repro.utils.rng import RandomSource


@pytest.fixture
def params():
    return DMCParameters(num_pairs=4, epsilon=0.35)


class TestParameters:
    def test_t1_t2_relation(self, params):
        assert params.t2 == 10 * params.t1
        assert params.universe_size == params.t1 + params.t2

    def test_t1_formula(self):
        assert DMCParameters(num_pairs=2, epsilon=0.5).t1 == 4
        assert DMCParameters(num_pairs=2, epsilon=0.25).t1 == 16

    def test_invalid_epsilon(self):
        with pytest.raises(DistributionError):
            DMCParameters(num_pairs=2, epsilon=0.0)
        with pytest.raises(DistributionError):
            DMCParameters(num_pairs=2, epsilon=1.0)

    def test_invalid_num_pairs(self):
        with pytest.raises(DistributionError):
            DMCParameters(num_pairs=0, epsilon=0.3)

    def test_tau_formula(self, params):
        a, b = params.resolved_set_sizes()
        assert lemma_4_3_tau(params) == pytest.approx(
            params.t2 + (a + b) / 2 + params.t1 / 4
        )


class TestSampling:
    def test_shapes(self, params):
        instance = sample_dmc(params, seed=1)
        assert len(instance.alice_sets) == 4
        assert len(instance.bob_sets) == 4
        assert instance.set_system().num_sets == 8
        assert instance.universe_size == params.universe_size

    def test_theta_forced(self, params):
        assert sample_dmc(params, seed=2, theta=0).theta == 0
        assert sample_dmc(params, seed=2, theta=1).theta == 1

    def test_invalid_theta(self, params):
        with pytest.raises(DistributionError):
            sample_dmc(params, seed=2, theta=5)

    def test_u2_partitioned_per_pair(self, params):
        # Claim 4.4(a): every matched pair covers all of U2.
        instance = sample_dmc(params, seed=3)
        t1, t2 = params.t1, params.t2
        u2_mask = ((1 << (t1 + t2)) - 1) & ~((1 << t1) - 1)
        for i in range(instance.num_pairs):
            covered = instance.alice_sets[i] | instance.bob_sets[i]
            assert covered & u2_mask == u2_mask

    def test_ghd_gadgets_live_in_u1(self, params):
        instance = sample_dmc(params, seed=4)
        for pair in instance.ghd:
            assert pair.alice <= frozenset(range(params.t1))
            assert pair.bob <= frozenset(range(params.t1))

    def test_value_gap_follows_theta(self, params):
        rng = RandomSource(5)
        for theta in (0, 1):
            instance = sample_dmc(params, seed=rng.spawn(), theta=theta)
            verdict = dmc_value_gap(instance)
            assert verdict["on_correct_side"], verdict

    def test_claim_4_4(self, params):
        instance = sample_dmc(params, seed=6)
        claims = claim_4_4_bounds(instance)
        assert claims["matched_pairs_cover_u2"]
        assert claims["mixed_pairs_below_bound"]

    def test_communication_inputs(self, params):
        instance = sample_dmc(params, seed=7)
        alice, bob = instance.communication_inputs()
        assert alice.num_sets == bob.num_sets == 4
        assert alice.universe_size == instance.universe_size
