"""Unit tests for the Lemma 2.2 machinery."""

import pytest

from repro.lowerbound.covering_lemma import (
    coverage_shortfall_trial,
    estimate_uncovered_probability,
    expected_uncovered,
    lemma_2_2_bound,
    lemma_2_2_threshold,
    run_sweep,
)


class TestFormulas:
    def test_threshold_formula(self):
        assert lemma_2_2_threshold(100, 100, 25, 2) == pytest.approx(
            50 * (25 / 200) ** 2
        )

    def test_bound_formula_capped(self):
        assert lemma_2_2_bound(100, 0, 25, 1) == pytest.approx(1.0)
        assert lemma_2_2_bound(100, 100, 50, 1) < 1.0

    def test_expected_uncovered(self):
        assert expected_uncovered(100, 80, 25, 2) == pytest.approx(80 * 0.0625)

    def test_invalid_universe(self):
        with pytest.raises(ValueError):
            lemma_2_2_threshold(0, 10, 1, 1)
        with pytest.raises(ValueError):
            lemma_2_2_bound(0, 10, 1, 1)
        with pytest.raises(ValueError):
            expected_uncovered(0, 10, 1, 1)


class TestTrials:
    def test_trial_counts_consistent(self):
        trial = coverage_shortfall_trial(200, 200, 50, 2, seed=1)
        assert 0 <= trial.uncovered_count <= 200
        assert trial.below_threshold == (trial.uncovered_count < trial.threshold)

    def test_k_zero_leaves_everything(self):
        trial = coverage_shortfall_trial(100, 60, 20, 0, seed=2)
        assert trial.uncovered_count == 60

    def test_independent_drops_variant(self):
        trial = coverage_shortfall_trial(150, 150, 30, 3, seed=3, independent_drops=True)
        assert 0 <= trial.uncovered_count <= 150

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            coverage_shortfall_trial(100, 50, 0, 1)
        with pytest.raises(ValueError):
            coverage_shortfall_trial(100, 500, 10, 1)
        with pytest.raises(ValueError):
            coverage_shortfall_trial(100, 50, 10, -1)

    def test_more_sets_cover_more(self):
        few = coverage_shortfall_trial(400, 400, 100, 1, seed=4)
        many = coverage_shortfall_trial(400, 400, 100, 6, seed=4)
        assert many.uncovered_count <= few.uncovered_count


class TestEstimates:
    def test_failure_probability_within_lemma_bound(self):
        # The empirical probability of the shortfall event must not exceed the
        # proved bound by more than sampling noise.
        empirical = estimate_uncovered_probability(300, 300, 75, 2, trials=100, seed=5)
        bound = lemma_2_2_bound(300, 300, 75, 2)
        assert empirical <= bound + 0.05

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            estimate_uncovered_probability(100, 100, 10, 1, trials=0)

    def test_sweep_rows(self):
        rows = run_sweep(200, 200, 50, [1, 2], trials=20, seed=6)
        assert len(rows) == 2
        assert {"k", "empirical_failure", "lemma_bound"} <= set(rows[0])
