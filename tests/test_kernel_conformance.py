"""Drive the cross-backend conformance harness over the kernel registry.

The harness itself lives in ``tests/kernel_conformance.py``; this file only
parameterizes it: every registered backend × every adversarial shape, plus
thread-count / chunk-size sweeps for the compiled backend and a telemetry
leg proving ``kernel.calls.*`` metering survives the compiled paths.
"""

import warnings

import pytest

from kernel_conformance import (
    CONFORMANCE_CASES,
    assert_kernel_conformance,
    build_kernel,
)
from repro.kernels import kernel_registry, registered_backends

CASE_IDS = sorted(CONFORMANCE_CASES)


@pytest.mark.parametrize("backend", registered_backends())
@pytest.mark.parametrize("case", CASE_IDS)
def test_backend_conforms_to_reference(backend, case):
    universe_size, masks = CONFORMANCE_CASES[case]
    kernel = build_kernel(backend, universe_size, masks)
    assert_kernel_conformance(kernel, universe_size, masks)


@pytest.mark.skipif(
    "compiled" not in registered_backends(), reason="compiled backend unavailable"
)
@pytest.mark.parametrize("threads", [1, 2, 4])
@pytest.mark.parametrize("case", CASE_IDS)
def test_compiled_conforms_at_every_thread_count(threads, case):
    """Parallel sweeps must be deterministic: same bytes at 1, 2, 4 threads.

    ``chunk_rows=2`` forces genuinely multi-chunk sweeps even on the tiny
    conformance shapes, so the chunk-merge tie-breaking is really exercised.
    """
    universe_size, masks = CONFORMANCE_CASES[case]
    kernel = build_kernel(
        "compiled", universe_size, masks, threads=threads, chunk_rows=2
    )
    assert_kernel_conformance(kernel, universe_size, masks)


@pytest.mark.skipif(
    "compiled" not in registered_backends(), reason="compiled backend unavailable"
)
def test_registry_factories_accept_packed_buffers():
    """Packed transport buffers are adopted without changing any observable."""
    universe_size, masks = CONFORMANCE_CASES["three-words"]
    resident = build_kernel("compiled", universe_size, masks)
    packed = resident.packed_bytes()
    adopted = kernel_registry()["compiled"](universe_size, masks, packed=packed)
    assert_kernel_conformance(adopted, universe_size, masks)


@pytest.mark.skipif(
    "compiled" not in registered_backends(), reason="compiled backend unavailable"
)
def test_metering_counts_compiled_primitives():
    """kernel.calls.* / kernel.words.* accumulate through the compiled paths."""
    from repro.kernels import make_kernel
    from repro.telemetry.metrics import MetricsRegistry, _ACTIVE

    universe_size, masks = CONFORMANCE_CASES["mixed-random"]
    registry = MetricsRegistry()
    token = _ACTIVE.set(registry)
    try:
        kernel = make_kernel(universe_size, masks, backend="compiled")
        kernel.gains((1 << universe_size) - 1)
        kernel.claim_resolution([1] * len(masks))
        tracker = kernel.gain_tracker((1 << universe_size) - 1)
        tracker.best()
        tracker.cover(masks[0])
    finally:
        _ACTIVE.reset(token)
    assert kernel.backend == "compiled"
    assert registry.counters["kernel.calls.gains"] == 1
    assert registry.counters["kernel.calls.claim_resolution"] == 1
    assert registry.counters["kernel.calls.gain_tracker"] == 1
    assert registry.counters["kernel.calls.tracker_best"] == 1
    assert registry.counters["kernel.calls.tracker_cover"] == 1
    assert registry.counters["kernel.words.gains"] > 0


def test_conformance_suite_is_importable_as_a_library():
    """Future backends import the harness; keep its public surface stable."""
    import kernel_conformance

    for name in (
        "CONFORMANCE_CASES",
        "assert_backend_conformance",
        "assert_kernel_conformance",
        "build_kernel",
        "key_patterns",
        "query_masks",
    ):
        assert hasattr(kernel_conformance, name)


@pytest.fixture(autouse=True)
def _silence_no_numba_warning():
    """The fallback warning is expected noise on numba-less interpreters."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield
