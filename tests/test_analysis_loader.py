"""Loader tests: real store round-trips, missing cells, corrupt entries."""

import json

import pytest

from repro.analysis.loader import detect_grids, load_store, resolve_grid
from repro.runtime import (
    ResultStore,
    TaskExecutor,
    get_scenario,
    task_fingerprint,
    tasks_from_scenario,
)


@pytest.fixture
def wl_store(tmp_path):
    """A real store holding two computed WL cells (one per arrival order)."""
    store = ResultStore(tmp_path / "store")
    tasks = []
    for order in ("adversarial", "random"):
        spec = get_scenario("ADV[algorithm=saha_getoor,order=%s,workload=random]" % order)
        tasks.extend(tasks_from_scenario(spec))
    TaskExecutor(store=store).run(tasks)
    return store


class TestLoadStoreRoundTrip:
    def test_records_match_computed_results(self, wl_store):
        analysis = load_store(wl_store.root, grids=())
        assert len(analysis.records) == 2
        record = analysis.records[0]
        assert record.runner == "WL"
        assert record.algorithm == "saha_getoor"
        assert record.workload == "random"
        assert record.universe_size == 96
        assert record.num_sets == 24
        assert record.passes == 1
        assert record.peak_space_words is not None and record.peak_space_words > 0
        assert record.final_space_words is not None
        assert record.dominant_category is not None

    def test_fingerprints_match_store_identity(self, wl_store):
        analysis = load_store(wl_store.root, grids=())
        spec = get_scenario("ADV[algorithm=saha_getoor,order=random,workload=random]")
        (task,) = tasks_from_scenario(spec)
        assert task_fingerprint(task) in {r.fingerprint for r in analysis.records}

    def test_records_sorted_by_key(self, wl_store):
        analysis = load_store(wl_store.root, grids=())
        keys = [record.key for record in analysis.records]
        assert keys == sorted(keys)

    def test_empty_store_loads_cleanly(self, tmp_path):
        analysis = load_store(tmp_path / "nowhere")
        assert analysis.records == []
        assert analysis.missing == []
        assert analysis.unreadable == []
        assert analysis.expected_cells == 0

    def test_unreadable_entries_are_collected_not_raised(self, wl_store):
        bad = wl_store.root / "zz"
        bad.mkdir()
        (bad / "junk.json").write_text("{not json")
        (bad / "foreign.json").write_text(json.dumps({"format": 999, "x": 1}))
        analysis = load_store(wl_store.root, grids=())
        assert len(analysis.records) == 2
        assert len(analysis.unreadable) == 2


class TestMissingCells:
    def test_grid_detection_from_keys(self, wl_store):
        analysis = load_store(wl_store.root)
        assert analysis.grids == ("ADV",)

    def test_missing_cells_for_partial_grid(self, wl_store):
        analysis = load_store(wl_store.root, grids=["ADV"])
        assert analysis.expected_cells == 48
        assert len(analysis.missing) == 46
        assert all(cell.key.startswith("ADV[") for cell in analysis.missing)
        held = {record.key for record in analysis.records}
        assert all(cell.key not in held for cell in analysis.missing)

    def test_full_grid_has_no_missing_cells(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = get_scenario("WL")
        TaskExecutor(store=store).run(tasks_from_scenario(spec))
        analysis = load_store(store.root, grids=["WL"])
        assert analysis.missing == []
        assert analysis.expected_cells == 1

    def test_seed_override_shifts_expected_fingerprints(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = get_scenario("WL")
        TaskExecutor(store=store).run(tasks_from_scenario(spec))
        analysis = load_store(store.root, grids=["WL"], seed_override=99)
        assert len(analysis.missing) == 1
        assert analysis.expected_cells == 1

    def test_expected_cells_respects_seed_override_for_held_cells(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = get_scenario("WL")
        TaskExecutor(store=store).run(tasks_from_scenario(spec, seed_override=99))
        analysis = load_store(store.root, grids=["WL"], seed_override=99)
        assert analysis.missing == []
        assert analysis.expected_cells == 1

    def test_explicit_empty_grids_disable_the_check(self, wl_store):
        analysis = load_store(wl_store.root, grids=())
        assert analysis.grids == ()
        assert analysis.missing == []

    def test_unknown_grid_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError):
            load_store(tmp_path, grids=["no-such-grid"])

    def test_missing_cells_sorted_by_key(self, wl_store):
        analysis = load_store(wl_store.root, grids=["ADV"])
        keys = [cell.key for cell in analysis.missing]
        assert keys == sorted(keys)


class TestResolveGrid:
    def test_exact_scenario_name(self):
        assert [spec.name for spec in resolve_grid("WL")] == ["WL"]

    def test_tag_resolution(self):
        specs = resolve_grid("adversarial")
        assert len(specs) == 48

    def test_grid_prefix_resolution(self):
        specs = resolve_grid("ADV")
        assert len(specs) == 48
        assert all(spec.name.startswith("ADV[") for spec in specs)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            resolve_grid("definitely-not-registered")


class TestDetectGrids:
    def test_non_grid_keys_detect_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        TaskExecutor(store=store).run(tasks_from_scenario(get_scenario("WL")))
        analysis = load_store(store.root)
        assert analysis.grids == ()

    def test_unregistered_bracket_keys_detect_nothing(self):
        from repro.analysis.records import record_from_entry

        record = record_from_entry(
            {"fingerprint": "a", "key": "GONE[x=1]", "task": {"runner": "WL"}}
        )
        assert detect_grids([record]) == ()
