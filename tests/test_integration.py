"""Integration tests crossing module boundaries (stream → algorithm → verify,
distribution → protocol → reduction, workload → baselines comparison)."""

import pytest

from repro import (
    OptGuessingSetCover,
    StreamOrder,
    exact_cover_value,
    greedy_set_cover,
    is_feasible_cover,
    plant_cover_instance,
    run_streaming_algorithm,
)
from repro.baselines import SahaGetoorGreedy, StoreEverythingSetCover
from repro.communication.protocols.setcover_protocol import (
    FullExchangeSetCoverProtocol,
    TwoPartyAlgorithmOneProtocol,
)
from repro.core.algorithm1 import AlgorithmOneConfig, StreamingSetCover
from repro.lowerbound.dsc import DSCParameters, sample_dsc_random_partition
from repro.workloads.adversarial import dsc_stream_instance
from repro.workloads.random_instances import zipfian_instance


class TestPublicApiPipeline:
    """Exercise the package-level quickstart workflow end to end."""

    def test_quickstart_flow(self):
        instance = plant_cover_instance(
            universe_size=128, num_sets=40, cover_size=4, seed=7
        )
        algorithm = OptGuessingSetCover(alpha=2, epsilon=0.5, seed=7)
        result = run_streaming_algorithm(algorithm, instance.system)
        assert is_feasible_cover(instance.system, result.solution)
        assert result.solution_size <= 3 * instance.planted_opt

    def test_streaming_vs_offline_on_zipf(self):
        instance = zipfian_instance(120, 40, set_size=15, seed=3)
        offline = greedy_set_cover(instance.system)
        streaming = run_streaming_algorithm(
            OptGuessingSetCover(alpha=2, epsilon=0.5, seed=3), instance.system
        )
        # The streaming (α = 2)-approximation should not be drastically worse
        # than offline greedy on a benign workload.
        assert streaming.solution_size <= 2 * len(offline) + 2

    def test_all_algorithms_agree_on_feasibility(self, small_random_instance):
        system = small_random_instance.system
        algorithms = [
            SahaGetoorGreedy(),
            StoreEverythingSetCover(),
            OptGuessingSetCover(alpha=2, seed=5),
        ]
        sizes = []
        for algorithm in algorithms:
            result = run_streaming_algorithm(algorithm, system)
            assert is_feasible_cover(system, result.solution)
            sizes.append(result.solution_size)
        # The store-everything offline solution is never beaten by more than
        # the approximation slack of the others.
        assert min(sizes) >= 1


class TestHardInstancePipeline:
    """D_SC instances flow through both the streaming and the two-party paths."""

    def test_streaming_on_dsc_instance(self):
        instance = dsc_stream_instance(96, 6, alpha=2, theta=1, seed=11)
        config = AlgorithmOneConfig(alpha=2, opt_guess=2, epsilon=0.5)
        result = run_streaming_algorithm(
            StreamingSetCover(config, seed=11),
            instance.system,
            order=StreamOrder.RANDOM,
            seed=11,
        )
        assert is_feasible_cover(instance.system, result.solution)

    def test_two_party_protocols_consistent_with_exact(self):
        parameters = DSCParameters(universe_size=90, num_pairs=4, alpha=2, t=9)
        instance, alice, bob, _assignment = sample_dsc_random_partition(
            parameters, seed=13
        )
        exact = exact_cover_value(instance.set_system())
        full = FullExchangeSetCoverProtocol(solver="exact").execute(alice, bob)
        assert full.output == exact
        approx = TwoPartyAlgorithmOneProtocol(alpha=2, opt_guess=2, seed=13).execute(
            alice, bob
        )
        assert exact <= approx.output <= max(3 * exact, exact + 4)

    def test_space_budget_interrupts_greedy_storage(self):
        from repro.exceptions import SpaceBudgetExceededError

        instance = plant_cover_instance(200, 30, 4, seed=17)
        algorithm = StoreEverythingSetCover(space_budget=50)
        with pytest.raises(SpaceBudgetExceededError):
            run_streaming_algorithm(algorithm, instance.system)
