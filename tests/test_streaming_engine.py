"""Unit tests for the multi-pass engine."""

import pytest

from repro.exceptions import PassBudgetExceededError, SpaceBudgetExceededError
from repro.baselines.saha_getoor import SahaGetoorGreedy
from repro.baselines.full_storage import StoreEverythingSetCover
from repro.streaming.algorithm_base import StreamingAlgorithm
from repro.streaming.engine import EngineConfig, MultiPassEngine, run_streaming_algorithm
from repro.streaming.stream import StreamOrder


class TestEngineRuns:
    def test_runs_and_verifies(self, planted_instance):
        result = run_streaming_algorithm(SahaGetoorGreedy(), planted_instance.system)
        assert result.passes == 1
        assert result.solution_size >= planted_instance.planted_opt

    def test_pass_budget_enforced(self, planted_instance):
        algorithm = StoreEverythingSetCover()
        with pytest.raises(PassBudgetExceededError):
            run_streaming_algorithm(
                algorithm, planted_instance.system, pass_budget=0
            )

    def test_verification_failure_raises(self, tiny_system):
        class BadAlgorithm(SahaGetoorGreedy):
            def run(self, stream):
                result = super().run(stream)
                result.solution = result.solution[:1]  # break the cover
                return result

        with pytest.raises(ValueError):
            run_streaming_algorithm(BadAlgorithm(), tiny_system)

    def test_verification_can_be_disabled(self, tiny_system):
        class BadAlgorithm(SahaGetoorGreedy):
            def run(self, stream):
                result = super().run(stream)
                result.solution = result.solution[:1]
                return result

        result = run_streaming_algorithm(
            BadAlgorithm(), tiny_system, verify_solution=False
        )
        assert result.solution_size == 1

    def test_random_order_seeded(self, planted_instance):
        result_a = run_streaming_algorithm(
            SahaGetoorGreedy(),
            planted_instance.system,
            order=StreamOrder.RANDOM,
            seed=4,
        )
        result_b = run_streaming_algorithm(
            SahaGetoorGreedy(),
            planted_instance.system,
            order=StreamOrder.RANDOM,
            seed=4,
        )
        assert result_a.solution == result_b.solution


class TestEmptySolutionVerification:
    def test_empty_cover_of_nonempty_universe_raises(self, tiny_system):
        """Regression: an empty solution must be verified like any other.

        The engine used to skip verification whenever ``result.solution`` was
        falsy, letting a broken algorithm report an unverified "cover" of
        size 0.
        """

        class EmptyAlgorithm(SahaGetoorGreedy):
            def run(self, stream):
                result = super().run(stream)
                result.solution = []
                return result

        with pytest.raises(ValueError, match="does not cover"):
            run_streaming_algorithm(EmptyAlgorithm(), tiny_system)

    def test_empty_cover_of_empty_universe_passes(self):
        from repro.setcover.instance import SetSystem

        class NoopAlgorithm(StreamingAlgorithm):
            def run(self, stream):
                for _ in stream.iterate_pass():
                    pass
                return self._finalize(stream, [])

        result = run_streaming_algorithm(NoopAlgorithm(), SetSystem(0, [[], []]))
        assert result.solution == []


class TestSpaceBudget:
    def test_space_budget_enforced(self, planted_instance):
        with pytest.raises(SpaceBudgetExceededError):
            run_streaming_algorithm(
                StoreEverythingSetCover(),
                planted_instance.system,
                space_budget=1,
            )

    def test_space_budget_allows_runs_within_bound(self, planted_instance):
        unbudgeted = run_streaming_algorithm(
            StoreEverythingSetCover(), planted_instance.system
        )
        budget = unbudgeted.space.peak_words
        result = run_streaming_algorithm(
            StoreEverythingSetCover(), planted_instance.system, space_budget=budget
        )
        assert result.solution == unbudgeted.solution
        # The budgeted meter's report is surfaced on the result.
        assert result.space.peak_words == budget

    def test_budgeted_run_does_not_leak_budget_into_next_run(self, planted_instance):
        """Regression: a stale engine-armed meter must not outlive its run."""
        algorithm = StoreEverythingSetCover()
        with pytest.raises(SpaceBudgetExceededError):
            run_streaming_algorithm(
                algorithm, planted_instance.system, space_budget=1
            )
        # The same instance run WITHOUT a budget must succeed (previously the
        # stale budgeted meter, charges included, raised again).
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert result.solution

    def test_constructor_budget_preserved_without_engine_budget(self, planted_instance):
        algorithm = StoreEverythingSetCover(space_budget=1)
        with pytest.raises(SpaceBudgetExceededError):
            run_streaming_algorithm(algorithm, planted_instance.system)

    def test_constructor_budget_survives_engine_budgeted_runs(self, planted_instance):
        """A constructor budget comes back into force once the engine's lapses."""
        algorithm = StoreEverythingSetCover(space_budget=1)
        # Two engine-budgeted runs in a row (the displaced meter chains).
        run_streaming_algorithm(algorithm, planted_instance.system, space_budget=10 ** 9)
        run_streaming_algorithm(algorithm, planted_instance.system, space_budget=10 ** 9)
        with pytest.raises(SpaceBudgetExceededError):
            run_streaming_algorithm(algorithm, planted_instance.system)

    def test_space_budget_arms_fresh_meter_per_run(self, planted_instance):
        algorithm = StoreEverythingSetCover()
        engine = MultiPassEngine(EngineConfig(space_budget=10 ** 9))
        first = engine.run(algorithm, planted_instance.system)
        second = engine.run(algorithm, planted_instance.system)
        # A fresh meter per run: peaks do not accumulate across runs.
        assert first.space.peak_words == second.space.peak_words
        assert algorithm.space.budget == 10 ** 9


class TestEngineConfig:
    def test_engine_reusable(self, planted_instance, small_random_instance):
        engine = MultiPassEngine(EngineConfig())
        first = engine.run(SahaGetoorGreedy(), planted_instance.system)
        second = engine.run(SahaGetoorGreedy(), small_random_instance.system)
        assert first.solution_size > 0
        assert second.solution_size > 0

    def test_result_metadata_present(self, planted_instance):
        result = run_streaming_algorithm(SahaGetoorGreedy(), planted_instance.system)
        assert "uncovered_after_run" in result.metadata
        assert result.metadata["uncovered_after_run"] == 0
