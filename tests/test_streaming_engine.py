"""Unit tests for the multi-pass engine."""

import pytest

from repro.exceptions import PassBudgetExceededError
from repro.baselines.saha_getoor import SahaGetoorGreedy
from repro.baselines.full_storage import StoreEverythingSetCover
from repro.streaming.engine import EngineConfig, MultiPassEngine, run_streaming_algorithm
from repro.streaming.stream import StreamOrder


class TestEngineRuns:
    def test_runs_and_verifies(self, planted_instance):
        result = run_streaming_algorithm(SahaGetoorGreedy(), planted_instance.system)
        assert result.passes == 1
        assert result.solution_size >= planted_instance.planted_opt

    def test_pass_budget_enforced(self, planted_instance):
        algorithm = StoreEverythingSetCover()
        with pytest.raises(PassBudgetExceededError):
            run_streaming_algorithm(
                algorithm, planted_instance.system, pass_budget=0
            )

    def test_verification_failure_raises(self, tiny_system):
        class BadAlgorithm(SahaGetoorGreedy):
            def run(self, stream):
                result = super().run(stream)
                result.solution = result.solution[:1]  # break the cover
                return result

        with pytest.raises(ValueError):
            run_streaming_algorithm(BadAlgorithm(), tiny_system)

    def test_verification_can_be_disabled(self, tiny_system):
        class BadAlgorithm(SahaGetoorGreedy):
            def run(self, stream):
                result = super().run(stream)
                result.solution = result.solution[:1]
                return result

        result = run_streaming_algorithm(
            BadAlgorithm(), tiny_system, verify_solution=False
        )
        assert result.solution_size == 1

    def test_random_order_seeded(self, planted_instance):
        result_a = run_streaming_algorithm(
            SahaGetoorGreedy(),
            planted_instance.system,
            order=StreamOrder.RANDOM,
            seed=4,
        )
        result_b = run_streaming_algorithm(
            SahaGetoorGreedy(),
            planted_instance.system,
            order=StreamOrder.RANDOM,
            seed=4,
        )
        assert result_a.solution == result_b.solution


class TestEngineConfig:
    def test_engine_reusable(self, planted_instance, small_random_instance):
        engine = MultiPassEngine(EngineConfig())
        first = engine.run(SahaGetoorGreedy(), planted_instance.system)
        second = engine.run(SahaGetoorGreedy(), small_random_instance.system)
        assert first.solution_size > 0
        assert second.solution_size > 0

    def test_result_metadata_present(self, planted_instance):
        result = run_streaming_algorithm(SahaGetoorGreedy(), planted_instance.system)
        assert "uncovered_after_run" in result.metadata
        assert result.metadata["uncovered_after_run"] == 0
