"""Unit tests for the pluggable compute kernels (repro.kernels)."""

import pickle
import warnings

import pytest

import repro.kernels as kernels
from repro.core.element_sampling import element_sample, element_sample_mask
from repro.kernels import (
    AUTO_NUMPY_THRESHOLD,
    KERNEL_ENV_VAR,
    PyIntKernel,
    available_backends,
    kernel_registry,
    make_kernel,
    registered_backends,
    resolve_backend,
)
from repro.setcover.instance import SetSystem
from repro.utils.bitset import bitset_from_iterable, bitset_to_set
from repro.utils.rng import RandomSource

MASKS = [0b1011, 0b0110, 0b0000, 0b11111, 0b10000]
N = 5

requires_numpy = pytest.mark.skipif(not kernels.HAS_NUMPY, reason="NumPy not installed")


def both_kernels():
    """One raw kernel per registered backend (registry-enumerated)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # no-numba fallback note
        return [factory(N, MASKS) for factory in kernel_registry().values()]


class TestBackendResolution:
    def test_explicit_python(self):
        assert resolve_backend("python", 10**6, 10**6) == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    def test_auto_small_system_stays_python(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert resolve_backend("auto", 4, 4) == "python"

    @requires_numpy
    def test_auto_large_system_picks_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert resolve_backend("auto", 1 << 12, 1 << 12) == "numpy"

    @requires_numpy
    def test_env_var_forces_python(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "python")
        assert resolve_backend("auto", 1 << 12, 1 << 12) == "python"

    @requires_numpy
    def test_env_var_forces_numpy(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
        assert resolve_backend("auto", 2, 2) == "numpy"

    def test_numpy_missing_falls_back(self, monkeypatch):
        """Auto selection degrades gracefully on a NumPy-less install."""
        monkeypatch.setattr(kernels, "HAS_NUMPY", False)
        assert resolve_backend("auto", 1 << 12, 1 << 12) == "python"
        assert available_backends() == ["python"]

    def test_numpy_missing_env_hint_degrades(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAS_NUMPY", False)
        monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
        assert resolve_backend("auto", 1 << 12, 1 << 12) == "python"

    def test_numpy_missing_explicit_request_raises(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAS_NUMPY", False)
        with pytest.raises(ValueError):
            resolve_backend("numpy")

    def test_env_var_typo_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "nunpy")
        with pytest.raises(ValueError):
            resolve_backend("auto", 4, 4)

    def test_make_kernel_python(self):
        kernel = make_kernel(N, MASKS, backend="python")
        assert kernel.backend == "python"
        assert isinstance(kernel, PyIntKernel)

    @requires_numpy
    def test_make_kernel_numpy(self):
        kernel = make_kernel(N, MASKS, backend="numpy")
        assert kernel.backend == "numpy"

    def test_registry_matches_available_backends(self):
        assert registered_backends() == available_backends()
        assert list(kernel_registry()) == registered_backends()
        assert registered_backends()[0] == "python"


@requires_numpy
class TestCompiledResolutionAndFallbackLadder:
    """The compiled tier's selection rules and graceful degradation ladder:
    numba missing → NumPy-fallback flavour (one warning), NumPy missing →
    pure Python (one warning), failed builds → next rung, bytes unchanged."""

    def test_explicit_compiled_resolves(self):
        assert resolve_backend("compiled", 4, 4) == "compiled"

    def test_env_var_forces_compiled(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "compiled")
        assert resolve_backend("auto", 2, 2) == "compiled"

    def test_auto_tier_requires_numba_for_compiled(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        monkeypatch.setattr(kernels, "HAS_NUMBA", False)
        assert resolve_backend("auto", 1 << 12, 1 << 12) == "numpy"
        monkeypatch.setattr(kernels, "HAS_NUMBA", True)
        assert resolve_backend("auto", 1 << 12, 1 << 12) == "compiled"

    def test_make_kernel_compiled_flavour(self):
        from repro.kernels.compiled import HAS_NUMBA, CompiledKernel

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            kernel = make_kernel(N, MASKS, backend="compiled")
        assert kernel.backend == "compiled"
        assert isinstance(kernel, CompiledKernel)
        assert kernel.jitted == HAS_NUMBA  # fallback flavour on numba-less
        assert kernel.gains(0b11111) == PyIntKernel(N, MASKS).gains(0b11111)

    def test_numpy_missing_compiled_degrades_to_python_with_one_warning(
        self, monkeypatch
    ):
        monkeypatch.setattr(kernels, "HAS_NUMPY", False)
        monkeypatch.setattr(kernels, "_WARNED_NO_NUMPY_FOR_COMPILED", False)
        with pytest.warns(RuntimeWarning, match="NumPy is not installed"):
            assert resolve_backend("compiled") == "python"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_backend("compiled") == "python"  # second time: silent
        assert not caught
        kernel = make_kernel(N, MASKS, backend="compiled")
        assert isinstance(kernel, PyIntKernel)
        assert kernel.gains(0b11111) == PyIntKernel(N, MASKS).gains(0b11111)

    def test_numpy_missing_env_hint_compiled_degrades(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAS_NUMPY", False)
        monkeypatch.setenv(KERNEL_ENV_VAR, "compiled")
        assert resolve_backend("auto", 1 << 12, 1 << 12) == "python"

    def test_failed_compiled_build_falls_back_to_numpy(self, monkeypatch):
        """One broken rung falls exactly one rung, not all the way down."""
        from repro.kernels.compiled import CompiledKernel
        from repro.kernels.numpy_backend import NumpyKernel

        def boom(*args, **kwargs):
            raise RuntimeError("simulated compiled-build failure")

        monkeypatch.setattr(kernels, "_factory_compiled", boom)
        kernel = make_kernel(N, MASKS, backend="compiled")
        underlying = getattr(kernel, "_kernel", kernel)
        assert isinstance(underlying, NumpyKernel)
        assert not isinstance(underlying, CompiledKernel)
        assert kernel.gains(0b11111) == PyIntKernel(N, MASKS).gains(0b11111)

    def test_injected_build_faults_fall_to_pyint(self):
        """A rate-1 kernel.make fault breaks every accelerated rung: the
        ladder bottoms out at the always-available pure-Python kernel."""
        from repro.resilience.faults import fault_plan_active, parse_fault_spec

        with fault_plan_active(parse_fault_spec("seed=1,kernel.make:raise:1:1")):
            kernel = make_kernel(N, MASKS, backend="compiled")
        underlying = getattr(kernel, "_kernel", kernel)
        assert isinstance(underlying, PyIntKernel)
        assert kernel.gains(0b11111) == PyIntKernel(N, MASKS).gains(0b11111)

    def test_threads_argument_and_env(self, monkeypatch):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert make_kernel(N, MASKS, backend="compiled", threads=3).threads == 3
            monkeypatch.setenv("REPRO_KERNEL_THREADS", "2")
            assert make_kernel(N, MASKS, backend="compiled").threads == 2
            monkeypatch.setenv("REPRO_KERNEL_THREADS", "lots")
            with pytest.raises(ValueError):
                make_kernel(N, MASKS, backend="compiled")


class TestKernelPrimitives:
    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_gains_match_definition(self, kernel):
        uncovered = 0b10101
        expected = [bin(mask & uncovered).count("1") for mask in MASKS]
        assert kernel.gains(uncovered) == expected
        for index in range(len(MASKS)):
            assert kernel.gain(index, uncovered) == expected[index]

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_restrict(self, kernel):
        keep = 0b01110
        assert kernel.restrict(keep) == [mask & keep for mask in MASKS]

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_element_frequencies(self, kernel):
        expected = [
            sum(1 for mask in MASKS if mask >> element & 1) for element in range(N)
        ]
        assert kernel.element_frequencies() == expected

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_union_and_sizes(self, kernel):
        union = 0
        for mask in MASKS:
            union |= mask
        assert kernel.union() == union
        assert kernel.set_sizes() == [bin(mask).count("1") for mask in MASKS]

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_query_mask_beyond_universe(self, kernel):
        """Bits past the universe in a query mask are dropped identically."""
        wide = (1 << 300) | 0b10101
        assert kernel.gains(wide) == kernel.gains(0b10101)
        assert kernel.restrict(wide) == kernel.restrict(0b10101)
        assert kernel.best_gain_index(wide) == kernel.best_gain_index(0b10101)

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_empty_universe(self, kernel):
        empty = type(kernel)(0, [])
        assert empty.gains(0) == []
        assert empty.element_frequencies() == []
        assert empty.union() == 0

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_element_lists_ascending(self, kernel):
        expected = [
            [element for element in range(N) if mask >> element & 1] for mask in MASKS
        ]
        lists = kernel.element_lists()
        assert lists == expected
        assert all(isinstance(e, int) for row in lists for e in row)

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_element_lists_restricted_to_indices(self, kernel):
        full = kernel.element_lists()
        picked = [len(MASKS) - 1, 0]
        assert kernel.element_lists(picked) == [full[i] for i in picked]
        assert kernel.element_lists([]) == []

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_claim_resolution_prefers_largest_key(self, kernel):
        keys = list(range(1, len(MASKS) + 1))
        winners = kernel.claim_resolution(keys)
        for element in range(N):
            containing = [i for i in range(len(MASKS)) if MASKS[i] >> element & 1]
            expected = max(containing, key=lambda i: keys[i], default=-1)
            assert winners[element] == expected

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_claim_resolution_zero_keys_never_claim(self, kernel):
        winners = kernel.claim_resolution([0] * len(MASKS))
        assert winners == [-1] * N

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_claim_resolution_ties_to_smallest_index(self, kernel):
        winners = kernel.claim_resolution([5] * len(MASKS))
        for element in range(N):
            containing = [i for i in range(len(MASKS)) if MASKS[i] >> element & 1]
            assert winners[element] == (containing[0] if containing else -1)

    @requires_numpy
    def test_wide_universe_packing_round_trip(self):
        """Masks spanning several uint64 words survive pack/unpack exactly."""
        from repro.kernels.numpy_backend import NumpyKernel

        n = 200
        masks = [(1 << 199) | (1 << 64) | 1, (1 << n) - 1, 0, (1 << 130) - (1 << 60)]
        kernel = NumpyKernel(n, masks)
        assert kernel.restrict((1 << n) - 1) == masks
        assert kernel.union() == masks[0] | masks[1] | masks[3]
        assert kernel.set_sizes() == [bin(mask).count("1") for mask in masks]


class TestSetSystemIntegration:
    def test_default_backend_is_auto(self):
        system = SetSystem(N, [[0, 1], [2]])
        assert system.requested_backend == "auto"
        assert system.backend in available_backends()

    def test_explicit_backend_respected(self):
        system = SetSystem(N, [[0, 1], [2]], backend="python")
        assert system.backend == "python"

    @requires_numpy
    def test_numpy_backend_respected(self):
        system = SetSystem(N, [[0, 1], [2]], backend="numpy")
        assert system.backend == "numpy"

    def test_backend_survives_derivation(self):
        system = SetSystem(N, [[0, 1], [2, 3]], backend="python")
        assert system.restrict_to_elements([0, 2]).requested_backend == "python"
        assert system.subsystem([1]).requested_backend == "python"

    def test_restrict_accepts_mask(self):
        system = SetSystem(N, [[0, 1], [2, 3]])
        by_iterable = system.restrict_to_elements([0, 2])
        by_mask = system.restrict_to_elements(0b00101)
        assert by_iterable == by_mask

    def test_kernel_cached(self):
        system = SetSystem(N, [[0, 1]])
        assert system.kernel() is system.kernel()

    def test_pickle_round_trip_drops_kernel(self):
        system = SetSystem(N, [[0, 1], [2]], backend="python")
        system.kernel()  # force construction
        clone = pickle.loads(pickle.dumps(system))
        assert clone == system
        assert clone._kernel is None
        assert clone.element_frequencies() == system.element_frequencies()


class TestRandomBatch:
    def test_matches_sequential_draws(self):
        a, b = RandomSource(1234), RandomSource(1234)
        batch = a.random_batch(1000)
        assert batch == [b.random() for _ in range(1000)]

    def test_stream_advances_identically(self):
        a, b = RandomSource(77), RandomSource(77)
        a.random_batch(500)
        [b.random() for _ in range(500)]
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_small_batch_matches(self):
        a, b = RandomSource(5), RandomSource(5)
        assert a.random_batch(3) == [b.random() for _ in range(3)]

    def test_zero_and_negative(self):
        assert RandomSource(1).random_batch(0) == []
        with pytest.raises(ValueError):
            RandomSource(1).random_batch(-1)


class TestGainTrackers:
    def tracker_systems(self):
        masks = [0b110110, 0b011011, 0b101000, 0b000111, 0b111111, 0b000000]
        return 6, masks

    @pytest.mark.parametrize("kernel", both_kernels(), ids=lambda k: k.backend)
    def test_tracker_matches_best_gain_index(self, kernel):
        n = N
        uncovered = (1 << n) - 1
        tracker = kernel.gain_tracker(uncovered)
        for pick_mask in (0b00011, 0b01100, 0b10000):
            assert tracker.best() == kernel.best_gain_index(uncovered)
            newly = pick_mask & uncovered
            tracker.cover(newly)
            uncovered &= ~newly
        assert tracker.best() == kernel.best_gain_index(uncovered)

    def test_forced_escape_keeps_trace_identical(self, monkeypatch):
        """With a zero stale-pop budget every pick runs on the tracker."""
        import repro.setcover.greedy as greedy_module
        from repro.setcover.greedy import greedy_cover_trace
        from repro.setcover.maxcover import greedy_max_coverage

        n = 40
        masks = [((0x9E3779B97F4A7C15 * (i + 1)) & ((1 << 40) - 1)) | 1 for i in range(12)]
        masks += [0xFF << (8 * i) for i in range(5)]  # stripes keep it coverable
        reference = {}
        for backend in available_backends():
            system = SetSystem.from_masks(n, masks, backend=backend)
            reference[backend] = (
                greedy_cover_trace(system).solution,
                greedy_max_coverage(system, 5),
            )
        monkeypatch.setattr(greedy_module, "_STALE_POP_ESCAPE", 0)
        for backend in available_backends():
            system = SetSystem.from_masks(n, masks, backend=backend)
            assert greedy_cover_trace(system).solution == reference[backend][0]
            assert greedy_max_coverage(system, 5) == reference[backend][1]
        values = list(reference.values())
        assert all(value == values[0] for value in values)  # backends agree too

    @requires_numpy
    def test_tracker_first_second_run_identical(self):
        """A warm kernel (inverted index built) must not change the trace."""
        import repro.setcover.greedy as greedy_module
        from repro.setcover.greedy import greedy_cover_trace

        n = 30
        masks = [(0b111111 << (3 * i)) & ((1 << 30) - 1) | (i % 5) for i in range(10)]
        system = SetSystem.from_masks(n, masks, backend="numpy")
        first = greedy_cover_trace(system).solution
        system.kernel()._inverted_index()  # warm: prefers_tracker() flips on
        assert system.kernel().prefers_tracker()
        assert greedy_cover_trace(system).solution == first


class TestElementSampleMask:
    def test_matches_set_based_sampler(self):
        mask = bitset_from_iterable(range(0, 700, 3))
        for seed in (1, 2, 3):
            via_set = element_sample(bitset_to_set(mask), 0.3, seed=seed)
            via_mask = element_sample_mask(mask, 0.3, seed=seed)
            assert via_mask == bitset_from_iterable(via_set)

    def test_probability_extremes(self):
        mask = 0b101101
        assert element_sample_mask(mask, 1.0, seed=1) == mask
        assert element_sample_mask(mask, 0.0, seed=1) == 0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            element_sample_mask(0b1, 1.5)
