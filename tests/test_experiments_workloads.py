"""Unit tests for the workload sweep runner and its scenario registration."""

import pytest

from repro.experiments.runners import RUNNER_DESCRIPTIONS, RUNNER_REGISTRY
from repro.experiments.workload_defs import (
    ALGORITHM_KINDS,
    WORKLOAD_KINDS,
    run_workload_sweep,
)
from repro.runtime.scenarios import SCENARIO_REGISTRY, get_scenario, iter_scenarios
from repro.runtime.tasks import execute_task, tasks_from_scenario


class TestRunnerRegistry:
    def test_workload_runner_registered(self):
        assert "WL" in RUNNER_REGISTRY
        assert RUNNER_REGISTRY["WL"] is run_workload_sweep
        assert "WL" in RUNNER_DESCRIPTIONS

    def test_experiments_still_present(self):
        for experiment_id in (f"E{i}" for i in range(1, 13)):
            assert experiment_id in RUNNER_REGISTRY


class TestRunWorkloadSweep:
    @pytest.mark.parametrize("workload", WORKLOAD_KINDS)
    def test_every_workload_kind_runs(self, workload):
        result = run_workload_sweep(
            workload=workload, algorithm="saha_getoor", seed=5
        )
        assert result.experiment_id == "WL"
        assert result.findings["workload"] == workload
        assert result.findings["peak_space_words"] >= 0

    @pytest.mark.parametrize("algorithm", ALGORITHM_KINDS)
    def test_every_algorithm_runs_on_dsc(self, algorithm):
        result = run_workload_sweep(workload="dsc", algorithm=algorithm, seed=7)
        assert result.findings["algorithm"] == algorithm
        # Hard instances always report their space accounting.
        assert "peak_space_words" in result.findings
        assert "stored_incidences_peak" in result.findings

    def test_random_order_differs_from_adversarial_stream(self):
        adversarial = run_workload_sweep(
            workload="random", algorithm="saha_getoor", order="adversarial", seed=3
        )
        shuffled = run_workload_sweep(
            workload="random", algorithm="saha_getoor", order="random", seed=3
        )
        assert adversarial.findings["order"] == "adversarial"
        assert shuffled.findings["order"] == "random"

    def test_deterministic_given_seed(self):
        first = run_workload_sweep(workload="dsc", algorithm="algorithm1", seed=11)
        second = run_workload_sweep(workload="dsc", algorithm="algorithm1", seed=11)
        assert first.findings == second.findings

    def test_space_budget_overrun_reported_not_raised(self):
        result = run_workload_sweep(
            workload="random",
            algorithm="store_everything",
            space_budget=1,
            seed=13,
        )
        assert result.findings["budget_exceeded"] is True
        assert result.findings["solution_size"] is None

    def test_space_budget_within_bound(self):
        result = run_workload_sweep(
            workload="random",
            algorithm="saha_getoor",
            space_budget=10 ** 9,
            seed=13,
        )
        assert result.findings["budget_exceeded"] is False
        assert result.findings["space_budget"] == 10 ** 9

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_workload_sweep(workload="nope")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            run_workload_sweep(algorithm="nope")


class TestAdversarialGrid:
    def test_grid_covers_the_full_cartesian_product(self):
        specs = [spec for spec in iter_scenarios(tag="adversarial")]
        assert len(specs) == len(WORKLOAD_KINDS) * 2 * len(ALGORITHM_KINDS)
        combos = {
            (
                dict(spec.params)["workload"],
                dict(spec.params)["order"],
                dict(spec.params)["algorithm"],
            )
            for spec in specs
        }
        assert len(combos) == len(specs)
        for spec in specs:
            assert spec.runner == "WL"
            assert "workload" in spec.tags

    def test_default_wl_scenario_registered(self):
        spec = get_scenario("WL")
        assert spec.runner == "WL"
        assert spec.seed is not None

    def test_grid_cell_executes_as_task(self):
        name = "ADV[algorithm=saha_getoor,order=random,workload=dsc]"
        assert name in SCENARIO_REGISTRY
        tasks = tasks_from_scenario(SCENARIO_REGISTRY[name])
        assert len(tasks) == 1
        payload = execute_task(tasks[0])
        assert payload["experiment_id"] == "WL"
        assert payload["findings"]["workload"] == "dsc"
        assert payload["findings"]["order"] == "random"
        assert payload["findings"]["peak_space_words"] >= 0

    def test_paper_tag_unchanged(self):
        names = [spec.name for spec in iter_scenarios(tag="paper")]
        assert names == [f"E{i}" for i in range(1, 13)]
