"""Tests for the sharded executor: determinism, caching, ordered merging."""

from repro.experiments.experiment_defs import run_e12_infotheory
from repro.experiments.harness import SweepRunner
from repro.runtime.executor import (
    STATUS_CACHED,
    STATUS_COMPUTED,
    TaskExecutor,
    default_chunksize,
    parallel_map,
    run_cached,
)
from repro.runtime.scenarios import freeze_params
from repro.runtime.store import ResultStore
from repro.runtime.tasks import RuntimeTask

import pytest


def grid_tasks():
    """A small, cheap scenario grid: E12 at two gadget sizes x two seeds."""
    return [
        RuntimeTask(
            key=f"E12[t={t},seed={seed}]",
            runner="E12",
            params=freeze_params({"t": t}),
            seed=seed,
        )
        for t in (2, 3)
        for seed in (1, 2)
    ]


def render_report(report):
    return "\n".join(
        f"{outcome.task.key}:{outcome.status}\n{outcome.result().render()}"
        for outcome in report.outcomes
    )


def _square(value):
    """Module-level so the process pool can pickle it."""
    return value * value


def _sweep_row(setting):
    """Module-level sweep runner returning one table row."""
    return (setting["x"], setting["x"] * 10)


class TestParallelSerialParity:
    def test_parallel_output_identical_to_serial(self):
        tasks = grid_tasks()
        serial = TaskExecutor(workers=1).run(tasks)
        parallel = TaskExecutor(workers=4).run(tasks)
        assert render_report(serial) == render_report(parallel)
        assert [o.task.key for o in parallel.outcomes] == [t.key for t in tasks]

    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=4) == [i * i for i in items]
        assert parallel_map(_square, items, workers=1) == [i * i for i in items]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            TaskExecutor(workers=0)


class TestStoreIntegration:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        tasks = grid_tasks()
        store = ResultStore(tmp_path)
        first = TaskExecutor(workers=2, store=store).run(tasks)
        assert first.counts() == {STATUS_COMPUTED: len(tasks), STATUS_CACHED: 0}

        second = TaskExecutor(workers=2, store=ResultStore(tmp_path)).run(tasks)
        assert second.counts() == {STATUS_COMPUTED: 0, STATUS_CACHED: len(tasks)}
        assert render_report(first).replace(STATUS_COMPUTED, STATUS_CACHED) == (
            render_report(second)
        )

    def test_partial_cache_mixes_statuses(self, tmp_path):
        tasks = grid_tasks()
        store = ResultStore(tmp_path)
        TaskExecutor(store=store).run(tasks[:2])
        report = TaskExecutor(store=ResultStore(tmp_path)).run(tasks)
        statuses = [outcome.status for outcome in report.outcomes]
        assert statuses == [
            STATUS_CACHED,
            STATUS_CACHED,
            STATUS_COMPUTED,
            STATUS_COMPUTED,
        ]

    def test_cached_results_match_computed(self, tmp_path):
        tasks = grid_tasks()[:2]
        fresh = TaskExecutor().run(tasks)
        TaskExecutor(store=ResultStore(tmp_path)).run(tasks)
        cached = TaskExecutor(store=ResultStore(tmp_path)).run(tasks)
        for before, after in zip(fresh.outcomes, cached.outcomes):
            assert before.result().render() == after.result().render()
            assert before.result().findings == after.result().findings


class TestFailureSemantics:
    def bad_task(self):
        return RuntimeTask(
            key="bad", runner="E12", params=freeze_params({"bogus": 1}), seed=1
        )

    def test_failed_batch_keeps_completed_results(self, tmp_path):
        """Tasks finished before a failure are persisted — the sweep resumes."""
        store = ResultStore(tmp_path)
        good = grid_tasks()[0]
        with pytest.raises(TypeError):
            TaskExecutor(store=store).run([good, self.bad_task()])
        assert good in store
        report = TaskExecutor(store=ResultStore(tmp_path)).run([good])
        assert report.counts()[STATUS_CACHED] == 1

    def test_task_errors_propagate_in_parallel(self):
        """A task's own exception is not swallowed by the sandbox fallback."""
        with pytest.raises(TypeError):
            TaskExecutor(workers=2).run([grid_tasks()[0], self.bad_task()])


class TestRunCached:
    def test_registry_function_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        result, status = run_cached(run_e12_infotheory, {"t": 2, "seed": 9}, store)
        assert status == STATUS_COMPUTED
        again, status = run_cached(run_e12_infotheory, {"t": 2, "seed": 9}, store)
        assert status == STATUS_CACHED
        assert again.render() == result.render()

    def test_shares_fingerprints_with_cli_tasks(self, tmp_path):
        """A benchmark-cached call hits the cache a CLI run populated."""
        store = ResultStore(tmp_path)
        task = RuntimeTask(
            key="E12", runner="E12", params=freeze_params({"t": 2}), seed=9
        )
        TaskExecutor(store=store).run([task])
        _, status = run_cached(run_e12_infotheory, {"t": 2, "seed": 9}, store)
        assert status == STATUS_CACHED


class TestSweepRunnerSharding:
    def test_parallel_sweep_matches_serial(self):
        settings = [{"x": x} for x in range(8)]
        serial = SweepRunner(["x", "y"]).run(settings, _sweep_row)
        parallel = SweepRunner(["x", "y"]).run(settings, _sweep_row, workers=4)
        assert parallel.render() == serial.render()

    def test_chunked_sweep_matches_serial(self):
        settings = [{"x": x} for x in range(9)]
        serial = SweepRunner(["x", "y"]).run(settings, _sweep_row)
        chunked = SweepRunner(["x", "y"]).run(settings, _sweep_row, workers=3, chunksize=4)
        assert chunked.render() == serial.render()


class TestChunkedSubmission:
    def test_chunked_output_identical_to_serial(self):
        tasks = grid_tasks()
        serial = TaskExecutor(workers=1).run(tasks)
        for chunksize in (1, 2, 3, len(tasks) + 5):
            chunked = TaskExecutor(workers=2, chunksize=chunksize).run(tasks)
            assert render_report(chunked) == render_report(serial)
            assert [o.task.key for o in chunked.outcomes] == [t.key for t in tasks]

    def test_chunked_runs_persist_to_store(self, tmp_path):
        tasks = grid_tasks()
        store = ResultStore(tmp_path)
        first = TaskExecutor(workers=2, chunksize=3, store=store).run(tasks)
        assert first.counts()[STATUS_COMPUTED] == len(tasks)
        second = TaskExecutor(workers=2, chunksize=3, store=ResultStore(tmp_path)).run(tasks)
        assert second.counts() == {STATUS_COMPUTED: 0, STATUS_CACHED: len(tasks)}

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ValueError):
            TaskExecutor(chunksize=0)

    def test_parallel_map_chunked_preserves_order(self):
        items = list(range(23))
        for chunksize in (1, 4, 7, 50):
            assert parallel_map(_square, items, workers=3, chunksize=chunksize) == [
                i * i for i in items
            ]

    def test_default_chunksize_heuristic(self):
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(3, 4) == 1
        # ~4 chunks per worker on big grids, never zero.
        assert default_chunksize(1000, 4) == 63
        assert default_chunksize(5, 1) == 2
