"""Unit tests for the exact set cover solvers."""

import pytest

from repro.exceptions import InfeasibleInstanceError
from repro.setcover.exact import (
    brute_force_set_cover,
    exact_cover_of_elements,
    exact_cover_value,
    exact_set_cover,
)
from repro.setcover.instance import SetSystem
from repro.setcover.verify import is_feasible_cover
from repro.workloads.random_instances import random_instance


class TestExactBasics:
    def test_optimal_on_tiny(self, tiny_system):
        assert exact_cover_value(tiny_system) == 2

    def test_beats_greedy_gadget(self, chain_system):
        assert exact_cover_value(chain_system) == 2

    def test_solution_is_feasible(self, tiny_system):
        solution = exact_set_cover(tiny_system)
        assert is_feasible_cover(tiny_system, solution)

    def test_single_set_cover(self):
        system = SetSystem(4, [[0, 1, 2, 3], [0], [1]])
        assert exact_cover_value(system) == 1

    def test_empty_target(self, tiny_system):
        assert exact_set_cover(tiny_system, target_mask=0) == []

    def test_infeasible_raises(self):
        system = SetSystem(3, [[0], [1]])
        with pytest.raises(InfeasibleInstanceError):
            exact_set_cover(system)

    def test_target_mask_partial(self, tiny_system):
        solution = exact_set_cover(tiny_system, target_mask=0b000011)
        assert len(solution) == 1

    def test_exact_cover_of_elements(self, tiny_system):
        solution = exact_cover_of_elements(tiny_system, [0, 3])
        covered = tiny_system.coverage_mask(solution)
        assert covered & 0b001001 == 0b001001
        assert len(solution) <= 2


class TestAgainstBruteForce:
    def test_matches_brute_force_on_random_instances(self):
        for seed in range(6):
            instance = random_instance(universe_size=10, num_sets=7, seed=seed)
            bb = exact_cover_value(instance.system)
            bf = len(brute_force_set_cover(instance.system))
            assert bb == bf, f"seed {seed}: branch-and-bound {bb} != brute force {bf}"

    def test_matches_brute_force_on_handmade(self, tiny_system, chain_system):
        for system in (tiny_system, chain_system):
            assert exact_cover_value(system) == len(brute_force_set_cover(system))

    def test_brute_force_infeasible(self):
        with pytest.raises(InfeasibleInstanceError):
            brute_force_set_cover(SetSystem(2, [[0]]))


class TestPlantedOptimum:
    def test_planted_cover_is_optimal(self, planted_instance):
        assert exact_cover_value(planted_instance.system) == planted_instance.planted_opt

    def test_disjoint_blocks_opt(self):
        from repro.workloads.random_instances import disjoint_blocks_instance

        instance = disjoint_blocks_instance(30, 5, seed=3)
        assert exact_cover_value(instance.system) == 5
