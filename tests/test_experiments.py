"""Tests for the experiment harness and (scaled-down) experiment runners."""

import pytest

from repro.experiments.harness import ExperimentResult, SweepRunner, summarize_results
from repro.experiments.experiment_defs import (
    EXPERIMENT_REGISTRY,
    run_e02_passes_and_approx,
    run_e03_element_sampling,
    run_e04_covering_lemma,
    run_e05_dsc_opt_gap,
    run_e07_reduction_disj,
    run_e09_dmc_gap,
    run_e12_infotheory,
)
from repro.utils.tables import Table


class TestHarness:
    def test_experiment_result_render(self):
        table = Table(["x"], title="demo")
        table.add_row(1)
        result = ExperimentResult("E0", "demo experiment", table, {"k": 3})
        text = result.render()
        assert "E0" in text and "demo experiment" in text and "k = 3" in text

    def test_sweep_runner(self):
        runner = SweepRunner(["a", "b"])
        table = runner.run([{"a": 1}, {"a": 2}], lambda s: (s["a"], s["a"] * 2))
        assert table.column("b") == [2, 4]

    def test_summarize_results(self):
        table = Table(["x"])
        table.add_row(1)
        results = [
            ExperimentResult("E1", "one", table),
            ExperimentResult("E2", "two", table),
        ]
        text = summarize_results(results)
        assert "E1" in text and "E2" in text and "=" * 72 in text

    def test_registry_complete(self):
        assert set(EXPERIMENT_REGISTRY) == {f"E{i}" for i in range(1, 13)}


class TestScaledDownExperiments:
    """Each experiment runs at reduced scale and its key findings hold."""

    def test_e02_bounds_hold(self):
        result = run_e02_passes_and_approx(
            universe_size=120, num_sets=30, cover_sizes=(2, 4), alphas=(1, 2), seed=1
        )
        assert result.findings["approx_bound_violations"] == 0
        assert result.findings["pass_bound_violations"] == 0

    def test_e03_standard_constant_never_violates(self):
        result = run_e03_element_sampling(
            universe_size=200,
            num_sets=25,
            cover_size=3,
            rhos=(0.5, 0.25),
            constants=(16.0,),
            trials=5,
            seed=2,
        )
        assert all(
            rate == 0.0
            for key, rate in result.findings.items()
            if key.startswith("c16.0")
        )

    def test_e04_within_lemma_bound(self):
        result = run_e04_covering_lemma(
            universe_size=300, u_size=300, s=75, ks=(1, 2), trials=60, seed=3
        )
        assert result.findings["all_within_bound"]

    def test_e05_weak_gap_always_holds(self):
        result = run_e05_dsc_opt_gap(
            universe_size=400, num_pairs=5, alpha=2, t=5, trials=4, seed=4
        )
        assert result.findings["weak_gap_failures"] == 0
        assert result.findings["theta1_max_opt"] <= 2
        assert result.findings["theta0_min_opt"] >= 3

    def test_e07_reduction_low_error(self):
        result = run_e07_reduction_disj(
            universe_size=160, num_pairs=4, alpha=2, t=16, trials=6, seed=5
        )
        assert result.findings["error_rate"] <= 1 / 6

    def test_e09_dmc_gap(self):
        result = run_e09_dmc_gap(num_pairs=3, epsilons=(0.4,), trials=2, seed=6)
        assert result.findings["side_failures"] == 0
        assert result.findings["claim_4_4_failures"] == 0

    def test_e12_facts_hold(self):
        result = run_e12_infotheory(t=3)
        assert result.findings["all_facts_hold"]
        assert result.findings["transcript_information_lower_bound"] > 0
