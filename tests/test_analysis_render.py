"""Renderer tests: report structure, golden markdown, self-contained HTML."""

from pathlib import Path

import pytest

from repro.analysis.bench import BenchEntry, BenchTrajectory
from repro.analysis.loader import MissingCell, StoreAnalysis
from repro.analysis.records import AnalysisRecord
from repro.analysis.render import (
    MISSING_MARKER,
    CodeBlock,
    Heading,
    Paragraph,
    ReportDocument,
    TableBlock,
    build_report,
    experiment_results_markdown,
    render_html,
    render_markdown,
    write_report,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_report.md"


def make_workload_record(algorithm, order, solution_size, peak, passes, key=None, **kwargs):
    defaults = dict(
        runner="WL",
        experiment_id="WL",
        title=f"dsc workload, {algorithm}, {order} arrival",
        workload="dsc",
        order=order,
        universe_size=96,
        num_sets=24,
        opt_bound=3,
        feasible=True,
        final_space_words=peak // 2,
        dominant_category="stored_incidences",
    )
    defaults.update(kwargs)
    return AnalysisRecord(
        key=key or f"ADV[algorithm={algorithm},order={order},workload=dsc]",
        fingerprint=(algorithm + order).ljust(16, "0"),
        algorithm=algorithm,
        solution_size=solution_size,
        peak_space_words=peak,
        passes=passes,
        **defaults,
    )


def fixture_analysis():
    """A deterministic synthetic analysis: 3 workload cells + 1 paper cell."""
    records = [
        make_workload_record("algorithm1", "adversarial", 3, 300, 2),
        make_workload_record("algorithm1", "random", 4, 320, 2),
        make_workload_record(
            "saha_getoor", "adversarial", 6, 110, 1, feasible=False
        ),
        AnalysisRecord(
            key="E12",
            runner="E12",
            experiment_id="E12",
            title="information-theory facts",
            fingerprint="e12fingerprint00",
            findings={"all_facts_hold": True},
            table={"headers": ["quantity", "value"], "rows": [["facts", 12]]},
        ),
    ]
    missing = [
        MissingCell(
            key="ADV[algorithm=emek_rosen,order=random,workload=dsc]",
            scenario="ADV[algorithm=emek_rosen,order=random,workload=dsc]",
            fingerprint="c0ffee" * 10 + "beef",
        )
    ]
    return StoreAnalysis(
        root=Path("/fixture/store"),
        records=records,
        missing=missing,
        grids=("ADV",),
    )


def fixture_bench():
    return [
        BenchTrajectory(
            name="kernels",
            schema="bench_kernels/v1",
            entries=[BenchEntry("256x512", 4.9), BenchEntry("2048x4096", 13.3)],
        )
    ]


class TestBuildReport:
    def test_document_sections(self):
        doc = build_report(fixture_analysis(), bench=fixture_bench(), use_mpl=False)
        headings = [b.text for b in doc.blocks if isinstance(b, Heading)]
        assert "Space–approximation tradeoff" in headings
        assert "Passes vs space" in headings
        assert "Workload detail" in headings
        assert "Missing cells" in headings
        assert "Other experiment results" in headings
        assert "Benchmark trajectory" in headings

    def test_figures_are_text_without_mpl(self):
        doc = build_report(fixture_analysis(), use_mpl=False)
        assert len(doc.figures) == 2
        assert all(f.kind == "text" for f in doc.figures)

    def test_empty_store_builds_with_explicit_note(self):
        doc = build_report(StoreAnalysis(root=Path("/nowhere")), use_mpl=False)
        markdown = render_markdown(doc)
        assert "no readable result cells" in markdown
        assert "Missing cells" in markdown

    def test_missing_cells_render_markers(self):
        markdown = render_markdown(build_report(fixture_analysis(), use_mpl=False))
        assert MISSING_MARKER in markdown
        assert "emek_rosen" in markdown

    def test_infeasible_cell_shows_outcome_not_ratio(self):
        markdown = render_markdown(build_report(fixture_analysis(), use_mpl=False))
        assert "infeasible" in markdown


class TestGoldenMarkdown:
    def test_matches_golden_file(self):
        doc = build_report(
            fixture_analysis(),
            bench=fixture_bench(),
            title="Golden fixture report",
            use_mpl=False,
        )
        rendered = render_markdown(doc)
        assert rendered == GOLDEN_PATH.read_text(), (
            "report markdown drifted from tests/data/golden_report.md; "
            "if the change is intentional, regenerate with "
            "`PYTHONPATH=src python tests/regen_golden_report.py`"
        )


class TestRenderMarkdown:
    def test_title_and_heading_levels(self):
        doc = ReportDocument(
            title="demo",
            blocks=[Heading(2, "Sec"), Paragraph("text"), CodeBlock("x = 1")],
        )
        markdown = render_markdown(doc)
        assert markdown.startswith("# demo\n")
        assert "## Sec" in markdown
        assert "```\nx = 1\n```" in markdown

    def test_table_cells_normalised(self):
        doc = ReportDocument(
            title="t",
            blocks=[TableBlock(headers=["a"], rows=[[None], [True], [1.23456]])],
        )
        markdown = render_markdown(doc)
        assert "| – |" in markdown
        assert "| yes |" in markdown
        assert "| 1.23 |" in markdown


class TestRenderHtml:
    def test_self_contained_page(self):
        doc = build_report(fixture_analysis(), bench=fixture_bench(), use_mpl=False)
        html = render_html(doc)
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        assert "<pre>" in html  # text figures embedded inline
        assert "src=" not in html.replace('src="data:', "")  # no external refs

    def test_missing_marker_is_highlighted(self):
        html = render_html(build_report(fixture_analysis(), use_mpl=False))
        assert 'class="missing"' in html

    def test_html_escapes_content(self):
        doc = ReportDocument(title="a<b", blocks=[Paragraph("x & <y>")])
        html = render_html(doc)
        assert "a&lt;b" in html
        assert "x &amp; &lt;y&gt;" in html


class TestWriteReport:
    def test_writes_html_and_markdown(self, tmp_path):
        doc = build_report(fixture_analysis(), use_mpl=False)
        written = write_report(
            doc,
            html_dir=tmp_path / "html",
            markdown_path=tmp_path / "md" / "report.md",
        )
        assert written["html"].name == "index.html"
        assert written["html"].read_text().startswith("<!DOCTYPE html>")
        assert "Missing cells" in written["markdown"].read_text()

    def test_nothing_requested_writes_nothing(self, tmp_path):
        assert write_report(build_report(fixture_analysis(), use_mpl=False)) == {}


class TestExperimentResultsMarkdown:
    def test_legacy_shape_preserved(self):
        from repro.experiments.harness import ExperimentResult
        from repro.utils.tables import Table

        table = Table(["n"], title="demo")
        table.add_row(4)
        result = ExperimentResult(
            experiment_id="E1", title="demo exp", table=table, findings={"k": 1}
        )
        text = experiment_results_markdown([result], title="Rep")
        assert "# Rep" in text
        assert "## E1 — demo exp" in text
        assert "* `k` = 1" in text
