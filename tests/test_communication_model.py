"""Unit tests for the two-party communication model."""

import pytest

from repro.communication.cost import (
    average_communication,
    evaluate_protocol,
    transcript_bits,
    worst_case_communication,
)
from repro.communication.model import (
    Message,
    Transcript,
    TwoPartyProtocol,
    payload_bits,
    run_protocol,
)
from repro.exceptions import ProtocolError


class EchoProtocol(TwoPartyProtocol):
    """Alice sends her input; Bob replies with the pair."""

    name = "echo"

    def alice_round(self, alice_input, received, state):
        return alice_input, None

    def bob_round(self, bob_input, received, state):
        answer = (received[0].payload, bob_input)
        return answer, answer


class SilentProtocol(TwoPartyProtocol):
    """Never terminates (for testing the round cap)."""

    name = "silent"
    max_rounds = 4

    def alice_round(self, alice_input, received, state):
        return 1, None

    def bob_round(self, bob_input, received, state):
        return 1, None


class TestPayloadBits:
    def test_bool(self):
        assert payload_bits(True) == 1

    def test_int(self):
        assert payload_bits(0) == 1
        assert payload_bits(255) == 8

    def test_string(self):
        assert payload_bits("abc") == 24

    def test_collection(self):
        assert payload_bits([1, 2, 3]) >= 3

    def test_none(self):
        assert payload_bits(None) == 1

    def test_unknown_type_conservative(self):
        class Widget:
            pass

        assert payload_bits(Widget()) == 64


class TestMessageAndTranscript:
    def test_message_bits_auto(self):
        message = Message(sender="alice", payload=15)
        assert message.bits == 4

    def test_message_bits_override(self):
        message = Message(sender="bob", payload=[1, 2, 3], bits=100)
        assert message.bits == 100

    def test_invalid_sender(self):
        with pytest.raises(ProtocolError):
            Message(sender="carol", payload=1)

    def test_transcript_totals(self):
        transcript = Transcript(
            messages=[
                Message(sender="alice", payload=7),
                Message(sender="bob", payload=1),
            ]
        )
        assert transcript.total_bits == 3 + 1
        assert transcript.rounds == 2

    def test_as_symbol_hashable(self):
        transcript = Transcript(
            messages=[Message(sender="alice", payload=frozenset({1, 2}))],
            output="Yes",
        )
        hash(transcript.as_symbol())


class TestRunProtocol:
    def test_echo_round_trip(self):
        transcript = run_protocol(EchoProtocol(), "hello", "world")
        assert transcript.output == ("hello", "world")
        assert transcript.rounds == 2

    def test_round_cap_raises(self):
        with pytest.raises(ProtocolError):
            run_protocol(SilentProtocol(), 1, 2)

    def test_execute_equivalent(self):
        assert EchoProtocol().execute("a", "b").output == ("a", "b")


class TestCostHelpers:
    def _transcripts(self):
        return [
            Transcript(messages=[Message(sender="alice", payload=2 ** 10)]),
            Transcript(messages=[Message(sender="alice", payload=1)]),
        ]

    def test_transcript_bits(self):
        assert transcript_bits(self._transcripts()[0]) == 11

    def test_worst_case(self):
        assert worst_case_communication(self._transcripts()) == 11

    def test_average(self):
        assert average_communication(self._transcripts()) == pytest.approx(6.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            worst_case_communication([])
        with pytest.raises(ValueError):
            average_communication([])

    def test_evaluate_protocol(self):
        instances = [("x", "y"), ("a", "b")]
        error, worst, mean = evaluate_protocol(
            EchoProtocol(), instances, correct=lambda pair, output: output == pair
        )
        assert error == 0.0
        assert worst >= mean > 0
