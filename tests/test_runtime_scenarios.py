"""Unit tests for the scenario registry and grid expansion."""

import pytest

from repro.experiments.experiment_defs import EXPERIMENT_REGISTRY
from repro.runtime.scenarios import (
    SCENARIO_REGISTRY,
    ScenarioGrid,
    ScenarioSpec,
    freeze_params,
    get_scenario,
    iter_scenarios,
    register_grid,
    register_scenario,
    unregister_scenario,
)
from repro.runtime.tasks import tasks_from_scenario


class TestBuiltinRegistry:
    def test_every_experiment_is_registered(self):
        for experiment_id in EXPERIMENT_REGISTRY:
            spec = get_scenario(experiment_id)
            assert spec.runner == experiment_id
            assert spec.repetitions == 1
            assert "paper" in spec.tags

    def test_lookup_is_case_insensitive_for_experiments(self):
        assert get_scenario("e5").name == "E5"

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("nope")

    def test_iter_scenarios_natural_order_and_tag_filtered(self):
        names = [spec.name for spec in iter_scenarios(tag="paper")]
        assert names == [f"E{i}" for i in range(1, 13)]
        assert iter_scenarios(tag="no-such-tag") == []


class TestFreezeParams:
    def test_sorted_and_hashable(self):
        frozen = freeze_params({"b": [1, 2], "a": (3, [4])})
        assert frozen == (("a", (3, (4,))), ("b", (1, 2)))
        hash(frozen)

    def test_dict_values_rejected(self):
        with pytest.raises(TypeError):
            freeze_params({"weights": {"a": 1}})

    def test_empty(self):
        assert freeze_params(None) == ()
        assert freeze_params({}) == ()


class TestScenarioSpec:
    def test_unknown_runner_rejected(self):
        with pytest.raises(KeyError):
            ScenarioSpec(name="bad", runner="E99")

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", runner="E12", repetitions=0)

    def test_kwargs_round_trip(self):
        spec = ScenarioSpec(
            name="t", runner="E12", params=freeze_params({"t": 2})
        )
        assert spec.kwargs() == {"t": 2}
        assert spec.resolve_runner() is EXPERIMENT_REGISTRY["E12"]


class TestRegistration:
    def test_register_and_unregister(self):
        try:
            spec = register_scenario("tmp-scn", runner="E12", params={"t": 2})
            assert SCENARIO_REGISTRY["tmp-scn"] is spec
            with pytest.raises(KeyError):
                register_scenario("tmp-scn", runner="E12")
            register_scenario("tmp-scn", runner="E12", seed=5, replace=True)
            assert get_scenario("tmp-scn").seed == 5
        finally:
            unregister_scenario("tmp-scn")
        assert "tmp-scn" not in SCENARIO_REGISTRY

    def test_register_grid_expands_product(self):
        try:
            specs = register_grid(
                "tmp-grid",
                runner="E12",
                axes={"t": [2, 3], "seed": [1, 2]},
            )
            names = [spec.name for spec in specs]
            assert len(specs) == 4
            assert "tmp-grid[seed=1,t=2]" in names
            assert get_scenario("tmp-grid[seed=2,t=3]").kwargs() == {
                "seed": 2,
                "t": 3,
            }
        finally:
            for spec in iter_scenarios():
                if spec.name.startswith("tmp-grid"):
                    unregister_scenario(spec.name)


class TestGridExpansion:
    def test_empty_axes_single_spec(self):
        grid = ScenarioGrid(name="g", runner="E12")
        specs = grid.expand()
        assert [spec.name for spec in specs] == ["g"]

    def test_base_params_merged_and_overridable(self):
        grid = ScenarioGrid(
            name="g",
            runner="E12",
            axes=freeze_params({"t": [2, 3]}),
            base_params=freeze_params({"seed": 11, "t": 99}),
        )
        specs = grid.expand()
        assert all(spec.kwargs()["seed"] == 11 for spec in specs)
        assert sorted(spec.kwargs()["t"] for spec in specs) == [2, 3]


class TestTasksFromScenario:
    def test_single_repetition_keeps_default_seed(self):
        tasks = tasks_from_scenario(get_scenario("E12"))
        assert len(tasks) == 1
        assert tasks[0].key == "E12"
        assert tasks[0].seed is None

    def test_seed_override_passes_through(self):
        tasks = tasks_from_scenario(get_scenario("E12"), seed_override=7)
        assert tasks[0].seed == 7

    def test_repetitions_expand_with_derived_seeds(self):
        spec = ScenarioSpec(name="reps", runner="E12", seed=3, repetitions=3)
        tasks = tasks_from_scenario(spec)
        assert [task.key for task in tasks] == ["reps#r0", "reps#r1", "reps#r2"]
        seeds = {task.seed for task in tasks}
        assert len(seeds) == 3
        assert all(seed is not None for seed in seeds)

    def test_repetition_seeds_are_stable(self):
        spec = ScenarioSpec(name="reps", runner="E12", seed=3, repetitions=2)
        assert [t.seed for t in tasks_from_scenario(spec)] == [
            t.seed for t in tasks_from_scenario(spec)
        ]
