"""Unit tests for the gap-hamming-distance problem and its distributions."""

import math

import pytest

from repro.exceptions import DistributionError
from repro.problems.ghd import (
    GHDInstance,
    default_set_sizes,
    ghd_answer,
    hamming_distance,
    sample_dghd,
    sample_dghd_no,
    sample_dghd_yes,
    sample_uniform_ghd,
)
from repro.utils.rng import RandomSource


class TestBasics:
    def test_hamming_distance(self):
        assert hamming_distance(frozenset({1, 2}), frozenset({2, 3})) == 2
        assert hamming_distance(frozenset(), frozenset()) == 0

    def test_answer_yes(self):
        t = 16
        instance = GHDInstance(t, frozenset(range(8)), frozenset(range(8, 16)))
        assert instance.distance == 16
        assert ghd_answer(instance) == "Yes"

    def test_answer_no(self):
        t = 16
        same = frozenset(range(8))
        instance = GHDInstance(t, same, same)
        assert ghd_answer(instance) == "No"

    def test_answer_gap(self):
        t = 100
        alice = frozenset(range(50))
        bob = frozenset(range(25, 75))
        instance = GHDInstance(t, alice, bob)
        assert abs(instance.distance - 50) < 10
        assert ghd_answer(instance) == "*"

    def test_default_set_sizes(self):
        assert default_set_sizes(10) == (5, 5)
        assert default_set_sizes(1) == (1, 1)


class TestSamplers:
    def test_uniform_sampler_in_universe(self):
        instance = sample_uniform_ghd(20, seed=1)
        assert instance.alice <= frozenset(range(20))
        assert instance.bob <= frozenset(range(20))

    def test_yes_sampler_respects_gap(self):
        rng = RandomSource(2)
        t = 36
        for _ in range(20):
            instance = sample_dghd_yes(t, seed=rng.spawn())
            assert instance.distance >= t / 2 + math.sqrt(t)
            assert instance.label == "Yes"

    def test_no_sampler_respects_gap(self):
        rng = RandomSource(3)
        t = 36
        for _ in range(20):
            instance = sample_dghd_no(t, seed=rng.spawn())
            assert instance.distance <= t / 2 - math.sqrt(t)
            assert instance.label == "No"

    def test_fixed_sizes(self):
        instance = sample_dghd_yes(30, a=10, b=12, seed=4)
        assert len(instance.alice) == 10
        assert len(instance.bob) == 12

    def test_mixture_sampler_labels(self):
        rng = RandomSource(5)
        labels = {sample_dghd(25, seed=rng.spawn()).label for _ in range(30)}
        assert labels == {"Yes", "No"}

    def test_invalid_sizes_rejected(self):
        with pytest.raises(DistributionError):
            sample_dghd_yes(10, a=11, b=5)

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            sample_uniform_ghd(0)

    def test_impossible_condition_raises(self):
        # With a = b = t the two sets are equal, so a Yes (large-distance)
        # instance can never be sampled.
        with pytest.raises(DistributionError):
            sample_dghd_yes(9, a=9, b=9, max_attempts=50)
