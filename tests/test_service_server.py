"""Solver-service tests: parity, admission, deadlines, faults, drain.

Most tests run the service with ``workers=0`` (inline compute, no fork):
admission, batching, caching, deadline, and degradation semantics are all
identical to the pooled path — both funnel through ``WorkerPool.run_batch``
— so the fast mode keeps the suite cheap while one pooled test per failure
mode exercises the real process boundary.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.kernels import HAS_NUMPY
from repro.service.client import AsyncServiceClient
from repro.service.instances import InstanceSpecError, build_instance, instance_digest
from repro.service.requests import (
    BadRequestError,
    canonical_params,
    compute_response,
    request_fingerprint,
)
from repro.service.server import ServiceConfig, SolverService, _Pending

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="NumPy backend not installed")

SPEC = "hot=random:n=32,m=24,seed=5"


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def serve_and(coro_fn, **overrides):
    """Start a service, run ``coro_fn(svc, client)``, drain, return result."""
    options = {"workers": 0, "instances": (SPEC,)}
    options.update(overrides)

    async def go():
        svc = SolverService(ServiceConfig(**options))
        host, port = await svc.start()
        try:
            async with AsyncServiceClient(host, port) as client:
                return await coro_fn(svc, client)
        finally:
            await svc.drain()

    return asyncio.run(go())


def direct_answer(kind, params, spec=SPEC):
    _, system = build_instance(spec)
    return compute_response(system, kind, canonical_params(kind, params))


class TestInstanceSpecs:
    def test_spec_grammar_round_trip(self):
        name, system = build_instance("x=random:n=16,m=8,seed=2")
        assert name == "x" and (system.universe_size, system.num_sets) == (16, 8)

    def test_planted_generator(self):
        name, system = build_instance("p=planted:n=30,m=20,cover=4,seed=1")
        assert name == "p" and system.num_sets == 20

    @pytest.mark.parametrize(
        "spec",
        [
            "noequals",
            "x=unknown:n=4,m=2",
            "x=random:m=2",  # missing n
            "x=random:n=4,m=2,bogus=1",
            "x=random:n=4,m=2,seed=zzz",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(InstanceSpecError):
            build_instance(spec)

    def test_digest_tracks_packed_buffer(self):
        _, a = build_instance(SPEC)
        _, b = build_instance(SPEC)
        _, c = build_instance("hot=random:n=32,m=24,seed=6")
        assert instance_digest(a) == instance_digest(b)
        assert instance_digest(a) != instance_digest(c)


class TestRequestCore:
    def test_canonicalisation_applies_defaults(self):
        assert canonical_params("estimate", {}) == {"alpha": 2, "seed": 0}
        assert canonical_params("cover", {}) == {}

    @pytest.mark.parametrize(
        "kind, params",
        [
            ("cover", {"extra": 1}),
            ("maxcover", {}),  # missing k
            ("maxcover", {"k": "3"}),
            ("maxcover", {"k": True}),
            ("maxcover", {"k": -1}),
            ("estimate", {"alpha": 0}),
            ("estimate", {"seed": -2}),
            ("wat", {}),
        ],
    )
    def test_invalid_requests_rejected(self, kind, params):
        with pytest.raises(BadRequestError):
            canonical_params(kind, params)

    def test_fingerprint_separates_kinds_params_instances(self):
        fp = request_fingerprint
        assert fp("d1", "cover", {}) != fp("d1", "maxcover", {"k": 1})
        assert fp("d1", "maxcover", {"k": 1}) != fp("d1", "maxcover", {"k": 2})
        assert fp("d1", "cover", {}) != fp("d2", "cover", {})
        assert fp("d1", "cover", {}) == fp("d1", "cover", {})

    @needs_numpy
    def test_payload_parity_across_kernel_backends(self):
        base = "hot=random:n=40,m=30,seed=9,backend="
        _, py_system = build_instance(base + "python")
        _, np_system = build_instance(base + "numpy")
        assert instance_digest(py_system) == instance_digest(np_system)
        for kind, params in (
            ("cover", {}),
            ("maxcover", {"k": 4}),
            ("estimate", {"alpha": 2, "seed": 0}),
        ):
            canon = canonical_params(kind, params)
            assert canonical(compute_response(py_system, kind, canon)) == canonical(
                compute_response(np_system, kind, canon)
            )


class TestRoundTrip:
    def test_cover_matches_direct_solver_byte_for_byte(self):
        async def go(svc, client):
            return await client.request("cover")

        response = serve_and(go)
        assert response["status"] == "ok"
        assert canonical(response["result"]) == canonical(direct_answer("cover", {}))

    def test_maxcover_and_estimate(self):
        async def go(svc, client):
            a = await client.request("maxcover", params={"k": 3})
            b = await client.request("estimate", params={"alpha": 2, "seed": 1})
            return a, b

        a, b = serve_and(go)
        assert canonical(a["result"]) == canonical(direct_answer("maxcover", {"k": 3}))
        assert canonical(b["result"]) == canonical(
            direct_answer("estimate", {"alpha": 2, "seed": 1})
        )

    @needs_numpy
    def test_served_response_identical_across_backends(self):
        async def go(svc, client):
            return await client.request("maxcover", params={"k": 5})

        py = serve_and(go, instances=(SPEC + ",backend=python",))
        np_ = serve_and(go, instances=(SPEC + ",backend=numpy",))
        assert canonical(py["result"]) == canonical(np_["result"])

    def test_cache_hit_is_flagged_and_counted(self):
        async def go(svc, client):
            first = await client.request("cover")
            second = await client.request("cover")
            return first, second, dict(svc.counters), svc.cache.stats()

        first, second, counters, cache = serve_and(go)
        assert first["cached"] is False and second["cached"] is True
        assert canonical(first["result"]) == canonical(second["result"])
        assert counters["cached"] == 1 and cache["hits"] == 1

    def test_probes_answer_inline(self):
        async def go(svc, client):
            ping = await client.ping()
            health = await client.health()
            return ping, health

        ping, health = serve_and(go)
        assert ping["status"] == "ok" and ping["result"] == {"pong": True}
        payload = health["result"]
        assert payload["queue_limit"] == 64
        assert "hot" in payload["instances"]
        # workers=0 serves inline: the "degraded" path is the configured one.
        assert payload["pool"]["workers"] == 0
        assert payload["pool"]["respawns"] == 0

    @pytest.mark.parametrize(
        "message",
        [
            {"kind": "wat"},
            {"kind": "maxcover", "params": {"k": "three"}},
            {"kind": "cover", "instance": "nope"},
            {"kind": "cover", "deadline_s": -2},
        ],
    )
    def test_invalid_requests_get_bad_request(self, message):
        async def go(svc, client):
            return await client.request(
                message["kind"],
                params=message.get("params"),
                instance=message.get("instance"),
                deadline_s=message.get("deadline_s"),
            )

        assert serve_and(go)["status"] == "bad_request"


class TestAdmission:
    def test_queue_full_sheds_explicitly(self):
        async def go():
            svc = SolverService(ServiceConfig(workers=0, queue_limit=1, instances=(SPEC,)))
            # Admission without a running batcher: the queue can only fill.
            svc._queue = asyncio.Queue(maxsize=1)
            first = asyncio.create_task(
                svc._handle_request("r1", "cover", {"kind": "cover"})
            )
            await asyncio.sleep(0)  # let r1 enqueue
            shed = await svc._handle_request(
                "r2", "maxcover", {"kind": "maxcover", "params": {"k": 1}}
            )
            first.cancel()
            with pytest.raises(asyncio.CancelledError):
                await first
            return shed

        shed = asyncio.run(go())
        assert shed["status"] == "shed"
        assert "queue full" in shed["error"]

    def test_cache_hits_bypass_admission(self):
        async def go():
            svc = SolverService(ServiceConfig(workers=0, queue_limit=1, instances=(SPEC,)))
            svc._queue = asyncio.Queue(maxsize=1)
            svc._queue.put_nowait(object())  # queue already full
            digest = svc._digests["hot"]
            fingerprint = request_fingerprint(digest, "cover", {})
            svc.cache.put(fingerprint, {"kind": "cover", "canned": True})
            return await svc._handle_request("r1", "cover", {"kind": "cover"})

        response = asyncio.run(go())
        assert response["status"] == "ok" and response["cached"] is True

    def test_draining_refuses_new_work(self):
        async def go():
            svc = SolverService(ServiceConfig(workers=0, instances=(SPEC,)))
            svc.draining = True
            return await svc._handle_request("r1", "cover", {"kind": "cover"})

        assert asyncio.run(go())["status"] == "draining"

    def test_flush_answers_queued_requests_as_draining(self):
        async def go():
            svc = SolverService(ServiceConfig(workers=0, instances=(SPEC,)))
            svc._queue = asyncio.Queue(maxsize=4)
            loop = asyncio.get_running_loop()
            entries = [
                _Pending(f"r{i}", "hot", "cover", {}, f"fp{i}", None, loop.create_future())
                for i in range(3)
            ]
            for entry in entries:
                svc._queue.put_nowait(entry)
            svc._flush_draining()
            return [entry.future.result()["status"] for entry in entries]

        assert asyncio.run(go()) == ["draining"] * 3


class TestDeadlines:
    def test_expired_deadline_answered_without_compute(self):
        async def go(svc, client):
            return await client.request("estimate", deadline_s=1e-7)

        response = serve_and(go, cache_capacity=0)
        assert response["status"] == "deadline"

    def test_roomy_deadline_flows_through(self):
        async def go(svc, client):
            return await client.request("cover", deadline_s=60.0)

        assert serve_and(go)["status"] == "ok"

    def test_default_deadline_config_applies(self):
        async def go(svc, client):
            return await client.request("estimate")

        response = serve_and(go, cache_capacity=0, default_deadline_s=1e-7)
        assert response["status"] == "deadline"


class TestWorkerFaults:
    def test_transient_fault_is_retried_to_success(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=3,service.request:raise:1:1")
        monkeypatch.setenv("REPRO_RETRY", "attempts=3,backoff=0.001")

        async def go(svc, client):
            return await client.request("cover")

        response = serve_and(go, cache_capacity=0)
        assert response["status"] == "ok"
        assert canonical(response["result"]) == canonical(direct_answer("cover", {}))

    def test_persistent_fault_becomes_error_not_hang(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=3,service.request:raise:1:99")
        monkeypatch.setenv("REPRO_RETRY", "attempts=2,backoff=0.001")

        async def go(svc, client):
            return await client.request("cover")

        response = serve_and(go, cache_capacity=0)
        assert response["status"] == "error"
        assert "transient failure persisted" in response["error"]


class TestProcessPool:
    def test_pooled_answers_match_inline(self):
        async def go(svc, client):
            a = await client.request("cover")
            b = await client.request("estimate")
            return a, b

        pooled_a, pooled_b = serve_and(go, workers=1)
        assert pooled_a["status"] == "ok" and pooled_b["status"] == "ok"
        assert canonical(pooled_a["result"]) == canonical(direct_answer("cover", {}))
        assert canonical(pooled_b["result"]) == canonical(
            direct_answer("estimate", {})
        )

    def test_worker_crashes_degrade_but_still_answer(self, monkeypatch):
        # Crashes persist across respawns (until=99): the pool is lost, the
        # respawn budget (0) is exhausted, the service degrades inline where
        # the crash decays to a transient raise — which still fails every
        # attempt, so the request ends as a typed error.  Bounded, no hang.
        monkeypatch.setenv("REPRO_FAULTS", "seed=3,service.request:crash:1:99")
        monkeypatch.setenv(
            "REPRO_RETRY", "attempts=2,backoff=0.001,respawns=0,breaker=5"
        )

        async def go(svc, client):
            response = await client.request("cover")
            return response, svc.pool.degraded

        response, degraded = serve_and(go, workers=1, cache_capacity=0)
        assert degraded is True
        assert response["status"] == "error"

    def test_crash_on_first_attempt_recovers_via_respawn(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=3,service.request:crash:1:1")
        monkeypatch.setenv("REPRO_RETRY", "attempts=3,backoff=0.001,respawns=3")

        async def go(svc, client):
            response = await client.request("cover")
            return response, svc.pool.respawns, svc.pool.degraded

        response, respawns, degraded = serve_and(go, workers=1, cache_capacity=0)
        assert response["status"] == "ok"
        assert canonical(response["result"]) == canonical(direct_answer("cover", {}))
        assert respawns >= 1 and degraded is False


class TestDrain:
    def test_drain_unlinks_segments_and_is_idempotent(self):
        async def go():
            svc = SolverService(ServiceConfig(workers=0, instances=(SPEC,)))
            host, port = await svc.start()
            async with AsyncServiceClient(host, port) as client:
                assert (await client.request("cover"))["status"] == "ok"
            await svc.drain()
            assert svc._publications == {}
            await svc.drain()  # second drain is a no-op
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)
            return svc.counters["ok"]

        assert asyncio.run(go()) == 1

    def test_probes_report_draining(self):
        async def go():
            svc = SolverService(ServiceConfig(workers=0, instances=(SPEC,)))
            host, port = await svc.start()
            async with AsyncServiceClient(host, port) as client:
                before = await client.ping()
                svc.draining = True
                during = await client.ping()
            await svc.drain()
            return before["status"], during["status"]

        assert asyncio.run(go()) == ("ok", "draining")
