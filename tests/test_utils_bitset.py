"""Unit tests for the bitset helpers."""

import pytest

from repro.utils.bitset import (
    bitset_difference,
    bitset_from_indices,
    bitset_from_iterable,
    bitset_intersection,
    bitset_size,
    bitset_to_set,
    bitset_union,
    iter_bits,
    universe_mask,
)


class TestBitsetFromIndices:
    def test_matches_iterable_constructor(self):
        for elements in ([], [0], [3, 1, 4], [63, 64, 65], list(range(0, 200, 7))):
            assert bitset_from_indices(elements) == bitset_from_iterable(elements)

    def test_accepts_generators_and_sets(self):
        assert bitset_from_indices(e for e in (5, 2)) == 0b100100
        assert bitset_from_indices({5, 2}) == 0b100100

    def test_duplicates_collapse(self):
        assert bitset_from_indices([1, 1, 1]) == 0b10

    def test_negative_element_rejected(self):
        with pytest.raises(ValueError):
            bitset_from_indices([3, -1])
        with pytest.raises(ValueError):
            bitset_from_indices([-2])


class TestBitsetFromIterable:
    def test_empty(self):
        assert bitset_from_iterable([]) == 0

    def test_single_element(self):
        assert bitset_from_iterable([3]) == 0b1000

    def test_multiple_elements(self):
        assert bitset_from_iterable([0, 2, 5]) == 0b100101

    def test_duplicates_collapse(self):
        assert bitset_from_iterable([1, 1, 1]) == 0b10

    def test_negative_element_rejected(self):
        with pytest.raises(ValueError):
            bitset_from_iterable([-1])


class TestRoundTrip:
    def test_to_set_round_trip(self):
        elements = {0, 7, 13, 64, 200}
        assert bitset_to_set(bitset_from_iterable(elements)) == elements

    def test_iter_bits_sorted(self):
        mask = bitset_from_iterable([9, 2, 30])
        assert list(iter_bits(mask)) == [2, 9, 30]

    def test_zero_mask_iterates_nothing(self):
        assert list(iter_bits(0)) == []


class TestSizeAndOps:
    def test_size_empty(self):
        assert bitset_size(0) == 0

    def test_size_counts_bits(self):
        assert bitset_size(0b101101) == 4

    def test_union(self):
        assert bitset_union(0b001, 0b100) == 0b101

    def test_union_of_none(self):
        assert bitset_union() == 0

    def test_intersection(self):
        assert bitset_intersection(0b0111, 0b1110) == 0b0110

    def test_intersection_requires_operand(self):
        with pytest.raises(ValueError):
            bitset_intersection()

    def test_difference(self):
        assert bitset_difference(0b1111, 0b0101) == 0b1010

    def test_difference_disjoint(self):
        assert bitset_difference(0b11, 0b1100) == 0b11


class TestPopcountImplementations:
    def test_fallback_matches_fast_path(self):
        from repro.utils.bitset import _popcount_fallback

        for mask in (0, 1, 0b101101, (1 << 200) - 1, 1 << 999):
            assert _popcount_fallback(mask) == bitset_size(mask)

    def test_large_sparse_iteration(self):
        # The lowest-set-bit iteration must stay O(popcount) semantics-wise:
        # three bits far apart come back sorted without scanning the gaps.
        mask = (1 << 5) | (1 << 3000) | (1 << 70000)
        assert list(iter_bits(mask)) == [5, 3000, 70000]


class TestUniverseMask:
    def test_zero_universe(self):
        assert universe_mask(0) == 0

    def test_small_universe(self):
        assert universe_mask(4) == 0b1111

    def test_size_matches(self):
        assert bitset_size(universe_mask(97)) == 97

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            universe_mask(-1)
