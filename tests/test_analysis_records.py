"""Unit tests for the tidy record schema of the analysis subsystem."""

import pytest

from repro.analysis.records import (
    AnalysisRecord,
    OUTCOMES,
    experiment_records,
    outcome_counts,
    record_from_entry,
    workload_records,
)


def make_entry(**findings_overrides):
    findings = {
        "workload": "dsc",
        "algorithm": "algorithm1",
        "order": "adversarial",
        "n": 96,
        "m": 24,
        "opt_guess": 4,
        "solution_size": 8,
        "feasible": True,
        "passes": 3,
        "peak_space_words": 300,
        "final_space_words": 120,
        "dominant_category": "stored_incidences",
        "peak_by_category": {"stored_incidences": 250, "solution": 50},
        "stored_incidences_peak": 250,
        "space_budget": None,
        "budget_exceeded": False,
        "instance_uncoverable": False,
    }
    findings.update(findings_overrides)
    return {
        "format": 1,
        "fingerprint": "f" * 64,
        "key": "ADV[algorithm=algorithm1,order=adversarial,workload=dsc]",
        "task": {
            "runner": "WL",
            "seed": 20170517,
            "params": [["algorithm", "algorithm1"], ["workload", "dsc"]],
        },
        "result": {
            "experiment_id": "WL",
            "title": "dsc workload",
            "table": {
                "headers": ["workload", "n", "m", "dominant_category"],
                "rows": [["dsc", 96, 24, "stored_incidences"]],
                "title": "WL",
            },
            "findings": findings,
        },
    }


class TestRecordFromEntry:
    def test_identity_fields(self):
        record = record_from_entry(make_entry())
        assert record.runner == "WL"
        assert record.seed == 20170517
        assert record.fingerprint == "f" * 64
        assert record.params == (("algorithm", "algorithm1"), ("workload", "dsc"))

    def test_workload_axes_and_metrics(self):
        record = record_from_entry(make_entry())
        assert record.workload == "dsc"
        assert record.algorithm == "algorithm1"
        assert record.universe_size == 96
        assert record.num_sets == 24
        assert record.passes == 3
        assert record.peak_space_words == 300
        assert record.final_space_words == 120
        assert record.dominant_category == "stored_incidences"

    def test_is_workload(self):
        assert record_from_entry(make_entry()).is_workload

    def test_approx_ratio_uses_opt_guess(self):
        record = record_from_entry(make_entry())
        assert record.approx_ratio == pytest.approx(2.0)
        assert not record.opt_is_planted

    def test_planted_opt_preferred_over_guess(self):
        record = record_from_entry(make_entry(planted_opt=2))
        assert record.opt_bound == 2
        assert record.opt_is_planted
        assert record.approx_ratio == pytest.approx(4.0)

    def test_infeasible_solution_has_no_ratio(self):
        record = record_from_entry(make_entry(feasible=False))
        assert record.approx_ratio is None

    def test_missing_solution_has_no_ratio(self):
        record = record_from_entry(make_entry(solution_size=None))
        assert record.approx_ratio is None

    def test_space_fraction(self):
        record = record_from_entry(make_entry(space_budget=600))
        assert record.space_fraction == pytest.approx(0.5)
        assert record_from_entry(make_entry()).space_fraction is None

    def test_outcome_priority(self):
        assert record_from_entry(make_entry()).outcome == "ok"
        assert record_from_entry(make_entry(feasible=False)).outcome == "infeasible"
        assert (
            record_from_entry(make_entry(instance_uncoverable=True)).outcome
            == "uncoverable"
        )
        assert (
            record_from_entry(
                make_entry(budget_exceeded=True, instance_uncoverable=True)
            ).outcome
            == "budget_exceeded"
        )

    def test_pre_space_fields_entries_fall_back_to_table(self):
        entry = make_entry()
        for key in ("n", "m", "dominant_category", "final_space_words"):
            del entry["result"]["findings"][key]
        record = record_from_entry(entry)
        assert record.universe_size == 96
        assert record.num_sets == 24
        assert record.dominant_category == "stored_incidences"
        assert record.final_space_words is None

    def test_dash_dominant_category_reads_as_none(self):
        record = record_from_entry(make_entry(dominant_category=None))
        # falls back to the table value; force the dash through the table too
        entry = make_entry(dominant_category=None)
        entry["result"]["table"]["rows"][0][3] = "-"
        assert record_from_entry(entry).dominant_category is None
        assert record.dominant_category == "stored_incidences"

    def test_non_workload_entry_keeps_payload_only(self):
        entry = make_entry()
        entry["result"]["findings"] = {"exponent": 0.5}
        entry["task"]["runner"] = "E1"
        record = record_from_entry(entry)
        assert not record.is_workload
        assert record.approx_ratio is None
        assert record.findings == {"exponent": 0.5}
        assert record.table["headers"]

    def test_tolerates_minimal_entry(self):
        record = record_from_entry({"fingerprint": "a", "key": "x"})
        assert record.key == "x"
        assert record.outcome == "ok"
        assert not record.is_workload


class TestHelpers:
    def test_partitions(self):
        records = [
            record_from_entry(make_entry()),
            record_from_entry({"fingerprint": "a", "key": "E1"}),
        ]
        assert len(workload_records(records)) == 1
        assert len(experiment_records(records)) == 1

    def test_outcome_counts_cover_all_buckets(self):
        counts = outcome_counts([record_from_entry(make_entry())])
        assert set(counts) == set(OUTCOMES)
        assert counts["ok"] == 1

    def test_record_is_frozen(self):
        record = record_from_entry(make_entry())
        with pytest.raises(AttributeError):
            record.key = "other"


class TestBooleanHygiene:
    def test_bool_findings_never_parse_as_ints(self):
        record = record_from_entry(make_entry(passes=True))
        assert record.passes is None

    def test_non_bool_feasible_reads_as_unknown(self):
        record = record_from_entry(make_entry(feasible="yes"))
        assert record.feasible is None
        assert record.outcome == "ok"
