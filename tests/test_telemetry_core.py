"""Unit tests for the telemetry core: spans, metrics, schema, sessions."""

import json

import pytest

from repro.kernels.pyint import PyIntKernel
from repro.telemetry import (
    TRACE_SCHEMA,
    TelemetrySession,
    active_session,
    capture_wanted,
    instrument_kernel,
    kernel_profile,
    kernel_profiler,
    measure_overhead,
    merge_telemetry_blocks,
    summarize_snapshot,
    trace_dir_from_env,
    validate_trace_dir,
    validate_trace_file,
    validate_trace_line,
)
from repro.telemetry import metrics, spans
from repro.telemetry.metrics import MetricsRegistry, merge_counter_maps
from repro.telemetry.session import TELEMETRY_ENV_VAR, TRACE_ENV_VAR
from repro.telemetry.spans import Tracer


class TestSpans:
    def test_noop_without_session(self):
        # The whole point: outside a session these are one-ContextVar no-ops.
        with spans.span("engine.run", n=4) as active:
            active.set(extra=1)
        spans.event("stream.pass", number=1)
        assert spans.active_tracer() is None

    def test_nesting_records_parent_ids(self):
        with TelemetrySession() as session:
            with spans.span("outer"):
                with spans.span("inner"):
                    pass
        recorded = {s["name"]: s for s in session.tracer.spans}
        assert recorded["outer"]["parent_id"] is None
        assert recorded["inner"]["parent_id"] == recorded["outer"]["span_id"]

    def test_attrs_and_set(self):
        with TelemetrySession() as session:
            with spans.span("alg1.solve", solver="greedy") as active:
                active.set(round_solution_size=3)
        (span,) = session.tracer.spans
        assert span["attrs"] == {"solver": "greedy", "round_solution_size": 3}
        assert span["dur"] >= 0

    def test_span_recorded_on_exception(self):
        with TelemetrySession() as session:
            with pytest.raises(ValueError):
                with spans.span("engine.run"):
                    raise ValueError("boom")
        assert [s["name"] for s in session.tracer.spans] == ["engine.run"]

    def test_event_is_zero_duration(self):
        with TelemetrySession() as session:
            spans.event("stream.pass", number=2)
        (span,) = session.tracer.spans
        assert span["dur"] == 0.0
        assert span["attrs"]["number"] == 2

    def test_absorb_rebases_and_reparents(self):
        worker = Tracer()
        worker.add_span("task.run", duration=1.0)
        parent = Tracer()
        lifecycle = parent.add_span("task.lifecycle", duration=2.0)
        parent.absorb(list(worker.spans), under=lifecycle, extra_attrs={"task": "k"})
        absorbed = [s for s in parent.spans if s["name"] == "task.run"]
        assert len(absorbed) == 1
        assert absorbed[0]["parent_id"] == lifecycle
        assert absorbed[0]["attrs"]["task"] == "k"
        ids = [s["span_id"] for s in parent.spans]
        assert len(ids) == len(set(ids)), "absorb must re-base span ids"


class TestMetrics:
    def test_noop_without_registry(self):
        metrics.add("kernel.calls.gain")
        metrics.observe("pass.sets_admitted", 5)
        metrics.gauge_set("space.total_words", 10)
        assert metrics.active() is None

    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        token = metrics._ACTIVE.set(registry)
        try:
            metrics.add("rng.draws", 3)
            metrics.add("rng.draws")
            metrics.gauge_set("space.total_words", 5)
            metrics.gauge_set("space.total_words", 2)
            metrics.observe("pass.sets_admitted", 7)
        finally:
            metrics._ACTIVE.reset(token)
        snap = registry.snapshot()
        assert snap["counters"] == {"rng.draws": 4}
        assert snap["gauges"]["space.total_words"]["last"] == 2
        assert snap["gauges"]["space.total_words"]["max"] == 5
        assert snap["gauges"]["space.total_words"]["updates"] == 2
        assert snap["histograms"]["pass.sets_admitted"]["count"] == 1

    def test_merge_snapshot_associative(self):
        def registry_with(n, gauge, hist):
            r = MetricsRegistry()
            r.count("c", n)
            r.gauge_set("g", gauge)
            r.observe("h", hist)
            return r

        parts = [registry_with(1, 5, 2), registry_with(2, 3, 9), registry_with(4, 8, 2)]
        left = MetricsRegistry()
        for part in parts:
            left.merge_snapshot(part.snapshot())

        inner = MetricsRegistry()
        inner.merge_snapshot(parts[1].snapshot())
        inner.merge_snapshot(parts[2].snapshot())
        right = MetricsRegistry()
        right.merge_snapshot(parts[0].snapshot())
        right.merge_snapshot(inner.snapshot())

        assert left.snapshot() == right.snapshot()

    def test_merge_counter_maps(self):
        merged = merge_counter_maps([{"a": 1, "b": 2}, {"b": 3}])
        assert merged == {"a": 1, "b": 5}


class TestSession:
    def test_activation_scoped(self):
        assert active_session() is None
        with TelemetrySession(label="t") as session:
            assert active_session() is session
            assert metrics.active() is session.registry
        assert active_session() is None
        assert metrics.active() is None

    def test_not_reentrant(self):
        session = TelemetrySession()
        with session:
            with pytest.raises(RuntimeError):
                session.__enter__()

    def test_snapshot_shape(self):
        with TelemetrySession(label="snap") as session:
            metrics.add("engine.runs")
            with spans.span("engine.run"):
                pass
        snap = session.snapshot()
        assert snap["schema"] == TRACE_SCHEMA
        assert snap["label"] == "snap"
        assert snap["metrics"]["counters"] == {"engine.runs": 1}
        assert [s["name"] for s in snap["spans"]] == ["engine.run"]
        assert snap["elapsed_s"] > 0

    def test_absorb_merges_spans_and_metrics(self):
        with TelemetrySession(label="worker") as worker:
            metrics.add("store.puts")
            with spans.span("task.run"):
                pass
        with TelemetrySession(label="parent") as parent:
            metrics.add("store.puts")
            under = parent.tracer.add_span("task.lifecycle", duration=0.5)
            parent.absorb(worker.snapshot(), under=under, extra_attrs={"task": "k"})
        assert parent.registry.counters == {"store.puts": 2}
        names = [s["name"] for s in parent.tracer.spans]
        assert "task.run" in names

    def test_write_trace_collision_suffix(self, tmp_path):
        with TelemetrySession(label="same") as a:
            pass
        with TelemetrySession(label="same") as b:
            pass
        first = a.write_trace(tmp_path)
        second = b.write_trace(tmp_path)
        assert first != second
        assert validate_trace_file(first) == []
        assert validate_trace_file(second) == []

    def test_trace_written_on_clean_exit_only(self, tmp_path):
        with pytest.raises(RuntimeError):
            with TelemetrySession(label="bad", trace_dir=tmp_path):
                raise RuntimeError("no trace for failed runs")
        assert list(tmp_path.glob("*.jsonl")) == []
        with TelemetrySession(label="good", trace_dir=tmp_path) as session:
            pass
        assert session.trace_path is not None
        assert validate_trace_file(session.trace_path) == []

    def test_env_helpers(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        monkeypatch.delenv(TELEMETRY_ENV_VAR, raising=False)
        assert trace_dir_from_env() is None
        assert capture_wanted() is False
        monkeypatch.setenv(TELEMETRY_ENV_VAR, "0")
        assert capture_wanted() is False
        monkeypatch.setenv(TELEMETRY_ENV_VAR, "1")
        assert capture_wanted() is True
        monkeypatch.delenv(TELEMETRY_ENV_VAR)
        monkeypatch.setenv(TRACE_ENV_VAR, "/tmp/somewhere")
        assert trace_dir_from_env() == "/tmp/somewhere"
        assert capture_wanted() is True


class TestSummaries:
    def _snapshot(self):
        with TelemetrySession(label="s") as session:
            metrics.add("rng.draws", 10)
            with spans.span("sampler.dsc"):
                pass
            with spans.span("sampler.dsc"):
                pass
        return session.snapshot()

    def test_summarize_snapshot(self):
        block = summarize_snapshot(self._snapshot())
        assert block["counters"] == {"rng.draws": 10}
        assert block["span_summary"]["sampler.dsc"]["count"] == 2
        assert summarize_snapshot(None) is None
        assert summarize_snapshot({}) is None

    def test_merge_telemetry_blocks(self):
        block = summarize_snapshot(self._snapshot())
        merged = merge_telemetry_blocks([block, None, block])
        assert merged["entries"] == 2
        assert merged["counters"] == {"rng.draws": 20}
        assert merged["span_summary"]["sampler.dsc"]["count"] == 4
        assert merge_telemetry_blocks([]) is None
        assert merge_telemetry_blocks([None, None]) is None


class TestSchema:
    def test_valid_file_roundtrip(self, tmp_path):
        with TelemetrySession(label="rt", trace_dir=tmp_path) as session:
            metrics.add("engine.runs")
            with spans.span("engine.run", n=6):
                pass
        assert validate_trace_file(session.trace_path) == []
        results = validate_trace_dir(tmp_path)
        assert all(problems == [] for _, problems in results)

    def test_unknown_event_rejected(self):
        assert validate_trace_line({"event": "mystery"}) != []
        assert validate_trace_line("not an object") == ["line is not a JSON object"]

    def test_file_shape_enforced(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        span_line = {
            "event": "span", "name": "x", "span_id": 1, "parent_id": None,
            "t_start": 0.0, "t_wall": 0.0, "dur": 0.0, "attrs": {}, "pid": 1,
            "seq": 1,
        }
        path.write_text(json.dumps(span_line) + "\n")
        problems = validate_trace_file(path)
        assert any("first line must be the 'run' header" in p for p in problems)
        assert any("exactly one 'metrics'" in p for p in problems)

    def test_empty_and_corrupt_files(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert validate_trace_file(empty) == ["trace file is empty"]
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text("{not json\n")
        assert any("invalid JSON" in p for p in validate_trace_file(corrupt))

    def test_empty_dir_reports_synthetic_problem(self, tmp_path):
        ((path, problems),) = validate_trace_dir(tmp_path)
        assert problems == ["no *.jsonl trace files found"]


class TestInstrumentation:
    def test_metering_counts_calls_and_words(self):
        with TelemetrySession() as session:
            kernel = instrument_kernel(PyIntKernel(100, [0b11, 0b100]))
            kernel.gains(uncovered=(1 << 100) - 1)
            kernel.gain(0, (1 << 100) - 1)
        counters = session.registry.counters
        # 100-element universe packs into ceil(100/64) = 2 words per row.
        assert counters["kernel.calls.gains"] == 1
        assert counters["kernel.words.gains"] == 4
        assert counters["kernel.calls.gain"] == 1
        assert counters["kernel.words.gain"] == 2

    def test_idempotent_and_transparent(self):
        with TelemetrySession():
            kernel = instrument_kernel(PyIntKernel(4, [0b1]))
            assert instrument_kernel(kernel) is kernel
            assert kernel.backend == "python"
            assert kernel.universe_size == 4
            assert kernel.num_sets == 1

    def test_tracker_metered(self):
        with TelemetrySession() as session:
            kernel = instrument_kernel(PyIntKernel(4, [0b0011, 0b1110]))
            tracker = kernel.gain_tracker((1 << 4) - 1)
            index, gain = tracker.best()
            tracker.cover(kernel.mask(index) if hasattr(kernel, "mask") else 0b1110)
        counters = session.registry.counters
        assert counters["kernel.calls.gain_tracker"] == 1
        assert counters["kernel.calls.tracker_best"] == 1
        assert counters["kernel.calls.tracker_cover"] == 1

    def test_kernel_built_in_session_routes_through_proxy(self):
        from repro.kernels import make_kernel
        from repro.telemetry.instrument import InstrumentedKernel

        plain = make_kernel(4, [0b1], backend="python")
        assert not isinstance(plain, InstrumentedKernel)
        with TelemetrySession():
            wrapped = make_kernel(4, [0b1], backend="python")
            assert isinstance(wrapped, InstrumentedKernel)


class TestProfiling:
    def test_kernel_profile_noop_unarmed(self):
        with kernel_profile():
            pass  # must be a transparent no-op

    def test_profiler_dumps_stats(self, tmp_path):
        dump = tmp_path / "kernels.pstats"
        with kernel_profiler(dump):
            with kernel_profile():
                sum(range(100))
        assert dump.exists() and dump.stat().st_size > 0

    def test_measure_overhead_shape(self):
        result = measure_overhead(lambda: sum(range(50)), repeats=2)
        assert set(result) == {"off_s", "on_s", "ratio"}
        assert result["off_s"] > 0 and result["on_s"] > 0

    def test_measure_overhead_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            measure_overhead(lambda: None, repeats=0)
