"""Tests for the docs-site tooling: API generator and tutorial smoke runner."""

import importlib.util
import sys
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).parent.parent / "docs"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, DOCS_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gen_api():
    return _load("gen_api")


@pytest.fixture(scope="module")
def smoke_tutorial():
    return _load("smoke_tutorial")


class TestGenApi:
    def test_walks_every_package(self, gen_api):
        names = gen_api.iter_module_names()
        assert "repro" in names
        assert "repro.analysis.render" in names
        assert "repro.kernels.base" in names
        assert names == sorted(names)

    def test_pages_group_by_top_level_child(self, gen_api):
        pages = gen_api.group_by_page(
            ["repro", "repro.cli", "repro.analysis", "repro.analysis.render"]
        )
        assert pages["repro"] == ["repro"]
        assert pages["repro.cli"] == ["repro.cli"]
        assert pages["repro.analysis"] == ["repro.analysis", "repro.analysis.render"]

    def test_module_section_contains_docstring_and_api(self, gen_api):
        section = gen_api.render_module_section("repro.analysis.tradeoff")
        assert section.startswith("## `repro.analysis.tradeoff`")
        assert "m·n^{1/α}" in section
        assert "theoretical_space" in section

    def test_generated_tree_matches_nav_entrypoints(self, gen_api, tmp_path):
        written = gen_api.main(api_dir=tmp_path)
        names = {path.name for path in written}
        # the mkdocs nav enters through api/index.md; every package page it
        # links to must exist
        assert "index.md" in names
        index = (tmp_path / "index.md").read_text()
        for line in index.splitlines():
            if line.startswith("- ["):
                target = line.split("](")[1].split(")")[0]
                assert (tmp_path / target).exists(), f"dangling link: {target}"

    def test_analysis_page_documents_all_six_modules(self, gen_api, tmp_path):
        gen_api.main(api_dir=tmp_path)
        page = (tmp_path / "repro.analysis.md").read_text()
        for module in ("bench", "figures", "loader", "records", "render", "tradeoff"):
            assert f"## `repro.analysis.{module}`" in page

    def test_signatures_are_bounded(self, gen_api, tmp_path):
        gen_api.main(api_dir=tmp_path)
        page = (tmp_path / "repro.analysis.md").read_text()
        for line in page.splitlines():
            assert len(line) < 1200


class TestSmokeTutorial:
    def test_extracts_only_bash_blocks(self, smoke_tutorial):
        markdown = (
            "```bash\npython -m this\n# comment skipped\n```\n"
            "```console\nnot extracted\n```\n"
            "```bash\necho two\n```\n"
        )
        assert smoke_tutorial.extract_commands(markdown) == [
            "python -m this",
            "echo two",
        ]

    def test_tutorial_has_runnable_commands(self, smoke_tutorial):
        commands = smoke_tutorial.extract_commands(
            (DOCS_DIR / "tutorial.md").read_text()
        )
        assert len(commands) >= 5
        assert any("repro.cli run adversarial" in cmd for cmd in commands)
        assert any("repro.cli report" in cmd for cmd in commands)

    def test_run_commands_stops_on_failure(self, smoke_tutorial, tmp_path):
        code = smoke_tutorial.run_commands(
            ["python -c 'import sys; sys.exit(3)'", "echo never-reached"],
            cwd=tmp_path,
        )
        assert code == 3

    def test_run_commands_ok(self, smoke_tutorial, tmp_path):
        assert smoke_tutorial.run_commands(["python -c 'print(1)'"], cwd=tmp_path) == 0

    def test_main_errors_on_tutorial_without_commands(self, smoke_tutorial, tmp_path):
        empty = tmp_path / "t.md"
        empty.write_text("no fences here")
        assert smoke_tutorial.main(["--tutorial", str(empty)]) == 1
