"""Load-generator tests: determinism, verification, report math, end-to-end."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.instances import build_instance
from repro.service.loadgen import (
    POPULATION,
    LoadgenConfig,
    LoadReport,
    _pick,
    expected_payloads,
    run_load_async,
)
from repro.service.requests import canonical_params, compute_response
from repro.service.server import ServiceConfig, SolverService

SPEC = "hot=random:n=32,m=24,seed=5"


def load_against_service(load_overrides=None, **service_overrides):
    """Run one in-process service + loadgen pair; return (report, service)."""
    options = {"workers": 0, "instances": (SPEC,)}
    options.update(service_overrides)

    async def go():
        svc = SolverService(ServiceConfig(**options))
        host, port = await svc.start()
        try:
            load = {"host": host, "port": port, "instance_spec": SPEC}
            load.update(load_overrides or {})
            report = await run_load_async(LoadgenConfig(**load))
        finally:
            await svc.drain()
        return report, svc

    return asyncio.run(go())


class TestDeterminism:
    def test_population_covers_every_kind(self):
        assert {kind for kind, _ in POPULATION} == {"cover", "maxcover", "estimate"}

    def test_pick_is_stable_and_seed_sensitive(self):
        trace = [_pick(0, client, step) for client in range(4) for step in range(8)]
        assert trace == [_pick(0, c, s) for c in range(4) for s in range(8)]
        assert all(0 <= index < len(POPULATION) for index in trace)
        other = [_pick(1, c, s) for c in range(4) for s in range(8)]
        assert trace != other

    def test_expected_payloads_match_direct_compute(self):
        expectations = expected_payloads(SPEC)
        assert sorted(expectations) == list(range(len(POPULATION)))
        _, system = build_instance(SPEC)
        for index, (kind, params) in enumerate(POPULATION):
            direct = compute_response(system, kind, canonical_params(kind, params))
            assert expectations[index] == json.dumps(
                direct, sort_keys=True, separators=(",", ":")
            )


class TestReportMath:
    def test_record_partitions_statuses(self):
        report = LoadReport()
        report.record("ok", 0.5)
        report.record("ok", 0.1)
        report.record("shed")
        report.record("deadline")
        assert report.requests == 4 and report.ok == 2
        assert report.shed_rate == 0.25
        assert report.latencies_s == [0.5, 0.1]

    def test_nearest_rank_percentiles(self):
        report = LoadReport()
        for latency in (0.01 * i for i in range(1, 101)):
            report.record("ok", latency)
        # Nearest-rank over indices 0..99: p maps to round(p/100 * 99).
        assert report.percentile(50) == pytest.approx(0.51)
        assert report.percentile(99) == pytest.approx(0.99)
        assert report.percentile(100) == pytest.approx(1.00)

    def test_empty_report_is_all_zeros(self):
        payload = LoadReport().to_dict()
        assert payload["requests"] == 0
        assert payload["shed_rate"] == 0.0
        assert payload["latency_s"]["p99"] == 0.0


class TestEndToEnd:
    def test_all_ok_and_verified(self):
        report, svc = load_against_service(
            {"clients": 4, "requests_per_client": 6, "seed": 3}
        )
        assert report.requests == 24
        assert report.wrong == 0
        # Population has 7 entries, cache 1024: every request is answered ok
        # (first computes, the rest are cache hits) and verification passes.
        assert report.ok == 24
        assert svc.counters["requests"] == 24

    def test_overload_sheds_explicitly_but_never_lies(self):
        report, _ = load_against_service(
            {"clients": 12, "requests_per_client": 8, "seed": 1},
            queue_limit=1,
            cache_capacity=0,
            batch_size=1,
        )
        assert report.requests == 96
        assert report.wrong == 0  # degraded availability, never wrong answers
        assert report.ok + report.statuses.get("shed", 0) == report.requests
        assert report.ok > 0

    def test_duration_mode_terminates(self):
        report, _ = load_against_service(
            {"clients": 2, "duration_s": 0.2, "seed": 0}
        )
        assert report.requests > 0
        assert report.wall_s >= 0.2
