"""Unit tests for the streaming max coverage algorithm."""

import pytest

from repro.core.maxcover_stream import StreamingMaxCoverage, maxcover_space_bound_words
from repro.setcover.maxcover import exact_max_coverage
from repro.streaming.engine import run_streaming_algorithm
from repro.workloads.coverage import topic_coverage_instance


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            StreamingMaxCoverage(k=0)

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            StreamingMaxCoverage(k=2, epsilon=0.0)
        with pytest.raises(ValueError):
            StreamingMaxCoverage(k=2, epsilon=1.0)

    def test_bad_solver(self):
        with pytest.raises(ValueError):
            StreamingMaxCoverage(k=2, solver="quantum")


class TestBehaviour:
    def test_single_pass(self):
        instance = topic_coverage_instance(100, 20, communities=2, seed=4)
        algorithm = StreamingMaxCoverage(k=2, epsilon=0.3, seed=5)
        result = run_streaming_algorithm(
            algorithm, instance.system, verify_solution=False
        )
        assert result.passes == 1
        assert len(result.solution) <= 2

    def test_estimate_close_to_opt(self):
        instance = topic_coverage_instance(400, 30, communities=2, seed=9)
        algorithm = StreamingMaxCoverage(k=2, epsilon=0.2, seed=5)
        result = run_streaming_algorithm(
            algorithm, instance.system, verify_solution=False
        )
        _, opt = exact_max_coverage(instance.system, 2)
        assert result.estimated_value == pytest.approx(opt, rel=0.5)

    def test_smaller_epsilon_uses_more_space(self):
        instance = topic_coverage_instance(600, 30, communities=2, seed=9)
        spaces = {}
        for epsilon in (0.5, 0.15):
            algorithm = StreamingMaxCoverage(k=2, epsilon=epsilon, seed=5)
            result = run_streaming_algorithm(
                algorithm, instance.system, verify_solution=False
            )
            spaces[epsilon] = result.space.peak_words
        assert spaces[0.15] > spaces[0.5]

    def test_sampling_rate_formula(self):
        algorithm = StreamingMaxCoverage(k=3, epsilon=0.2, sampling_constant=2.0)
        rate = algorithm.sampling_rate(universe_size=10 ** 6, num_sets=100)
        import math

        expected = 2.0 * 3 * math.log(100) / (0.04 * 10 ** 6)
        assert rate == pytest.approx(expected)

    def test_greedy_solver_runs(self):
        instance = topic_coverage_instance(200, 25, communities=3, seed=2)
        algorithm = StreamingMaxCoverage(k=3, epsilon=0.3, solver="greedy", seed=5)
        result = run_streaming_algorithm(
            algorithm, instance.system, verify_solution=False
        )
        assert len(result.solution) <= 3


class TestBoundFormula:
    def test_space_bound_grows_with_inverse_epsilon_squared(self):
        loose = maxcover_space_bound_words(100, 2, 0.5)
        tight = maxcover_space_bound_words(100, 2, 0.25)
        assert tight == pytest.approx(4 * loose)
