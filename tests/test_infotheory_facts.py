"""Unit tests for the Appendix A fact checkers and Claim 2.3 / information cost."""

import pytest

from repro.infotheory.distributions import JointDistribution
from repro.infotheory.facts import (
    check_fact_a2,
    check_fact_a3,
    check_fact_a4,
    check_fact_chain_rule,
    check_fact_conditioning_reduces_entropy,
    check_fact_entropy_bounds,
    check_fact_mi_nonnegative,
    conditional_independence_gap,
)
from repro.infotheory.information_cost import (
    information_cost_of_randomized_protocol,
    internal_information_cost,
    transcript_information_cost,
)


@pytest.fixture
def correlated_joint():
    """Three correlated bits: B = A with noise, C independent."""
    pmf = {}
    for a in (0, 1):
        for c in (0, 1):
            pmf[(a, a, c)] = 0.4 / 2
            pmf[(a, 1 - a, c)] = 0.1 / 2
    return JointDistribution(["A", "B", "C"], pmf)


class TestFactCheckers:
    def test_entropy_bounds(self, correlated_joint):
        assert check_fact_entropy_bounds(correlated_joint, "A")

    def test_mi_nonnegative(self, correlated_joint):
        assert check_fact_mi_nonnegative(correlated_joint, ["A"], ["B"])

    def test_conditioning_reduces_entropy(self, correlated_joint):
        assert check_fact_conditioning_reduces_entropy(
            correlated_joint, "A", ["C"], ["B"]
        )

    def test_chain_rule(self, correlated_joint):
        assert check_fact_chain_rule(correlated_joint, "A", "B", "C")

    def test_fact_a4(self, correlated_joint):
        assert check_fact_a4(correlated_joint, "A", "B", "C")

    def test_fact_a2_with_premise(self):
        # D independent of A given C: build A -> B and D = C.
        pmf = {}
        for a in (0, 1):
            for c in (0, 1):
                pmf[(a, a, c, c)] = 0.25
        joint = JointDistribution(["A", "B", "C", "D"], pmf)
        assert conditional_independence_gap(joint, "A", "D", ["C"]) == pytest.approx(0.0)
        assert check_fact_a2(joint, "A", "B", "C", "D")

    def test_fact_a3_with_premise(self):
        # D a function of B (so A ⊥ D | B, C).
        pmf = {}
        for a in (0, 1):
            for b in (0, 1):
                pmf[(a, b, 0, b)] = 0.25
        joint = JointDistribution(["A", "B", "C", "D"], pmf)
        assert conditional_independence_gap(joint, "A", "D", ["B", "C"]) == pytest.approx(
            0.0
        )
        assert check_fact_a3(joint, "A", "B", "C", "D")

    def test_fact_check_is_truthy(self, correlated_joint):
        check = check_fact_mi_nonnegative(correlated_joint, ["A"], ["B"])
        assert bool(check) is True
        assert check.name.startswith("A.1")


class TestInformationCost:
    def test_deterministic_protocol_cost(self):
        # Alice sends her bit: the transcript reveals exactly H(X) = 1 bit to
        # Bob and nothing about Bob's input to Alice.
        inputs = [(x, y, 0.25) for x in (0, 1) for y in (0, 1)]
        cost = internal_information_cost(inputs, lambda x, y: x)
        assert cost == pytest.approx(1.0)

    def test_silent_protocol_zero_cost(self):
        inputs = [(x, y, 0.25) for x in (0, 1) for y in (0, 1)]
        cost = internal_information_cost(inputs, lambda x, y: "nothing")
        assert cost == pytest.approx(0.0)

    def test_full_exchange_cost(self):
        inputs = [(x, y, 0.25) for x in (0, 1) for y in (0, 1)]
        cost = internal_information_cost(inputs, lambda x, y: (x, y))
        assert cost == pytest.approx(2.0)

    def test_transcript_information_cost_validates_variables(self):
        joint = JointDistribution(["X", "Y"], {(0, 0): 1.0})
        with pytest.raises(ValueError):
            transcript_information_cost(joint)

    def test_randomized_protocol_cost_at_most_deterministic(self):
        # XOR-masking Alice's bit with public randomness still reveals the bit
        # given the randomness (Claim 2.3): cost stays 1.
        inputs = [(x, y, 0.25) for x in (0, 1) for y in (0, 1)]
        randomness = [(0, 0.5), (1, 0.5)]
        cost = information_cost_of_randomized_protocol(
            inputs, randomness, lambda x, y, r: x ^ r
        )
        assert cost == pytest.approx(1.0)

    def test_correlation_reduces_internal_cost(self):
        # When Bob already knows Alice's input (perfect correlation), sending
        # it reveals nothing new: internal cost is 0.
        inputs = [(0, 0, 0.5), (1, 1, 0.5)]
        cost = internal_information_cost(inputs, lambda x, y: x)
        assert cost == pytest.approx(0.0)
