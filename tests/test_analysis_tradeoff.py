"""Tradeoff-curve math on hand-computed fixtures."""

import pytest

from repro.analysis.records import AnalysisRecord
from repro.analysis.tradeoff import (
    Envelope,
    aggregate,
    space_approximation_points,
    theoretical_curve,
    theoretical_space,
    typical_instance_shape,
)


def make_record(
    algorithm="greedy",
    workload="dsc",
    solution_size=6,
    opt_bound=3,
    passes=2,
    peak=100,
    feasible=True,
    n=96,
    m=24,
    key="k",
):
    return AnalysisRecord(
        key=key,
        runner="WL",
        experiment_id="WL",
        title="t",
        fingerprint=key * 4,
        workload=workload,
        algorithm=algorithm,
        order="adversarial",
        universe_size=n,
        num_sets=m,
        solution_size=solution_size,
        opt_bound=opt_bound,
        feasible=feasible,
        passes=passes,
        peak_space_words=peak,
    )


class TestEnvelope:
    def test_hand_computed_min_median_max(self):
        env = Envelope.from_values([4.0, 1.0, 2.0])
        assert (env.lo, env.mid, env.hi) == (1.0, 2.0, 4.0)

    def test_even_count_median_is_midpoint(self):
        env = Envelope.from_values([1.0, 2.0, 3.0, 10.0])
        assert env.mid == pytest.approx(2.5)

    def test_single_value(self):
        env = Envelope.from_values([7])
        assert tuple(env) == (7.0, 7.0, 7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Envelope.from_values([])

    def test_format_collapses_constant(self):
        assert Envelope.from_values([2.0]).format() == "2"
        assert Envelope.from_values([1.0, 2.0, 3.0]).format() == "1 / 2 / 3"


class TestAggregate:
    def test_hand_computed_group_envelopes(self):
        records = [
            make_record(solution_size=3, opt_bound=3, peak=100, passes=1),
            make_record(solution_size=6, opt_bound=3, peak=300, passes=3),
            make_record(solution_size=9, opt_bound=3, peak=200, passes=2),
        ]
        (point,) = aggregate(records)
        assert point.count == 3
        assert tuple(point.ratio) == (1.0, 2.0, 3.0)
        assert tuple(point.space) == (100.0, 200.0, 300.0)
        assert tuple(point.passes) == (1.0, 2.0, 3.0)
        assert point.short_label == "greedy"

    def test_groups_sorted_and_separated(self):
        records = [
            make_record(algorithm="b", peak=10),
            make_record(algorithm="a", peak=20),
            make_record(algorithm="b", peak=30),
        ]
        points = aggregate(records)
        assert [p.short_label for p in points] == ["a", "b"]
        assert points[1].count == 2

    def test_multi_axis_grouping(self):
        records = [
            make_record(workload="dsc"),
            make_record(workload="dmc"),
        ]
        points = aggregate(records, by=("algorithm", "workload"))
        assert len(points) == 2
        assert points[0].label == "algorithm=greedy, workload=dmc"

    def test_records_missing_group_axis_are_excluded(self):
        records = [make_record(), make_record(algorithm=None)]
        (point,) = aggregate(records)
        assert point.count == 1

    def test_infeasible_records_do_not_contribute_ratios(self):
        records = [
            make_record(solution_size=1, opt_bound=3, feasible=False),
            make_record(solution_size=6, opt_bound=3),
        ]
        (point,) = aggregate(records)
        assert tuple(point.ratio) == (2.0, 2.0, 2.0)
        assert point.count == 2

    def test_group_with_no_metric_has_none_envelope(self):
        (point,) = aggregate([make_record(passes=None, peak=None, solution_size=None)])
        assert point.passes is None
        assert point.space is None
        assert point.ratio is None


class TestSpaceApproximationPoints:
    def test_requires_both_axes(self):
        records = [
            make_record(algorithm="with-both"),
            make_record(algorithm="no-space", peak=None),
            make_record(algorithm="no-ratio", solution_size=None),
        ]
        points = space_approximation_points(records)
        assert [p.short_label for p in points] == ["with-both"]


class TestTheory:
    def test_hand_computed_bound(self):
        assert theoretical_space(n=64, m=10, alpha=2) == pytest.approx(80.0)
        assert theoretical_space(n=64, m=10, alpha=1) == pytest.approx(640.0)
        assert theoretical_space(n=4096, m=1, alpha=3) == pytest.approx(16.0)

    def test_curve_is_decreasing_in_alpha(self):
        curve = theoretical_curve(n=1024, m=32)
        spaces = [space for _, space in curve]
        assert spaces == sorted(spaces, reverse=True)
        assert curve[0][0] == 1.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            theoretical_space(n=0, m=5, alpha=1)
        with pytest.raises(ValueError):
            theoretical_space(n=5, m=5, alpha=0)


class TestTypicalShape:
    def test_median_shape(self):
        records = [
            make_record(n=64, m=10),
            make_record(n=96, m=24),
            make_record(n=128, m=30),
        ]
        assert typical_instance_shape(records) == (96, 24)

    def test_no_shape_reported(self):
        assert typical_instance_shape([make_record(n=None, m=None)]) is None
