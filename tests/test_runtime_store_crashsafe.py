"""Crash-safety tests for the result store: atomicity, quarantine, journals."""

from __future__ import annotations

import json

import pytest

from repro.resilience.durability import (
    StatsJournal,
    atomic_write_json,
    entry_checksum,
    iter_journal_files,
    sum_journals,
)
from repro.resilience.faults import FAULTS_ENV_VAR, fault_plan_active, parse_fault_spec
from repro.runtime import ResultStore, RuntimeTask, freeze_params
from repro.runtime.store import (
    STORE_STATS_FILENAME,
    StoreWriteError,
    read_store_stats,
    task_fingerprint,
)


def make_task(key="demo", t=2, seed=1):
    return RuntimeTask(key=key, runner="E12", params=freeze_params({"t": t}), seed=seed)


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)


class TestAtomicPut:
    def test_put_leaves_no_tmp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_task(), {"answer": 42})
        leftovers = [
            p
            for p in tmp_path.rglob("*")
            if p.is_file() and p.suffix not in (".json", ".journal")
        ]
        assert leftovers == []

    def test_put_then_get_round_trips(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"answer": 42, "nested": {"rows": [1, 2, 3]}}
        store.put(make_task(), payload)
        assert store.get(make_task()) == payload

    def test_entry_carries_valid_checksum(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(make_task(), {"answer": 42})
        entry = json.loads(path.read_text())
        assert entry["checksum"] == entry_checksum(entry)

    def test_atomic_write_json_replaces_not_appends(self, tmp_path):
        target = tmp_path / "x.json"
        atomic_write_json(target, {"v": 1})
        atomic_write_json(target, {"v": 2})
        assert json.loads(target.read_text()) == {"v": 2}
        assert list(tmp_path.iterdir()) == [target]


class TestCorruptEntryQuarantine:
    def test_truncated_entry_reads_as_miss_and_quarantines(self, tmp_path):
        store = ResultStore(tmp_path)
        task = make_task()
        path = store.put(task, {"answer": 42})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])

        assert store.get(task) is None
        assert store.quarantined == 1
        assert not path.exists()
        quarantined = list(store.quarantine_dir.glob("*.quarantined"))
        assert len(quarantined) == 1
        assert "unreadable" in quarantined[0].name

    def test_bitflipped_entry_fails_checksum(self, tmp_path):
        store = ResultStore(tmp_path)
        task = make_task()
        path = store.put(task, {"answer": 42})
        entry = json.loads(path.read_text())
        entry["result"]["answer"] = 43  # flip a byte, keep valid JSON
        path.write_text(json.dumps(entry))

        assert store.get(task) is None
        assert any("checksum" in p.name for p in store.quarantine_dir.iterdir())

    def test_quarantined_entries_leave_entry_globs(self, tmp_path):
        store = ResultStore(tmp_path)
        task = make_task()
        path = store.put(task, {"answer": 42})
        path.write_text("not json")
        assert store.get(task) is None
        assert len(store) == 0  # the corrupt file no longer counts as an entry

    def test_miss_then_recompute_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        task = make_task()
        path = store.put(task, {"answer": 42})
        path.write_text("garbage")
        assert store.get(task) is None
        store.put(task, {"answer": 42})
        assert store.get(task) == {"answer": 42}

    def test_format_version_mismatch_is_plain_miss_not_quarantine(self, tmp_path):
        store = ResultStore(tmp_path)
        task = make_task()
        path = store.put(task, {"answer": 42})
        entry = json.loads(path.read_text())
        entry["format"] = 0
        entry.pop("checksum")
        entry["checksum"] = entry_checksum(entry)
        path.write_text(json.dumps(entry))

        assert store.get(task) is None
        assert store.quarantined == 0
        assert path.exists()  # left in place: intact bytes, just orphaned


class TestTornWriteRecovery:
    def test_torn_put_retries_and_quarantines(self, tmp_path):
        store = ResultStore(tmp_path)
        task = make_task()
        with fault_plan_active(parse_fault_spec("seed=1,store.put:torn:1:1")):
            path = store.put(task, {"answer": 42})
        # The final entry is whole and valid.
        entry = json.loads(path.read_text())
        assert entry["checksum"] == entry_checksum(entry)
        assert store.get(task) == {"answer": 42}
        # The torn generation is preserved as evidence.
        assert store.quarantined == 1
        assert any("torn-put" in p.name for p in store.quarantine_dir.iterdir())

    def test_persistent_torn_writes_exhaust_the_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        with fault_plan_active(parse_fault_spec("seed=1,store.put:torn:1:99")):
            with pytest.raises(StoreWriteError):
                store.put(make_task(), {"answer": 42})

    def test_faulted_put_verifies_read_back(self, tmp_path):
        # Zero-rate rule: the fault path runs (read-back verification) but
        # nothing fires — a single clean write, no quarantine.
        store = ResultStore(tmp_path)
        with fault_plan_active(parse_fault_spec("seed=1,store.put:torn:0")):
            store.put(make_task(), {"answer": 42})
        assert store.quarantined == 0
        assert store.get(make_task()) == {"answer": 42}


class TestJournaledStats:
    def test_two_writers_never_lose_counts(self, tmp_path):
        first = ResultStore(tmp_path)
        second = ResultStore(tmp_path)
        first.put(make_task("a", seed=1), {"x": 1})
        second.put(make_task("b", seed=2), {"x": 2})
        second.get(make_task("b", seed=2))
        # Interleaved flushes: each writer only ever rewrites its own journal.
        first.flush_stats()
        second.flush_stats()
        first.flush_stats()

        totals = read_store_stats(tmp_path)
        assert totals["puts"] == 2
        assert totals["hits"] == 1

    def test_flush_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_task(), {"x": 1})
        store.flush_stats()
        store.flush_stats()
        assert read_store_stats(tmp_path)["puts"] == 1

    def test_legacy_base_file_still_counts(self, tmp_path):
        (tmp_path / STORE_STATS_FILENAME).write_text(
            json.dumps({"hits": 5, "misses": 2, "puts": 7, "skips": 0})
        )
        store = ResultStore(tmp_path)
        store.put(make_task(), {"x": 1})
        store.flush_stats()
        totals = read_store_stats(tmp_path)
        assert totals["puts"] == 8
        assert totals["hits"] == 5
        assert totals["quarantined"] == 0

    def test_no_stats_reads_as_none(self, tmp_path):
        assert read_store_stats(tmp_path) is None
        # Creating a store (but never flushing) still reads as None.
        ResultStore(tmp_path / "sub")
        assert read_store_stats(tmp_path / "sub") is None

    def test_unreadable_journal_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_task(), {"x": 1})
        journal_path = store.flush_stats()
        (journal_path.parent / "zz-bad.journal").write_text("not json")
        assert read_store_stats(tmp_path)["puts"] == 1

    def test_journal_files_are_per_writer(self, tmp_path):
        keys = ("hits", "misses")
        a = StatsJournal(tmp_path, keys=keys)
        b = StatsJournal(tmp_path, keys=keys)
        a.write({"hits": 1, "misses": 0})
        b.write({"hits": 2, "misses": 3})
        assert len(list(iter_journal_files(tmp_path))) == 2
        assert sum_journals(tmp_path, keys=keys) == {"hits": 3, "misses": 3}


class TestFingerprintSafety:
    def test_entry_under_wrong_fingerprint_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        victim, imposter = make_task("a", seed=1), make_task("b", seed=2)
        imposter_path = store.put(imposter, {"x": 2})
        # Copy the imposter's (internally consistent) entry to the victim's
        # path: its fingerprint field no longer matches its location.
        victim_path = store.path_for(task_fingerprint(victim))
        victim_path.parent.mkdir(parents=True, exist_ok=True)
        victim_path.write_text(imposter_path.read_text())

        assert store.get(victim) is None
        assert any("fingerprint" in p.name for p in store.quarantine_dir.iterdir())
