"""Packed serialization and shared-memory transport of set systems."""

import pickle

import pytest

from repro.kernels import HAS_NUMPY
from repro.runtime.executor import parallel_map
from repro.runtime.tasks import RuntimeTask
from repro.runtime.transport import publish_system, shared_system
from repro.setcover.greedy import greedy_set_cover
from repro.setcover.instance import PackedSetSystem, SetSystem, packed_row_bytes
from repro.workloads.random_instances import plant_cover_instance, random_instance

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="NumPy backend not installed")


def _sample_system(universe_size=48, num_sets=20, seed=3) -> SetSystem:
    return random_instance(universe_size, num_sets, density=0.15, seed=seed).system


# Module-level so the process pool can pickle them.
def _solve_system(system: SetSystem):
    return system.universe_size, system.masks(), greedy_set_cover(system)


def _solve_handle(handle):
    return _solve_system(handle.load())


class TestPackedForm:
    def test_round_trip_masks_and_names(self):
        system = _sample_system()
        packed = system.to_packed()
        assert packed.num_sets == system.num_sets
        assert len(packed.buffer) == system.num_sets * packed_row_bytes(
            system.universe_size
        )
        rebuilt = SetSystem.from_packed(packed)
        assert rebuilt == system
        assert rebuilt.names == system.names

    def test_custom_names_survive(self):
        system = SetSystem(4, [[0, 1], [2, 3]], names=["left", "right"])
        rebuilt = SetSystem.from_packed(system.to_packed())
        assert rebuilt.names == ["left", "right"]

    def test_default_names_ship_no_strings(self):
        assert _sample_system().to_packed().names is None

    def test_buffer_length_is_validated(self):
        with pytest.raises(ValueError, match="packed buffer"):
            PackedSetSystem(universe_size=8, num_sets=2, buffer=b"\x00")

    def test_empty_system(self):
        system = SetSystem(5, [])
        rebuilt = SetSystem.from_packed(system.to_packed())
        assert rebuilt == system
        assert rebuilt.num_sets == 0

    def test_pickle_ships_packed_buffer(self):
        system = _sample_system()
        state = system.__getstate__()
        assert isinstance(state["buffer"], bytes)
        assert "_masks" not in state
        rebuilt = pickle.loads(pickle.dumps(system))
        assert rebuilt == system
        assert rebuilt.requested_backend == system.requested_backend
        assert greedy_set_cover(rebuilt) == greedy_set_cover(system)

    @needs_numpy
    def test_numpy_kernel_adopts_transported_buffer(self):
        system = SetSystem.from_masks(70, _sample_system(70, 16).masks(), backend="numpy")
        rebuilt = pickle.loads(pickle.dumps(system))
        kernel = rebuilt.kernel()
        assert kernel.backend == "numpy"
        assert kernel.set_sizes() == system.kernel().set_sizes()
        full = (1 << 70) - 1
        assert kernel.gains(full) == system.kernel().gains(full)

    @needs_numpy
    def test_packed_export_reuses_numpy_matrix(self):
        system = SetSystem.from_masks(40, [0b1011, 0b0100], backend="numpy")
        system.kernel()  # force the matrix to exist
        assert SetSystem.from_packed(system.to_packed()) == system


class TestTaskFingerprints:
    def test_system_params_fingerprint_by_digest(self):
        system = _sample_system()
        task = RuntimeTask(key="k", runner="r", params=(("system", system),))
        payload = task.fingerprint_payload()
        entry = payload["params"][0][1]
        assert set(entry) == {"__set_system__", "universe_size", "num_sets"}
        # Same content, fresh object -> same fingerprint; different content
        # -> different fingerprint.
        clone = SetSystem.from_masks(system.universe_size, system.masks())
        same = RuntimeTask(key="k", runner="r", params=(("system", clone),))
        assert same.fingerprint_payload() == payload
        mask0 = system.mask(0)
        free_bit = next(
            e for e in range(system.universe_size) if not (mask0 >> e) & 1
        )
        patched = system.with_patched_mask(0, 1 << free_bit)
        other = RuntimeTask(key="k", runner="r", params=(("system", patched),))
        assert other.fingerprint_payload() != payload


class TestParallelRoundTrip:
    def test_parallel_map_matches_serial_through_packed_pickle(self):
        systems = [_sample_system(seed=seed) for seed in range(6)]
        serial = [_solve_system(system) for system in systems]
        parallel = parallel_map(_solve_system, systems, workers=2)
        assert parallel == serial

    def test_shared_memory_fanout_matches_serial(self):
        system = plant_cover_instance(60, 24, 4, seed=11).system
        expected = _solve_system(system)
        with shared_system(system) as handle:
            results = parallel_map(_solve_handle, [handle] * 4, workers=2)
        assert results == [expected] * 4

    def test_shared_handle_loads_in_process(self):
        system = _sample_system()
        publication = publish_system(system)
        try:
            loaded = publication.handle.load()
            assert loaded == system
            assert loaded.names == system.names
        finally:
            publication.close()
        publication.close()  # idempotent

    def test_handle_reports_buffer_size(self):
        system = _sample_system()
        with shared_system(system) as handle:
            assert handle.buffer_bytes == len(system.to_packed().buffer)


class TestSegmentLoss:
    """Attaching after unlink must fail typed and retryable, never bare."""

    def test_attach_after_unlink_raises_typed_error(self):
        from repro.exceptions import SharedSegmentLostError, TransientTaskError

        publication = publish_system(_sample_system())
        handle = publication.handle
        publication.close()  # unlink before any consumer attaches
        with pytest.raises(SharedSegmentLostError) as excinfo:
            handle._attach_and_rebuild()
        # Typed, retryable, and it names the lost segment.
        assert isinstance(excinfo.value, TransientTaskError)
        assert handle.segment in str(excinfo.value)

    def test_load_retries_then_surfaces_segment_loss(self, monkeypatch):
        from repro.exceptions import SharedSegmentLostError

        monkeypatch.setenv("REPRO_RETRY", "attempts=2,backoff=0.001")
        publication = publish_system(_sample_system())
        handle = publication.handle
        publication.close()
        with pytest.raises(SharedSegmentLostError):
            handle.load()

    def test_packed_publication_is_the_service_alias(self):
        from repro.runtime import PackedPublication
        from repro.runtime.transport import SharedSystemPublication

        assert PackedPublication is SharedSystemPublication
