"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    EXPERIMENT_DESCRIPTIONS,
    build_parser,
    main,
    resolve_experiment_ids,
    run_experiments,
)
from repro.experiments.experiment_defs import EXPERIMENT_REGISTRY


class TestResolution:
    def test_all_expands_in_order(self):
        ids = resolve_experiment_ids(["all"])
        assert ids[0] == "E1" and ids[-1] == "E12"
        assert len(ids) == len(EXPERIMENT_REGISTRY)

    def test_case_insensitive(self):
        assert resolve_experiment_ids(["e5", "E12"]) == ["E5", "E12"]

    def test_unknown_id_exits(self):
        with pytest.raises(SystemExit):
            resolve_experiment_ids(["E99"])

    def test_descriptions_cover_registry(self):
        assert set(EXPERIMENT_DESCRIPTIONS) == set(EXPERIMENT_REGISTRY)

    def test_scenario_names_resolve(self):
        ids = resolve_experiment_ids(["WL"], allow_scenarios=True)
        assert ids == ["WL"]

    def test_tag_expands_to_grid(self):
        ids = resolve_experiment_ids(["adversarial"], allow_scenarios=True)
        assert len(ids) == 48
        assert all(name.startswith("ADV[") for name in ids)

    def test_tag_expansion_needs_scenario_mode(self):
        with pytest.raises(SystemExit):
            resolve_experiment_ids(["adversarial"], allow_scenarios=False)


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_options(self):
        args = build_parser().parse_args(
            ["run", "E2", "E5", "--seed", "7", "--json", "out.json", "--quiet"]
        )
        assert args.experiments == ["E2", "E5"]
        assert args.seed == 7
        assert args.json == "out.json"
        assert args.quiet is True

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunExperiments:
    def test_runs_and_collects(self):
        printed = []
        results = run_experiments(["E12"], printer=printed.append)
        assert len(results) == 1
        assert results[0].experiment_id == "E12"
        assert any("E12" in line for line in printed)

    def test_quiet_suppresses_tables(self):
        printed = []
        run_experiments(["E12"], printer=printed.append, quiet=True)
        assert all("quantity" not in line for line in printed)

    def test_seed_override_passes_through(self):
        results = run_experiments(["E12"], seed=123, quiet=True, printer=lambda _ : None)
        assert results[0].findings["all_facts_hold"]


class TestRuntimePath:
    def test_parser_accepts_workers_and_store(self):
        args = build_parser().parse_args(
            ["run", "E12", "--workers", "4", "--store", "/tmp/rstore"]
        )
        assert args.workers == 4
        assert args.store == "/tmp/rstore"

    def test_parser_defaults_stay_legacy(self):
        args = build_parser().parse_args(["run", "E12"])
        assert args.workers == 1
        assert args.store is None

    def test_parser_rejects_non_positive_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E12", "--workers", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E12", "--workers", "-2"])

    def test_parallel_stdout_identical_to_serial(self, tmp_path, capsys):
        assert main(["run", "E12", "E7", "--workers", "1", "--store", str(tmp_path / "a")]) == 0
        serial_out = capsys.readouterr().out
        assert main(["run", "E12", "E7", "--workers", "2", "--store", str(tmp_path / "b")]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        assert "[E12] computed" in serial_out

    def test_second_store_run_hits_cache(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", "E12", "--quiet", "--store", store]) == 0
        assert "[E12] computed" in capsys.readouterr().out
        assert main(["run", "E12", "--quiet", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "[E12] cached" in out
        assert "computed" not in out

    def test_seed_override_changes_cache_slot(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["run", "E12", "--quiet", "--store", store])
        capsys.readouterr()
        main(["run", "E12", "--quiet", "--seed", "3", "--store", store])
        assert "[E12] computed" in capsys.readouterr().out

    def test_runtime_json_matches_legacy_json(self, tmp_path):
        legacy_path = tmp_path / "legacy.json"
        runtime_path = tmp_path / "runtime.json"
        main(["run", "E12", "--quiet", "--json", str(legacy_path)])
        main(
            [
                "run",
                "E12",
                "--quiet",
                "--store",
                str(tmp_path / "store"),
                "--json",
                str(runtime_path),
            ]
        )
        assert json.loads(runtime_path.read_text()) == json.loads(
            legacy_path.read_text()
        )

    def test_runtime_accepts_registered_scenario_names(self, tmp_path, capsys):
        from repro.runtime import register_scenario, unregister_scenario

        register_scenario("cli-tiny", runner="E12", params={"t": 2}, seed=1)
        try:
            assert main(["run", "cli-tiny", "--quiet", "--store", str(tmp_path)]) == 0
            assert "[cli-tiny] computed" in capsys.readouterr().out
        finally:
            unregister_scenario("cli-tiny")

    def test_scenario_names_rejected_on_legacy_path(self):
        with pytest.raises(SystemExit):
            resolve_experiment_ids(["cli-unknown"])


class TestScenariosCommand:
    def test_lists_paper_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENT_REGISTRY:
            assert experiment_id in out

    def test_shows_one_scenario(self, capsys):
        assert main(["scenarios", "E12"]) == 0
        out = capsys.readouterr().out
        assert "runner:       E12" in out
        assert "fingerprint=" in out

    def test_unknown_scenario_exits(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "nope"])

    def test_tag_filter(self, capsys):
        assert main(["scenarios", "--tag", "no-such-tag"]) == 0
        assert capsys.readouterr().out.strip() == ""


class TestMainEntryPoint:
    def test_list_returns_zero(self, capsys):
        assert main(["list"]) == 0
        captured = capsys.readouterr()
        assert "E1" in captured.out

    def test_run_writes_json_and_markdown(self, tmp_path, capsys):
        json_path = tmp_path / "results.json"
        md_path = tmp_path / "report.md"
        code = main(
            [
                "run",
                "E12",
                "--quiet",
                "--json",
                str(json_path),
                "--markdown",
                str(md_path),
            ]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload[0]["experiment_id"] == "E12"
        assert "E12" in md_path.read_text()


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 0 and args.workers == 2
        assert args.queue_limit == 64 and args.cache == 1024
        assert args.instance is None and args.deadline is None

    def test_serve_workers_zero_means_inline(self):
        args = build_parser().parse_args(["serve", "--workers", "0"])
        assert args.workers == 0

    def test_serve_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workers", "-1"])

    def test_serve_instances_accumulate(self):
        args = build_parser().parse_args(
            ["serve", "--instance", "a=random:n=8,m=4", "--instance", "b=random:n=8,m=4"]
        )
        assert args.instance == ["a=random:n=8,m=4", "b=random:n=8,m=4"]

    def test_serve_rejects_bad_queue_limit(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--queue-limit", "0"])

    def test_serve_bad_instance_spec_exits(self):
        with pytest.raises(SystemExit, match="instance"):
            main(["serve", "--instance", "broken"])


class TestLoadgenParser:
    def test_port_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen"])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen", "--port", "1234"])
        assert args.port == 1234
        assert args.clients == 16 and args.requests == 25
        assert args.no_verify is False and args.duration is None


class TestChaosExitCode:
    """`repro chaos` is CI-usable: parity failure must be a non-zero exit."""

    def _fake_report(self, parity):
        from types import SimpleNamespace

        return SimpleNamespace(parity=parity, render=lambda: "chaos-report")

    def test_parity_failure_exits_one(self, monkeypatch, capsys):
        import repro.resilience as resilience

        monkeypatch.setattr(
            resilience, "run_chaos", lambda *a, **k: self._fake_report(False)
        )
        assert main(["chaos", "WL"]) == 1
        assert "chaos-report" in capsys.readouterr().out

    def test_parity_success_exits_zero(self, monkeypatch, capsys):
        import repro.resilience as resilience

        monkeypatch.setattr(
            resilience, "run_chaos", lambda *a, **k: self._fake_report(True)
        )
        assert main(["chaos", "WL"]) == 0


class TestLoadgenExitCode:
    """`repro loadgen` fails loudly iff a verified answer was wrong."""

    def _fake_report(self, wrong):
        from repro.service.loadgen import LoadReport

        report = LoadReport(clients=1)
        report.record("ok", 0.01)
        report.wrong = wrong
        report.wall_s = 0.1
        return report

    def test_wrong_answers_exit_one(self, monkeypatch, capsys):
        import repro.service.loadgen as loadgen

        monkeypatch.setattr(loadgen, "run_load", lambda config: self._fake_report(2))
        assert main(["loadgen", "--port", "1"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["wrong"] == 2

    def test_clean_run_exits_zero_and_writes_json(self, monkeypatch, tmp_path, capsys):
        import repro.service.loadgen as loadgen

        monkeypatch.setattr(loadgen, "run_load", lambda config: self._fake_report(0))
        out = tmp_path / "report.json"
        assert main(["loadgen", "--port", "1", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["wrong"] == 0 and payload["ok"] == 1


class TestInstancePlaneFlags:
    def gen(self, tmp_path, capsys):
        path = tmp_path / "inst.repro"
        assert main(
            ["gen-instance", str(path), "--n", "48", "--m", "64", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "digest:" in out and str(path) in out
        return path

    def test_gen_instance_matches_in_memory(self, tmp_path, capsys):
        path = self.gen(tmp_path, capsys)
        from repro.workloads.random_instances import random_set_system

        expected = random_set_system(48, 64, seed=7).content_digest()
        from repro.setcover.source import read_container_header

        header, _ = read_container_header(path)
        assert header["digest"] == expected

    def test_gen_instance_rejects_conflicting_knobs(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["gen-instance", str(tmp_path / "x.repro"), "--n", "8", "--m", "4",
                 "--set-size", "2", "--density", "0.5"]
            )

    def test_run_header_reports_instance_and_dispatch(self, tmp_path, capsys):
        path = self.gen(tmp_path, capsys)
        cell = "ADV[algorithm=saha_getoor,order=random,workload=random]"
        assert main(
            ["run", cell, "--quiet", "--dispatch", "serial",
             "--instance-file", str(path), "--instance-backing", "heap"]
        ) == 0
        out = capsys.readouterr().out
        assert "# dispatch: serial" in out
        assert "backing=heap" in out and "tasks=1/1" in out

    def test_instance_flags_alone_route_through_runtime(self, tmp_path, capsys):
        path = self.gen(tmp_path, capsys)
        cell = "ADV[algorithm=saha_getoor,order=random,workload=random]"
        assert main(["run", cell, "--quiet", "--instance-file", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"[{cell}] computed" in out  # runtime-style status line

    def test_missing_instance_file_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="instance-file"):
            main(
                ["run", "E12", "--quiet",
                 "--instance-file", str(tmp_path / "nope.repro")]
            )

    def test_scenarios_detail_reports_instance_capable(self, capsys):
        assert main(["scenarios", "WL"]) == 0
        assert "instance-capable: yes" in capsys.readouterr().out
        assert main(["scenarios", "E12"]) == 0
        assert "instance-capable: no" in capsys.readouterr().out

    def test_trace_records_dispatch_and_backing(self, tmp_path, capsys):
        path = self.gen(tmp_path, capsys)
        cell = "ADV[algorithm=saha_getoor,order=random,workload=random]"
        trace_dir = tmp_path / "trace"
        assert main(
            ["run", cell, "--quiet", "--trace", str(trace_dir),
             "--dispatch", "serial", "--instance-file", str(path)]
        ) == 0
        records = []
        for trace_file in trace_dir.glob("*.jsonl"):
            for line in trace_file.read_text().splitlines():
                records.append(json.loads(line))
        sessions = [r for r in records if r.get("attrs", {}).get("dispatch")]
        assert any(
            r["attrs"]["dispatch"] == "serial"
            and r["attrs"].get("instance_backing") == "mmap"
            for r in sessions
        )
        passes = [r for r in records if r.get("name") == "stream.pass"]
        assert passes and all(r["attrs"]["backing"] == "mmap" for r in passes)
