"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    EXPERIMENT_DESCRIPTIONS,
    build_parser,
    main,
    resolve_experiment_ids,
    run_experiments,
)
from repro.experiments.experiment_defs import EXPERIMENT_REGISTRY


class TestResolution:
    def test_all_expands_in_order(self):
        ids = resolve_experiment_ids(["all"])
        assert ids[0] == "E1" and ids[-1] == "E12"
        assert len(ids) == len(EXPERIMENT_REGISTRY)

    def test_case_insensitive(self):
        assert resolve_experiment_ids(["e5", "E12"]) == ["E5", "E12"]

    def test_unknown_id_exits(self):
        with pytest.raises(SystemExit):
            resolve_experiment_ids(["E99"])

    def test_descriptions_cover_registry(self):
        assert set(EXPERIMENT_DESCRIPTIONS) == set(EXPERIMENT_REGISTRY)


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_options(self):
        args = build_parser().parse_args(
            ["run", "E2", "E5", "--seed", "7", "--json", "out.json", "--quiet"]
        )
        assert args.experiments == ["E2", "E5"]
        assert args.seed == 7
        assert args.json == "out.json"
        assert args.quiet is True

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunExperiments:
    def test_runs_and_collects(self):
        printed = []
        results = run_experiments(["E12"], printer=printed.append)
        assert len(results) == 1
        assert results[0].experiment_id == "E12"
        assert any("E12" in line for line in printed)

    def test_quiet_suppresses_tables(self):
        printed = []
        run_experiments(["E12"], printer=printed.append, quiet=True)
        assert all("quantity" not in line for line in printed)

    def test_seed_override_passes_through(self):
        results = run_experiments(["E12"], seed=123, quiet=True, printer=lambda _ : None)
        assert results[0].findings["all_facts_hold"]


class TestMainEntryPoint:
    def test_list_returns_zero(self, capsys):
        assert main(["list"]) == 0
        captured = capsys.readouterr()
        assert "E1" in captured.out

    def test_run_writes_json_and_markdown(self, tmp_path, capsys):
        json_path = tmp_path / "results.json"
        md_path = tmp_path / "report.md"
        code = main(
            [
                "run",
                "E12",
                "--quiet",
                "--json",
                str(json_path),
                "--markdown",
                str(md_path),
            ]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload[0]["experiment_id"] == "E12"
        assert "E12" in md_path.read_text()
