"""The instance plane: sources, the container format, and windowed kernels.

Contract under test: an instance is its packed bytes, wherever they live.
Heap, shared-memory, and mmap backings expose identical views, digests, and
solver behaviour; the container file round-trips through the chunked writer
bit-identically; and the windowed :class:`ChunkedKernel` matches the
resident kernels on every protocol method.
"""

from __future__ import annotations

import pickle

import pytest

import repro.kernels as kernels
from repro.exceptions import InstanceSourceLostError
from repro.kernels.chunked import ChunkedKernel
from repro.setcover.greedy import greedy_cover_trace, greedy_set_cover
from repro.setcover.instance import SetSystem, packed_row_bytes
from repro.setcover.source import (
    CONTAINER_MAGIC,
    ContainerWriter,
    HeapSource,
    LazyMaskRows,
    MmapSource,
    SharedMemorySource,
    SourceBackedSetSystem,
    SourceDescriptor,
    open_source,
    read_container_header,
    write_container,
)
from repro.workloads.random_instances import random_instance, random_set_system

BACKENDS = ["python"] + (["numpy"] if kernels.HAS_NUMPY else [])


def sample_system(n=48, m=20, seed=3) -> SetSystem:
    return random_instance(n, m, density=0.15, seed=seed).system


@pytest.fixture
def container(tmp_path):
    system = sample_system()
    path = tmp_path / "inst.repro"
    write_container(path, system.to_packed())
    return path, system


class TestContainerFormat:
    def test_header_round_trips(self, container):
        path, system = container
        header, data_offset = read_container_header(path)
        assert header["universe_size"] == system.universe_size
        assert header["num_sets"] == system.num_sets
        assert data_offset % 8 == 0
        size = path.stat().st_size
        assert size == data_offset + len(system.to_packed().buffer)

    def test_digest_is_patched_not_placeholder(self, container):
        path, system = container
        header, _ = read_container_header(path)
        assert header["digest"] == system.content_digest()
        assert set(header["digest"]) != {"0"}

    def test_bad_magic_rejected(self, tmp_path, container):
        path, _ = container
        data = path.read_bytes()
        bad = tmp_path / "bad.repro"
        bad.write_bytes(b"NOTMAGIC" + data[len(CONTAINER_MAGIC):])
        with pytest.raises(ValueError, match="magic"):
            read_container_header(bad)

    def test_truncated_data_is_a_lost_source(self, tmp_path, container):
        path, _ = container
        data = path.read_bytes()
        torn = tmp_path / "torn.repro"
        torn.write_bytes(data[:-8])
        with pytest.raises(InstanceSourceLostError):
            MmapSource.open(torn)

    def test_missing_file_is_a_lost_source(self, tmp_path):
        with pytest.raises(InstanceSourceLostError):
            MmapSource.open(tmp_path / "nope.repro")

    def test_writer_publishes_atomically(self, tmp_path):
        system = sample_system()
        path = tmp_path / "atomic.repro"
        writer = ContainerWriter(path, system.universe_size, system.num_sets)
        writer.append_rows(system.to_packed().buffer)
        assert not path.exists()  # nothing visible until close
        descriptor = writer.close()
        assert path.exists()
        assert descriptor.digest == system.content_digest()
        assert list(tmp_path.iterdir()) == [path]  # no .tmp leftovers

    def test_writer_abort_leaves_nothing(self, tmp_path):
        path = tmp_path / "aborted.repro"
        writer = ContainerWriter(path, 16, 4)
        writer.append_masks([1, 2])
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_writer_rejects_overfill_and_short_close(self, tmp_path):
        path = tmp_path / "strict.repro"
        with ContainerWriter(path, 16, 2) as writer:
            writer.append_masks([1, 2])
            with pytest.raises(ValueError):
                writer.append_masks([3])

        writer = ContainerWriter(tmp_path / "short.repro", 16, 2)
        writer.append_masks([1])
        with pytest.raises(ValueError):
            writer.close()
        writer.abort()

    def test_writer_rejects_out_of_universe_mask(self, tmp_path):
        writer = ContainerWriter(tmp_path / "oob.repro", 4, 1)
        with pytest.raises(ValueError):
            writer.append_masks([1 << 4])
        writer.abort()


def open_all_backings(system, tmp_path):
    """One source per backing kind, all over the same packed bytes."""
    packed = system.to_packed()
    path = tmp_path / "backings.repro"
    write_container(path, packed)
    return [
        HeapSource.from_packed(packed),
        MmapSource.open(path),
        SharedMemorySource.publish(packed),
    ]


class TestBackingEquivalence:
    def test_views_digests_and_masks_agree(self, tmp_path):
        system = sample_system()
        packed = system.to_packed()
        sources = open_all_backings(system, tmp_path)
        try:
            for source in sources:
                assert bytes(source.view()) == packed.buffer
                assert source.digest() == system.content_digest()
                assert [source.mask_at(i) for i in range(system.num_sets)] == system.masks()
        finally:
            for source in sources:
                source.close()

    def test_descriptor_reopens_every_kind(self, tmp_path):
        system = sample_system()
        sources = open_all_backings(system, tmp_path)
        try:
            for source in sources:
                descriptor = source.descriptor()
                assert descriptor.kind == source.kind
                with open_source(descriptor) as reopened:
                    assert bytes(reopened.view()) == system.to_packed().buffer
        finally:
            for source in sources:
                source.close()

    def test_iter_chunks_covers_buffer_exactly(self, tmp_path):
        system = sample_system(n=70, m=33)
        path = tmp_path / "chunks.repro"
        write_container(path, system.to_packed())
        with MmapSource.open(path) as source:
            rebuilt = b"".join(
                bytes(view) for _, _, view in source.iter_chunks(chunk_rows=5)
            )
            assert rebuilt == system.to_packed().buffer

    def test_shared_source_lifecycle(self):
        system = sample_system()
        owner = SharedMemorySource.publish(system.to_packed())
        descriptor = owner.descriptor()
        attached = SharedMemorySource.attach(descriptor)
        assert bytes(attached.view()) == system.to_packed().buffer
        attached.close()  # detach only
        assert bytes(owner.view()) == system.to_packed().buffer
        owner.close()  # owner close unlinks

    def test_empty_system_round_trips(self, tmp_path):
        system = SetSystem(5, [])
        path = tmp_path / "empty.repro"
        write_container(path, system.to_packed())
        with MmapSource.open(path) as source:
            assert source.num_sets == 0
            assert source.system() == system


class TestPickleNoCopy:
    """Satellite: pickling a packed-backed system must not duplicate the buffer."""

    def test_from_packed_adopts_buffer(self):
        packed = sample_system().to_packed()
        system = SetSystem.from_packed(packed)
        assert system.to_packed().buffer is packed.buffer

    def test_pickle_carries_buffer_exactly_once(self):
        # Large enough that a duplicated incidence buffer would dominate the
        # pickle size; a distinctive row appearing twice means a double copy.
        system = SetSystem.from_packed(random_set_system(64, 4096, seed=9).to_packed())
        buffer = system.to_packed().buffer
        blob = pickle.dumps(system)
        assert len(blob) < len(buffer) + 4096
        probe = buffer[: packed_row_bytes(64) * 8]
        assert blob.count(probe) == 1

    def test_round_trip_preserves_bytes(self):
        system = sample_system()
        clone = pickle.loads(pickle.dumps(system))
        assert clone == system
        assert clone.to_packed().buffer == system.to_packed().buffer


class TestSourceBackedSetSystem:
    def test_matches_resident_system(self, tmp_path):
        system = sample_system()
        path = tmp_path / "sys.repro"
        system.to_file(path)
        windowed = SetSystem.from_source(MmapSource.open(path))
        assert isinstance(windowed, SourceBackedSetSystem)
        assert windowed.backing == "mmap"
        assert windowed.universe_size == system.universe_size
        assert windowed.masks() == system.masks()
        assert windowed == system
        assert windowed.content_digest() == system.content_digest()
        windowed.close()

    def test_greedy_identical_to_resident(self, tmp_path):
        system = sample_system(n=40, m=30, seed=11)
        path = tmp_path / "greedy.repro"
        system.to_file(path)
        windowed = SetSystem.from_source(MmapSource.open(path))
        coverable = system.coverage_mask(range(system.num_sets))
        expected = greedy_set_cover(system, required_mask=coverable)
        assert greedy_set_cover(windowed, required_mask=coverable) == expected
        windowed.close()

    def test_pickles_as_descriptor_not_buffer(self, tmp_path):
        system = sample_system(n=64, m=2048, seed=5)
        path = tmp_path / "big.repro"
        system.to_file(path)
        windowed = SetSystem.from_source(MmapSource.open(path))
        blob = pickle.dumps(windowed)
        assert len(blob) < 2000  # a descriptor, not 2048 rows of buffer
        clone = pickle.loads(blob)
        assert clone.backing == "mmap"
        assert clone.content_digest() == system.content_digest()
        assert clone.masks() == system.masks()
        clone.close()
        windowed.close()

    def test_heap_backing_reports_heap(self):
        assert sample_system().backing == "heap"


class TestLazyMaskRows:
    def test_indexing_slicing_iteration(self, tmp_path):
        system = sample_system(n=30, m=17)
        path = tmp_path / "lazy.repro"
        system.to_file(path)
        with MmapSource.open(path) as source:
            rows = LazyMaskRows(source, chunk_rows=4)
            masks = system.masks()
            assert len(rows) == len(masks)
            assert list(rows) == masks
            assert rows[0] == masks[0]
            assert rows[-1] == masks[-1]
            assert rows[3:9] == masks[3:9]
            assert rows == masks
            with pytest.raises(IndexError):
                rows[len(masks)]


@pytest.mark.parametrize("backend", BACKENDS)
class TestChunkedKernelParity:
    """The windowed kernel must match the resident kernel on every method."""

    def make_pair(self, tmp_path, backend, n=50, m=23, seed=13):
        system = random_instance(n, m, density=0.2, seed=seed).system
        path = tmp_path / f"kern-{backend}.repro"
        system.to_file(path)
        source = MmapSource.open(path)
        chunked = ChunkedKernel(source, backend=backend, chunk_rows=4)
        resident = kernels.make_kernel(
            system.universe_size, system.masks(), backend=backend
        )
        return system, source, chunked, resident

    def test_all_methods_agree(self, tmp_path, backend):
        system, source, chunked, resident = self.make_pair(tmp_path, backend)
        uncovered = (1 << system.universe_size) - 1
        try:
            assert chunked.gains(uncovered) == resident.gains(uncovered)
            assert chunked.best_gain_index(uncovered) == resident.best_gain_index(uncovered)
            assert chunked.element_frequencies() == resident.element_frequencies()
            assert chunked.union() == resident.union()
            assert chunked.set_sizes() == resident.set_sizes()
            assert chunked.element_lists() == resident.element_lists()
            assert chunked.element_lists([0, 2]) == resident.element_lists([0, 2])
            assert chunked.packed_bytes() == system.to_packed().buffer
            keys = chunked.set_sizes()
            assert chunked.claim_resolution(keys) == resident.claim_resolution(keys)
        finally:
            source.close()

    def test_tracker_greedy_trace_identical(self, tmp_path, backend):
        system, source, chunked, _ = self.make_pair(tmp_path, backend, seed=21)
        try:
            windowed = SetSystem.from_source(
                MmapSource.open(tmp_path / f"kern-{backend}.repro"), backend=backend
            )
            coverable = system.coverage_mask(range(system.num_sets))
            expected = greedy_cover_trace(system, required_mask=coverable)
            actual = greedy_cover_trace(windowed, required_mask=coverable)
            assert actual.solution == expected.solution
            assert actual.steps == expected.steps
            windowed.close()
        finally:
            source.close()

    def test_empty_and_degenerate_cases(self, tmp_path, backend):
        path = tmp_path / f"deg-{backend}.repro"
        SetSystem(6, []).to_file(path)
        with MmapSource.open(path) as source:
            kernel = ChunkedKernel(source, backend=backend)
            assert kernel.best_gain_index(63) == (-1, 0)
            assert kernel.gains(63) == []
            assert kernel.union() == 0
            assert kernel.element_frequencies() == [0] * 6
