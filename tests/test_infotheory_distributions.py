"""Unit tests for JointDistribution."""

import pytest

from repro.infotheory.distributions import JointDistribution


@pytest.fixture
def xor_joint():
    """Uniform (A, B) with C = A xor B."""
    pmf = {}
    for a in (0, 1):
        for b in (0, 1):
            pmf[(a, b, a ^ b)] = 0.25
    return JointDistribution(["A", "B", "C"], pmf)


class TestConstruction:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            JointDistribution(["X"], {(0,): 0.4})

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            JointDistribution(["X"], {(0,): 1.5, (1,): -0.5})

    def test_duplicate_variable_names_rejected(self):
        with pytest.raises(ValueError):
            JointDistribution(["X", "X"], {(0, 0): 1.0})

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            JointDistribution(["X", "Y"], {(0,): 1.0})

    def test_zero_mass_entries_dropped(self):
        joint = JointDistribution(["X"], {(0,): 1.0, (1,): 0.0})
        assert joint.support() == [(0,)]

    def test_from_samples(self):
        joint = JointDistribution.from_samples(["X"], [(0,), (0,), (1,), (1,)])
        assert joint.probability((0,)) == pytest.approx(0.5)

    def test_from_samples_empty_rejected(self):
        with pytest.raises(ValueError):
            JointDistribution.from_samples(["X"], [])

    def test_uniform(self):
        joint = JointDistribution.uniform(["X", "Y"], [(0, 0), (1, 1)])
        assert joint.probability((0, 0)) == pytest.approx(0.5)

    def test_uniform_empty_rejected(self):
        with pytest.raises(ValueError):
            JointDistribution.uniform(["X"], [])


class TestMarginalAndConditioning:
    def test_marginal(self, xor_joint):
        marginal = xor_joint.marginal(["A"])
        assert marginal.probability((0,)) == pytest.approx(0.5)
        assert marginal.probability((1,)) == pytest.approx(0.5)

    def test_marginal_order(self, xor_joint):
        marginal = xor_joint.marginal(["C", "A"])
        assert marginal.probability((1, 0)) == pytest.approx(0.25)

    def test_marginal_unknown_variable(self, xor_joint):
        with pytest.raises(KeyError):
            xor_joint.marginal(["Z"])

    def test_condition(self, xor_joint):
        conditioned = xor_joint.condition(["A"], (0,))
        assert conditioned.probability((0, 1, 1)) == pytest.approx(0.5)
        assert conditioned.probability((1, 1, 0)) == 0.0

    def test_condition_zero_probability_event(self, xor_joint):
        with pytest.raises(ValueError):
            xor_joint.condition(["A"], (7,))

    def test_map_variable(self, xor_joint):
        mapped = xor_joint.map_variable("C", "NotC", lambda c: 1 - c)
        assert mapped.variables == ["A", "B", "NotC"]
        assert mapped.probability((0, 0, 1)) == pytest.approx(0.25)

    def test_product(self):
        x = JointDistribution(["X"], {(0,): 0.5, (1,): 0.5})
        y = JointDistribution(["Y"], {("a",): 1.0})
        product = x.product(y)
        assert product.probability((0, "a")) == pytest.approx(0.5)

    def test_product_overlap_rejected(self):
        x = JointDistribution(["X"], {(0,): 1.0})
        with pytest.raises(ValueError):
            x.product(x)
