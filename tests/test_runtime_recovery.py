"""Failure-recovery tests for the hardened executor and degradation ladder.

The resilience contract under test: failures may cost wall-clock (retries,
pool respawns, serial degradation) but never change bytes — every recovered
run's payloads are identical to a fault-free serial run's.
"""

from __future__ import annotations

import pytest

from repro.exceptions import CircuitOpenError
from repro.kernels import HAS_NUMPY, PyIntKernel, make_kernel
from repro.resilience.durability import canonical_json
from repro.resilience.faults import FAULTS_ENV_VAR, fault_plan_active, parse_fault_spec
from repro.resilience.policy import RETRY_ENV_VAR
from repro.runtime import ResultStore, RuntimeTask, TaskExecutor, freeze_params
from repro.runtime.store import read_store_stats
from repro.telemetry.session import TelemetrySession


def grid_tasks():
    """A small, cheap scenario grid: E12 at two gadget sizes x two seeds."""
    return [
        RuntimeTask(
            key=f"E12[t={t},seed={seed}]",
            runner="E12",
            params=freeze_params({"t": t}),
            seed=seed,
        )
        for t in (2, 3)
        for seed in (1, 2)
    ]


def payload_bytes(report):
    """Submission-ordered canonical payload bytes, the parity currency."""
    return [canonical_json(outcome.payload) for outcome in report.outcomes]


@pytest.fixture
def clean_payloads(monkeypatch):
    """Fault-free serial baseline payloads for the grid."""
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    monkeypatch.delenv(RETRY_ENV_VAR, raising=False)
    return payload_bytes(TaskExecutor(workers=1).run(grid_tasks()))


def run_with_faults(monkeypatch, faults, retry=None, workers=2, tmp_path=None):
    """Run the grid under a fault schedule, returning (report, counters)."""
    monkeypatch.setenv(FAULTS_ENV_VAR, faults)
    if retry is None:
        monkeypatch.delenv(RETRY_ENV_VAR, raising=False)
    else:
        monkeypatch.setenv(RETRY_ENV_VAR, retry)
    store = ResultStore(tmp_path) if tmp_path is not None else None
    with TelemetrySession(label="recovery-test") as session:
        report = TaskExecutor(workers=workers, store=store).run(grid_tasks())
    return report, session.registry.snapshot()["counters"]


class TestCrashRecovery:
    def test_worker_crash_respawns_pool_and_preserves_bytes(
        self, monkeypatch, clean_payloads
    ):
        # Every task crashes its worker on attempt 0; the requeued chunks run
        # at attempt 1 where the rule (until=1) no longer fires.
        report, counters = run_with_faults(
            monkeypatch, "seed=11,executor.submit:crash:1:1", workers=2
        )
        assert payload_bytes(report) == clean_payloads
        assert not report.interrupted
        assert counters.get("executor.pool_respawns", 0) >= 1
        assert counters.get("executor.worker_lost", 0) >= 1

    def test_partial_crash_schedule_preserves_bytes(self, monkeypatch, clean_payloads):
        report, counters = run_with_faults(
            monkeypatch, "seed=4,executor.submit:crash:0.5:1", workers=2
        )
        assert payload_bytes(report) == clean_payloads


class TestCorruptPayloadRecovery:
    def test_corrupted_payload_is_rejected_and_recomputed(
        self, monkeypatch, clean_payloads
    ):
        report, counters = run_with_faults(
            monkeypatch, "seed=1,executor.submit:corrupt:1:1", workers=1
        )
        assert payload_bytes(report) == clean_payloads
        assert counters.get("executor.payload_rejected", 0) == len(clean_payloads)
        # The merged payloads never leak the corruption marker or checksum.
        for outcome in report.outcomes:
            assert "__corrupted__" not in outcome.payload
            assert "__integrity__" not in outcome.payload

    def test_corrupt_across_workers(self, monkeypatch, clean_payloads):
        report, _ = run_with_faults(
            monkeypatch, "seed=1,executor.submit:corrupt:0.5:1", workers=2
        )
        assert payload_bytes(report) == clean_payloads


class TestTimeoutRecovery:
    def test_hung_worker_trips_deadline_and_requeues(self, monkeypatch, clean_payloads):
        # Workers hang far past the 0.5s/task deadline; the parent abandons
        # the pool, terminates the hung workers, and re-executes everything.
        report, counters = run_with_faults(
            monkeypatch,
            "seed=1,hang=30,executor.submit:hang:1:1",
            retry="timeout=0.5",
            workers=2,
        )
        assert payload_bytes(report) == clean_payloads
        assert counters.get("executor.timeouts", 0) >= 1
        assert counters.get("executor.pool_respawns", 0) >= 1


class TestSerialDegradation:
    def test_pool_loss_beyond_budget_degrades_to_serial(
        self, monkeypatch, clean_payloads
    ):
        report, counters = run_with_faults(
            monkeypatch,
            "seed=11,executor.submit:crash:1:1",
            retry="respawns=0",
            workers=2,
        )
        assert payload_bytes(report) == clean_payloads
        assert counters.get("degrade.serial_execution", 0) == 1
        assert counters.get("degrade.total", 0) >= 1


class TestCircuitBreaker:
    def test_persistent_pool_loss_opens_the_circuit(self, monkeypatch):
        # until=5 keeps the crash firing across respawn generations, and a
        # breaker threshold of 1 turns the first loss into a fast failure.
        monkeypatch.setenv(FAULTS_ENV_VAR, "seed=11,executor.submit:crash:1:5")
        monkeypatch.setenv(RETRY_ENV_VAR, "breaker=1,respawns=10")
        with pytest.raises(CircuitOpenError):
            TaskExecutor(workers=2).run(grid_tasks())


class TestKeyboardInterrupt:
    def test_interrupt_yields_partial_report_with_flushed_stats(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        import repro.runtime.executor as executor_module

        tasks = grid_tasks()
        original = executor_module.execute_task

        def interrupting(task):
            if task.key == tasks[2].key:
                raise KeyboardInterrupt
            return original(task)

        monkeypatch.setattr(executor_module, "execute_task", interrupting)
        store = ResultStore(tmp_path)
        report = TaskExecutor(workers=1, store=store).run(tasks)
        assert report.interrupted
        assert len(report) == 2
        assert [o.task.key for o in report.outcomes] == [t.key for t in tasks[:2]]
        # Stats were flushed on the way out, and the finished work persisted.
        assert read_store_stats(tmp_path)["puts"] == 2
        assert len(store) == 2

    def test_uninterrupted_runs_report_interrupted_false(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        report = TaskExecutor(workers=1).run(grid_tasks()[:1])
        assert report.interrupted is False


class TestKernelDegradation:
    @pytest.mark.skipif(not HAS_NUMPY, reason="needs the NumPy backend")
    def test_failed_numpy_build_falls_back_to_pyint(self):
        masks = [0b011, 0b101, 0b110]
        with fault_plan_active(parse_fault_spec("seed=1,kernel.make:raise:1:1")):
            with TelemetrySession(label="kernel-test") as session:
                kernel = make_kernel(3, masks, backend="numpy")
            counters = session.registry.snapshot()["counters"]
        # The metering proxy may wrap it; the backend underneath is pure.
        backend = getattr(kernel, "_kernel", kernel)
        assert isinstance(backend, PyIntKernel)
        assert counters.get("degrade.kernel_backend", 0) == 1

    @pytest.mark.skipif(not HAS_NUMPY, reason="needs the NumPy backend")
    def test_fallback_kernel_is_bit_identical(self):
        masks = [0b0111, 0b1100, 0b1010, 0b0001]
        with fault_plan_active(parse_fault_spec("seed=1,kernel.make:raise:1:1")):
            degraded = make_kernel(4, masks, backend="numpy")
        clean = make_kernel(4, masks, backend="python")
        universe = (1 << 4) - 1
        assert degraded.gains(universe) == clean.gains(universe)


class TestOutcomeRowDegradation:
    def test_space_budget_overrun_is_an_outcome_not_a_failure(self):
        from repro.experiments.workload_defs import run_workload_sweep

        with TelemetrySession(label="budget-test") as session:
            result = run_workload_sweep(
                workload="random", algorithm="store_everything", space_budget=1, seed=3
            )
            counters = session.registry.snapshot()["counters"]
        assert result.findings["budget_exceeded"] is True
        assert counters.get("degrade.outcome_row", 0) == 1


class TestSignalDrain:
    """SIGTERM means the same thing to both front ends: drain gracefully."""

    def test_executor_drains_on_sigterm_like_an_interrupt(
        self, monkeypatch, tmp_path
    ):
        import signal

        import repro.runtime.executor as executor_module
        from repro.resilience.drain import drain_on_signal

        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        tasks = grid_tasks()
        original = executor_module.execute_task

        def signalled(task):
            if task.key == tasks[2].key:
                # A real delivery, not a raised KeyboardInterrupt: the drain
                # scope's handler must do the translation itself.
                signal.raise_signal(signal.SIGTERM)
            return original(task)

        monkeypatch.setattr(executor_module, "execute_task", signalled)
        store = ResultStore(tmp_path)
        with drain_on_signal():
            report = TaskExecutor(workers=1, store=store).run(tasks)
        assert report.interrupted
        assert len(report) == 2
        # Finished work was flushed before the drain returned.
        assert read_store_stats(tmp_path)["puts"] == 2

    def test_drain_scope_restores_previous_handlers(self):
        import signal

        from repro.resilience.drain import drain_on_signal

        before = signal.getsignal(signal.SIGTERM)
        with drain_on_signal(callback=lambda s: None):
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_service_drains_on_sigterm(self):
        """End-to-end: `repro serve` answers, then SIGTERM drains to exit 0."""
        import os
        import signal
        import subprocess
        import sys

        from repro.service.client import ServiceClient

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop(FAULTS_ENV_VAR, None)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--workers", "0",
                "--instance", "hot=random:n=24,m=16,seed=2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("listening on "), banner
            host, _, port = banner.rpartition(" ")[2].rpartition(":")
            with ServiceClient(host, int(port)) as client:
                response = client.request("cover")
            assert response["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            stdout, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "drained:" in stdout
        assert "ok=1" in stdout or "requests=1" in stdout
