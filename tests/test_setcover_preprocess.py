"""Unit tests for set cover preprocessing reductions."""

import pytest

from repro.setcover.exact import exact_cover_value, exact_set_cover
from repro.setcover.instance import SetSystem
from repro.setcover.preprocess import (
    find_dominated_sets,
    find_forced_picks,
    preprocess,
    remove_empty_sets,
)
from repro.setcover.verify import verify_cover
from repro.workloads.random_instances import random_instance


class TestBasicReductions:
    def test_remove_empty_sets(self):
        system = SetSystem(4, [[0, 1], [], [2, 3], []])
        assert remove_empty_sets(system) == [0, 2]

    def test_find_dominated(self):
        system = SetSystem(5, [[0, 1, 2, 3], [1, 2], [4], [0, 1, 2]])
        dominated = find_dominated_sets(system)
        assert dominated == {1, 3}

    def test_duplicate_sets_keep_one(self):
        system = SetSystem(3, [[0, 1], [0, 1], [2]])
        dominated = find_dominated_sets(system)
        assert len(dominated) == 1

    def test_find_forced_picks(self):
        system = SetSystem(4, [[0, 1], [1, 2], [1, 3]])
        target = system.uncovered_mask([])
        forced = find_forced_picks(system, [0, 1, 2], target)
        # Elements 0, 2 and 3 each have a unique coverer; element 1 does not.
        assert forced == {0, 1, 2}

    def test_find_forced_picks_none(self):
        system = SetSystem(2, [[0, 1], [0, 1]])
        target = system.uncovered_mask([])
        assert find_forced_picks(system, [0, 1], target) == set()


class TestPreprocess:
    def test_forced_and_dominated_recorded(self):
        system = SetSystem(
            6,
            [
                [0, 1, 2],      # forced: unique coverer of 0
                [1, 2],         # dominated by set 0 (on the residual)
                [3, 4, 5],      # forced: unique coverer of 3 (and 5)
                [4],            # dominated by set 2
            ],
        )
        result = preprocess(system)
        assert set(result.forced_picks) == {0, 2}
        assert result.residual_target_mask == 0

    def test_lift_solution_covers_original(self):
        for seed in range(4):
            instance = random_instance(30, 12, seed=seed)
            result = preprocess(instance.system)
            if result.residual_target_mask == 0:
                lifted = result.lift_solution([])
            else:
                reduced_solution = exact_set_cover(
                    result.system, target_mask=result.residual_target_mask
                )
                lifted = result.lift_solution(reduced_solution)
            verify_cover(instance.system, lifted)

    def test_preprocessing_preserves_optimum(self):
        for seed in range(4):
            instance = random_instance(20, 10, seed=seed)
            original_opt = exact_cover_value(instance.system)
            result = preprocess(instance.system)
            if result.residual_target_mask == 0:
                reduced_solution = []
            else:
                reduced_solution = exact_set_cover(
                    result.system, target_mask=result.residual_target_mask
                )
            lifted = result.lift_solution(reduced_solution)
            assert len(lifted) == original_opt

    def test_empty_sets_never_kept(self):
        system = SetSystem(3, [[0, 1, 2], [], []])
        result = preprocess(system)
        assert all(i != 1 and i != 2 for i in result.kept_indices)

    def test_no_reduction_needed(self):
        # Disjoint sets: nothing dominated, everything forced.
        system = SetSystem(4, [[0, 1], [2, 3]])
        result = preprocess(system)
        assert set(result.forced_picks) == {0, 1}
        assert result.residual_target_mask == 0
