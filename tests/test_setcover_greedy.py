"""Unit tests for the offline greedy set cover algorithm."""

import pytest

from repro.exceptions import InfeasibleInstanceError
from repro.setcover.greedy import greedy_cover_trace, greedy_set_cover
from repro.setcover.instance import SetSystem
from repro.setcover.verify import is_feasible_cover


class TestGreedyCorrectness:
    def test_covers_universe(self, tiny_system):
        solution = greedy_set_cover(tiny_system)
        assert is_feasible_cover(tiny_system, solution)

    def test_finds_small_cover_on_tiny(self, tiny_system):
        # Greedy should find the 2-set partition here (both halves size 3 > others).
        solution = greedy_set_cover(tiny_system)
        assert len(solution) <= 3

    def test_greedy_can_be_suboptimal(self, chain_system):
        solution = greedy_set_cover(chain_system)
        assert is_feasible_cover(chain_system, solution)
        assert len(solution) == 3  # bait set + two singletons; opt is 2

    def test_infeasible_raises(self):
        system = SetSystem(4, [[0, 1], [2]])
        with pytest.raises(InfeasibleInstanceError):
            greedy_set_cover(system)

    def test_empty_universe_needs_nothing(self):
        system = SetSystem(0, [[]])
        assert greedy_set_cover(system) == []

    def test_required_mask_restricts_target(self, tiny_system):
        # Only cover elements {0, 1, 2}; a single set suffices.
        solution = greedy_set_cover(tiny_system, required_mask=0b000111)
        assert len(solution) == 1
        assert tiny_system.coverage_mask(solution) & 0b000111 == 0b000111

    def test_no_duplicate_choices(self, planted_instance):
        solution = greedy_set_cover(planted_instance.system)
        assert len(solution) == len(set(solution))


class TestGreedyTrace:
    def test_trace_steps_match_solution(self, tiny_system):
        trace = greedy_cover_trace(tiny_system)
        assert [step.chosen_set for step in trace.steps] == trace.solution
        assert trace.size == len(trace.solution)

    def test_trace_monotone_uncovered(self, planted_instance):
        trace = greedy_cover_trace(planted_instance.system)
        remaining = [step.remaining_uncovered for step in trace.steps]
        assert remaining == sorted(remaining, reverse=True)
        assert remaining[-1] == 0

    def test_newly_covered_positive(self, planted_instance):
        trace = greedy_cover_trace(planted_instance.system)
        assert all(step.newly_covered > 0 for step in trace.steps)

    def test_max_sets_cap(self, chain_system):
        with pytest.raises(InfeasibleInstanceError):
            greedy_cover_trace(chain_system, max_sets=1)


class TestGreedyApproximation:
    def test_ln_n_guarantee_on_planted(self, planted_instance):
        import math

        solution = greedy_set_cover(planted_instance.system)
        opt = planted_instance.planted_opt
        bound = opt * (math.log(planted_instance.universe_size) + 1)
        assert len(solution) <= bound
