"""Unit tests for mapping-extensions (Definition 3)."""

import pytest

from repro.exceptions import DistributionError
from repro.lowerbound.mapping_extension import MappingExtension, random_mapping_extension
from repro.utils.rng import RandomSource


class TestRandomMappingExtension:
    def test_blocks_partition_universe(self):
        mapping = random_mapping_extension(60, 6, seed=1)
        union = set()
        for i in range(6):
            block = mapping.image(i)
            assert not (union & block)
            union |= block
        assert union == set(range(60))

    def test_block_sizes_balanced(self):
        mapping = random_mapping_extension(64, 6, seed=2)
        sizes = [len(mapping.image(i)) for i in range(6)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 64

    def test_exact_division(self):
        mapping = random_mapping_extension(30, 5, seed=3)
        assert mapping.block_size == 6
        assert mapping.t == 5

    def test_extend_union(self):
        mapping = random_mapping_extension(20, 4, seed=4)
        extended = mapping.extend([0, 2])
        assert extended == mapping.image(0) | mapping.image(2)

    def test_extend_mask_matches_extend(self):
        from repro.utils.bitset import bitset_to_set

        mapping = random_mapping_extension(20, 4, seed=5)
        assert bitset_to_set(mapping.extend_mask([1, 3])) == set(mapping.extend([1, 3]))

    def test_extend_empty(self):
        mapping = random_mapping_extension(12, 3, seed=6)
        assert mapping.extend([]) == frozenset()

    def test_preimage_table(self):
        mapping = random_mapping_extension(18, 3, seed=7)
        table = mapping.preimage_table()
        for block_index in range(3):
            for element in mapping.image(block_index):
                assert table[element] == block_index

    def test_determinism(self):
        a = random_mapping_extension(30, 5, seed=9)
        b = random_mapping_extension(30, 5, seed=9)
        assert a.blocks == b.blocks

    def test_invalid_parameters(self):
        with pytest.raises(DistributionError):
            random_mapping_extension(5, 0)
        with pytest.raises(DistributionError):
            random_mapping_extension(5, 6)


class TestMappingExtensionValidation:
    def test_overlapping_blocks_rejected(self):
        with pytest.raises(DistributionError):
            MappingExtension(4, (frozenset({0, 1}), frozenset({1, 2})))

    def test_empty_block_rejected(self):
        with pytest.raises(DistributionError):
            MappingExtension(4, (frozenset(), frozenset({1})))

    def test_out_of_universe_rejected(self):
        with pytest.raises(DistributionError):
            MappingExtension(3, (frozenset({5}),))
