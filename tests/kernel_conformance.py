"""Reusable cross-backend kernel conformance harness.

Every :class:`~repro.kernels.base.Kernel` backend — current and future — must
be *bit-identical* to the pure-Python reference
(:class:`~repro.kernels.pyint.PyIntKernel`) on every protocol method.  This
module is the single place that contract lives: it enumerates an adversarial
shape grid (empty systems, universes not divisible by 64, single-word rows,
dense/sparse extremes, tie-break-heavy duplicates), a grid of query masks and
claim-key patterns (including keys past the int64 scoring range), and a full
replay of the stateful :class:`~repro.kernels.base.GainTracker` contract —
then asserts equality observable by observable.

Backend test files *import* this harness instead of re-implementing parity:

* ``tests/test_kernel_conformance.py`` parameterizes it over every backend in
  :func:`repro.kernels.kernel_registry` (so registering a new backend makes
  it conformance-gated automatically) and, for the compiled backend, over
  thread counts and chunk sizes;
* property suites reuse :func:`assert_kernel_conformance` on hypothesis-drawn
  systems.

Not itself collected by pytest (no ``test_`` prefix) — it is a library.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.kernels import kernel_registry
from repro.kernels.base import Kernel
from repro.kernels.pyint import PyIntKernel
from repro.utils.rng import RandomSource


def _random_masks(n: int, m: int, seed: int) -> List[int]:
    rng = RandomSource(seed)
    return [rng.randbits(n) for _ in range(m)]


def _universe(n: int) -> int:
    return (1 << n) - 1


#: ``name -> (universe_size, masks)``: the adversarial shape grid.  Shapes
#: target the places packed-word backends get boundary arithmetic wrong —
#: word edges, padding bits, empty extremes, and tie-breaking.
CONFORMANCE_CASES: Dict[str, Tuple[int, List[int]]] = {
    "empty-system": (0, []),
    "empty-universe-with-sets": (0, [0, 0, 0]),
    "no-sets": (7, []),
    "all-empty-rows": (9, [0, 0, 0, 0]),
    "single-element-universe": (1, [1, 0, 1]),
    "n-not-div-64": (37, _random_masks(37, 7, 11)),
    "single-word-exact": (64, _random_masks(64, 6, 12)),
    "word-boundary-65": (65, _random_masks(65, 6, 13)),
    "two-words-minus-one": (127, _random_masks(127, 5, 14)),
    "three-words": (130, _random_masks(130, 8, 15)),
    "dense-full-rows": (70, [_universe(70)] * 5),
    "sparse-singletons": (130, [1 << 0, 1 << 63, 1 << 64, 1 << 129, 0]),
    "tie-break-duplicates": (48, [_random_masks(48, 1, 16)[0]] * 6),
    "mixed-random": (96, _random_masks(96, 12, 17)),
}


def query_masks(n: int) -> List[int]:
    """Uncovered/keep masks that probe word edges and padding bits."""
    universe = _universe(n)
    masks = [0, universe]
    if n:
        alternating = sum(1 << i for i in range(0, n, 2))
        masks.extend(
            [
                alternating & universe,
                (universe >> max(0, n // 2)) & universe,  # low half
                (1 << (n - 1)),  # highest element only
                _random_masks(n, 1, 19)[0],
            ]
        )
    return masks


def key_patterns(m: int) -> List[Tuple[str, List[int]]]:
    """Claim-key vectors that stress every tie-break and range branch."""
    patterns = [
        ("all-zero", [0] * m),
        ("all-equal", [7] * m),
        ("descending", [m - i for i in range(m)]),
        ("ascending", [i + 1 for i in range(m)]),
        ("tie-heavy", [(i % 2) + 1 for i in range(m)]),
        ("with-negatives", [(-1) ** i * (i + 1) for i in range(m)]),
        # Past the int64 scoring range: backends must route to an exact path.
        ("huge-keys", [(1 << 70) + (i % 3) for i in range(m)]),
    ]
    return patterns


def _tracker_cover_schedule(n: int, seed: int = 23) -> List[int]:
    """A deterministic sequence of cover masks (disjointness applied later)."""
    rng = RandomSource(seed)
    return [rng.randbits(n) for _ in range(5)] + [0]


def build_kernel(backend: str, universe_size: int, masks: Sequence[int], **kwargs) -> Kernel:
    """Build a raw (unmetered) kernel straight from the registry factory.

    ``kwargs`` passes backend-specific knobs through (``threads=``,
    ``chunk_rows=`` on the compiled backend); factories ignore what they
    don't take via their keyword signatures.
    """
    factory = kernel_registry()[backend]
    try:
        return factory(universe_size, list(masks), **kwargs)
    except TypeError:
        # Factory without the extra knobs (e.g. pure Python): build plain.
        return factory(universe_size, list(masks))


def assert_kernel_conformance(
    kernel: Kernel, universe_size: int, masks: Sequence[int]
) -> None:
    """Assert ``kernel`` is bit-identical to the PyInt reference everywhere.

    One call covers the entire :class:`~repro.kernels.base.Kernel` protocol:
    shape properties, single and batched gains, argmax tie-breaks,
    projections, frequencies, union, sizes, element unpacking (full and
    index-restricted), claim resolution under every key pattern, the
    stateful gain-tracker replay, and the ``prefers_tracker`` probe type.
    """
    reference = PyIntKernel(universe_size, list(masks))
    m = len(masks)
    label = f"{kernel.backend} (n={universe_size}, m={m})"

    assert kernel.universe_size == reference.universe_size, label
    assert kernel.num_sets == reference.num_sets, label
    assert kernel.union() == reference.union(), label
    assert kernel.set_sizes() == reference.set_sizes(), label
    assert kernel.element_frequencies() == reference.element_frequencies(), label
    assert kernel.element_lists() == reference.element_lists(), label
    if m:
        subset = list(range(0, m, 2))
        assert kernel.element_lists(subset) == reference.element_lists(subset), label
        assert kernel.element_lists([]) == reference.element_lists([]), label

    for query in query_masks(universe_size):
        assert kernel.gains(query) == reference.gains(query), (label, query)
        assert kernel.best_gain_index(query) == reference.best_gain_index(query), (
            label,
            query,
        )
        assert kernel.restrict(query) == reference.restrict(query), (label, query)
        for index in range(m):
            assert kernel.gain(index, query) == reference.gain(index, query), (
                label,
                index,
            )

    for pattern_name, keys in key_patterns(m):
        assert kernel.claim_resolution(keys) == reference.claim_resolution(keys), (
            label,
            pattern_name,
        )

    assert isinstance(kernel.prefers_tracker(), bool), label
    _assert_tracker_conformance(kernel, reference, universe_size)


def _assert_tracker_conformance(
    kernel: Kernel, reference: PyIntKernel, universe_size: int
) -> None:
    """Replay a cover schedule through both trackers, comparing every pick."""
    for start in (0, _universe(universe_size)):
        uncovered = start
        tracker = kernel.gain_tracker(uncovered)
        ref_tracker = reference.gain_tracker(uncovered)
        assert tracker.best() == ref_tracker.best(), kernel.backend
        for raw in _tracker_cover_schedule(universe_size):
            newly = raw & uncovered  # the disjoint-subset precondition
            tracker.cover(newly)
            ref_tracker.cover(newly)
            uncovered &= ~newly
            assert tracker.best() == ref_tracker.best(), kernel.backend
            # The tracker must also agree with a fresh batched argmax.
            assert tracker.best() == reference.best_gain_index(uncovered), (
                kernel.backend
            )


def assert_backend_conformance(backend: str, **kwargs) -> None:
    """Run the full shape grid for one registered backend."""
    for universe_size, masks in CONFORMANCE_CASES.values():
        kernel = build_kernel(backend, universe_size, masks, **kwargs)
        assert_kernel_conformance(kernel, universe_size, masks)
