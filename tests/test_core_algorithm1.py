"""Unit tests for Algorithm 1 (StreamingSetCover)."""

import pytest

from repro.core.algorithm1 import (
    AlgorithmOneConfig,
    StreamingSetCover,
    expected_pass_count,
    solution_size_bound,
    space_bound_words,
)
from repro.setcover.exact import exact_cover_value
from repro.setcover.verify import is_feasible_cover
from repro.streaming.engine import run_streaming_algorithm
from repro.streaming.stream import StreamOrder
from repro.workloads.random_instances import (
    disjoint_blocks_instance,
    plant_cover_instance,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        AlgorithmOneConfig()

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            AlgorithmOneConfig(alpha=0)

    def test_bad_opt_guess(self):
        with pytest.raises(ValueError):
            AlgorithmOneConfig(opt_guess=0)

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            AlgorithmOneConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            AlgorithmOneConfig(epsilon=1.5)

    def test_bad_solver(self):
        with pytest.raises(ValueError):
            AlgorithmOneConfig(subinstance_solver="magic")


class TestFeasibilityAndApproximation:
    @pytest.mark.parametrize("alpha", [1, 2, 3])
    def test_returns_feasible_cover(self, alpha, planted_instance):
        config = AlgorithmOneConfig(
            alpha=alpha, opt_guess=planted_instance.planted_opt, epsilon=0.5
        )
        algorithm = StreamingSetCover(config, seed=42)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert is_feasible_cover(planted_instance.system, result.solution)

    @pytest.mark.parametrize("alpha", [1, 2, 3])
    def test_solution_size_within_bound(self, alpha, planted_instance):
        opt = planted_instance.planted_opt
        config = AlgorithmOneConfig(alpha=alpha, opt_guess=opt, epsilon=0.5)
        algorithm = StreamingSetCover(config, seed=7)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        # Lemma 3.10 bound plus the (rare) clean-up pass slack.
        assert result.solution_size <= (alpha + 0.5) * opt + opt

    def test_exact_on_disjoint_blocks(self):
        instance = disjoint_blocks_instance(40, 4, seed=5)
        config = AlgorithmOneConfig(alpha=2, opt_guess=4, epsilon=0.5)
        algorithm = StreamingSetCover(config, seed=1)
        result = run_streaming_algorithm(algorithm, instance.system)
        # Every block is mandatory, so any feasible cover has exactly 4 sets.
        assert result.solution_size == 4

    def test_greedy_subsolver_also_feasible(self, planted_instance):
        config = AlgorithmOneConfig(
            alpha=2,
            opt_guess=planted_instance.planted_opt,
            subinstance_solver="greedy",
        )
        algorithm = StreamingSetCover(config, seed=3)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert is_feasible_cover(planted_instance.system, result.solution)

    def test_random_arrival_order(self, planted_instance):
        config = AlgorithmOneConfig(alpha=2, opt_guess=planted_instance.planted_opt)
        algorithm = StreamingSetCover(config, seed=8)
        result = run_streaming_algorithm(
            algorithm, planted_instance.system, order=StreamOrder.RANDOM, seed=8
        )
        assert is_feasible_cover(planted_instance.system, result.solution)


class TestPassAndSpaceAccounting:
    @pytest.mark.parametrize("alpha", [1, 2, 3])
    def test_pass_count_bound(self, alpha, planted_instance):
        config = AlgorithmOneConfig(alpha=alpha, opt_guess=planted_instance.planted_opt)
        algorithm = StreamingSetCover(config, seed=2)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert result.passes <= expected_pass_count(alpha, cleanup=True)

    def test_space_categories_present(self, planted_instance):
        config = AlgorithmOneConfig(alpha=2, opt_guess=planted_instance.planted_opt)
        algorithm = StreamingSetCover(config, seed=2)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        categories = result.space.peak_by_category
        assert "uncovered_universe" in categories
        assert categories["uncovered_universe"] == planted_instance.universe_size

    def test_metadata_records_samples(self, planted_instance):
        config = AlgorithmOneConfig(alpha=3, opt_guess=planted_instance.planted_opt)
        algorithm = StreamingSetCover(config, seed=2)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert len(result.metadata["sample_sizes"]) <= 3

    def test_larger_alpha_stores_fewer_projections(self):
        # Use a large universe with a reduced sampling constant so the rate is
        # below 1 and the n^{1/alpha} scaling is visible.
        instance = plant_cover_instance(2048, 30, 3, seed=10)
        stored = {}
        for alpha in (1, 3):
            config = AlgorithmOneConfig(
                alpha=alpha,
                opt_guess=3,
                epsilon=0.5,
                sampling_constant=1.0,
                subinstance_solver="greedy",
            )
            algorithm = StreamingSetCover(config, seed=4)
            result = run_streaming_algorithm(algorithm, instance.system)
            stored[alpha] = result.space.peak_by_category.get("stored_incidences", 0)
        assert stored[3] < stored[1]


class TestBoundFormulas:
    def test_expected_pass_count(self):
        assert expected_pass_count(1) == 3
        assert expected_pass_count(3) == 7
        assert expected_pass_count(2, cleanup=True) == 6

    def test_expected_pass_count_invalid(self):
        with pytest.raises(ValueError):
            expected_pass_count(0)

    def test_solution_size_bound(self):
        assert solution_size_bound(2, 0.5, 4) == 10.0

    def test_space_bound_monotone_in_n(self):
        small = space_bound_words(256, 50, 2, 0.5)
        large = space_bound_words(4096, 50, 2, 0.5)
        assert large > small

    def test_space_bound_decreasing_in_alpha(self):
        loose = space_bound_words(4096, 50, 1, 0.5)
        tight = space_bound_words(4096, 50, 4, 0.5)
        assert tight < loose


class TestOptGuessSensitivity:
    def test_underestimated_opt_still_feasible(self, planted_instance):
        config = AlgorithmOneConfig(alpha=2, opt_guess=1, epsilon=0.5)
        algorithm = StreamingSetCover(config, seed=6)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert is_feasible_cover(planted_instance.system, result.solution)

    def test_overestimated_opt_still_feasible(self, planted_instance):
        config = AlgorithmOneConfig(alpha=2, opt_guess=20, epsilon=0.5)
        algorithm = StreamingSetCover(config, seed=6)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert is_feasible_cover(planted_instance.system, result.solution)
        assert result.solution_size >= exact_cover_value(planted_instance.system)
