"""Unit tests for the concrete protocols (Disj, GHD, SetCover, MaxCover)."""

import pytest

from repro.communication.protocols.disjointness import (
    IntersectionProbeProtocol,
    TrivialDisjProtocol,
    correct_disjointness_answer,
    extract_inputs,
)
from repro.communication.protocols.ghd import TrivialGHDProtocol, correct_ghd_answer
from repro.communication.protocols.maxcover_protocol import (
    FullExchangeMaxCoverProtocol,
    SampledMaxCoverProtocol,
)
from repro.communication.protocols.setcover_protocol import (
    FullExchangeSetCoverProtocol,
    SetCoverInput,
    TwoPartyAlgorithmOneProtocol,
    merge_inputs,
)
from repro.problems.disjointness import sample_ddisj
from repro.problems.ghd import sample_dghd
from repro.setcover.exact import exact_cover_value
from repro.setcover.maxcover import exact_max_coverage
from repro.utils.bitset import bitset_from_iterable
from repro.utils.rng import RandomSource
from repro.workloads.random_instances import plant_cover_instance


def split_instance(system, seed=0):
    """Partition a system's sets into two SetCoverInput halves."""
    rng = RandomSource(seed)
    alice, bob = {}, {}
    for index in range(system.num_sets):
        target = alice if rng.bernoulli(0.5) else bob
        target[index] = system.mask(index)
    n = system.universe_size
    return SetCoverInput(n, alice), SetCoverInput(n, bob)


class TestDisjProtocols:
    def test_trivial_correct_on_samples(self):
        rng = RandomSource(1)
        protocol = TrivialDisjProtocol()
        for _ in range(30):
            instance = sample_ddisj(12, seed=rng.spawn())
            transcript = protocol.execute(*extract_inputs(instance))
            assert correct_disjointness_answer(instance, transcript.output)

    def test_probe_protocol_correct(self):
        rng = RandomSource(2)
        protocol = IntersectionProbeProtocol()
        for _ in range(10):
            instance = sample_ddisj(10, seed=rng.spawn())
            transcript = protocol.execute(instance.alice, instance.bob)
            assert correct_disjointness_answer(instance, transcript.output)
            assert transcript.rounds >= 3

    def test_cost_scales_with_set_size(self):
        protocol = TrivialDisjProtocol()
        small = protocol.execute(frozenset({1}), frozenset())
        large = protocol.execute(frozenset(range(64)), frozenset())
        assert large.total_bits > small.total_bits


class TestGHDProtocol:
    def test_correct_on_promise_instances(self):
        rng = RandomSource(3)
        protocol = TrivialGHDProtocol()
        for _ in range(20):
            instance = sample_dghd(30, seed=rng.spawn())
            transcript = protocol.execute(instance.alice, instance.bob)
            assert correct_ghd_answer(instance, transcript.output)


class TestSetCoverInputs:
    def test_merge_round_trip(self, planted_instance):
        alice, bob = split_instance(planted_instance.system, seed=4)
        merged, order = merge_inputs(alice, bob)
        assert merged.num_sets == planted_instance.num_sets
        assert sorted(order) == list(range(planted_instance.num_sets))

    def test_merge_rejects_duplicates(self):
        a = SetCoverInput(4, {0: 0b1})
        b = SetCoverInput(4, {0: 0b10})
        with pytest.raises(ValueError):
            merge_inputs(a, b)

    def test_merge_rejects_universe_mismatch(self):
        a = SetCoverInput(4, {0: 0b1})
        b = SetCoverInput(5, {1: 0b10})
        with pytest.raises(ValueError):
            merge_inputs(a, b)

    def test_as_system(self):
        payload = SetCoverInput(4, {3: 0b1010, 1: 0b0001})
        system = payload.as_system()
        assert system.num_sets == 2
        assert system.names == ["S1", "S3"]


class TestFullExchangeSetCover:
    def test_outputs_exact_opt(self, planted_instance):
        alice, bob = split_instance(planted_instance.system, seed=5)
        transcript = FullExchangeSetCoverProtocol(solver="exact").execute(alice, bob)
        assert transcript.output == exact_cover_value(planted_instance.system)

    def test_cost_close_to_input_size(self, planted_instance):
        alice, bob = split_instance(planted_instance.system, seed=5)
        transcript = FullExchangeSetCoverProtocol(solver="greedy").execute(alice, bob)
        # Alice ships all her incidences; the cost must be at least one bit per
        # incidence she holds.
        alice_incidences = sum(bin(mask).count("1") for mask in alice.sets.values())
        assert transcript.total_bits >= alice_incidences

    def test_invalid_solver(self):
        with pytest.raises(ValueError):
            FullExchangeSetCoverProtocol(solver="magic")


class TestTwoPartyAlgorithmOne:
    def test_estimates_close_to_opt(self, planted_instance):
        alice, bob = split_instance(planted_instance.system, seed=6)
        protocol = TwoPartyAlgorithmOneProtocol(
            alpha=2, opt_guess=planted_instance.planted_opt, seed=7
        )
        transcript = protocol.execute(alice, bob)
        opt = planted_instance.planted_opt
        assert opt <= transcript.output <= (2 + 0.5) * opt + opt

    def test_solution_in_metadata_covers_universe(self, planted_instance):
        alice, bob = split_instance(planted_instance.system, seed=6)
        protocol = TwoPartyAlgorithmOneProtocol(
            alpha=2, opt_guess=planted_instance.planted_opt, seed=7
        )
        transcript = protocol.execute(alice, bob)
        solution = transcript.metadata["solution"]
        assert planted_instance.system.covers_universe(solution)

    def test_cheaper_than_full_exchange_at_scale(self):
        instance = plant_cover_instance(2048, 30, 3, seed=11)
        alice, bob = split_instance(instance.system, seed=12)
        full = FullExchangeSetCoverProtocol(solver="greedy").execute(alice, bob)
        approx = TwoPartyAlgorithmOneProtocol(
            alpha=3,
            opt_guess=3,
            seed=13,
            subinstance_solver="greedy",
            sampling_constant=1.0,
        ).execute(alice, bob)
        assert approx.total_bits < full.total_bits

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TwoPartyAlgorithmOneProtocol(alpha=0, opt_guess=1)
        with pytest.raises(ValueError):
            TwoPartyAlgorithmOneProtocol(alpha=1, opt_guess=0)


class TestMaxCoverProtocols:
    def test_full_exchange_exact_value(self, planted_instance):
        alice, bob = split_instance(planted_instance.system, seed=8)
        transcript = FullExchangeMaxCoverProtocol(k=2, solver="exact").execute(alice, bob)
        _, opt = exact_max_coverage(planted_instance.system, 2)
        assert transcript.output == opt

    def test_sampled_estimate_reasonable(self, planted_instance):
        alice, bob = split_instance(planted_instance.system, seed=8)
        protocol = SampledMaxCoverProtocol(k=2, epsilon=0.3, seed=9)
        transcript = protocol.execute(alice, bob)
        _, opt = exact_max_coverage(planted_instance.system, 2)
        assert transcript.output == pytest.approx(opt, rel=0.6)

    def test_sampled_cheaper_for_coarse_epsilon(self, planted_instance):
        alice, bob = split_instance(planted_instance.system, seed=8)
        coarse = SampledMaxCoverProtocol(k=2, epsilon=0.6, seed=9).execute(alice, bob)
        fine = SampledMaxCoverProtocol(k=2, epsilon=0.15, seed=9).execute(alice, bob)
        assert coarse.total_bits <= fine.total_bits

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FullExchangeMaxCoverProtocol(k=0)
        with pytest.raises(ValueError):
            SampledMaxCoverProtocol(k=2, epsilon=1.5)
