"""Unit tests for the prior-work baseline streaming algorithms."""

import pytest

from repro.baselines.demaine import ProgressiveGreedyPasses
from repro.baselines.emek_rosen import EmekRosenSemiStreaming
from repro.baselines.full_storage import StoreEverythingMaxCover, StoreEverythingSetCover
from repro.baselines.har_peled import IterativePruningSetCover, har_peled_space_words
from repro.baselines.saha_getoor import SahaGetoorGreedy
from repro.setcover.maxcover import exact_max_coverage
from repro.setcover.verify import is_feasible_cover
from repro.streaming.engine import run_streaming_algorithm
from repro.workloads.random_instances import plant_cover_instance


class TestSahaGetoor:
    def test_single_pass_feasible(self, planted_instance):
        result = run_streaming_algorithm(SahaGetoorGreedy(), planted_instance.system)
        assert result.passes == 1
        assert is_feasible_cover(planted_instance.system, result.solution)

    def test_threshold_variant(self, planted_instance):
        algorithm = SahaGetoorGreedy(threshold_fraction=0.05)
        result = run_streaming_algorithm(
            algorithm, planted_instance.system, verify_solution=False
        )
        assert result.passes == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SahaGetoorGreedy(threshold_fraction=1.0)


class TestEmekRosen:
    def test_single_pass_feasible(self, planted_instance):
        result = run_streaming_algorithm(
            EmekRosenSemiStreaming(), planted_instance.system
        )
        assert result.passes == 1
        assert is_feasible_cover(planted_instance.system, result.solution)

    def test_space_is_linear_in_n(self, planted_instance):
        result = run_streaming_algorithm(
            EmekRosenSemiStreaming(), planted_instance.system
        )
        n = planted_instance.universe_size
        assert result.space.peak_by_category["per_element_state"] == 2 * n


class TestProgressiveGreedy:
    def test_feasible_given_enough_passes(self, planted_instance):
        algorithm = ProgressiveGreedyPasses(num_passes=5)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert is_feasible_cover(planted_instance.system, result.solution)
        assert result.passes <= 5

    def test_single_pass_equals_threshold_one(self, planted_instance):
        algorithm = ProgressiveGreedyPasses(num_passes=1)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert is_feasible_cover(planted_instance.system, result.solution)

    def test_invalid_passes(self):
        with pytest.raises(ValueError):
            ProgressiveGreedyPasses(num_passes=0)


class TestIterativePruning:
    def test_feasible(self, planted_instance):
        algorithm = IterativePruningSetCover(
            alpha=2, opt_guess=planted_instance.planted_opt, seed=2
        )
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert is_feasible_cover(planted_instance.system, result.solution)

    def test_stores_more_than_algorithm1_at_scale(self):
        from repro.core.algorithm1 import AlgorithmOneConfig, StreamingSetCover

        instance = plant_cover_instance(2048, 40, 3, seed=21)
        ours = StreamingSetCover(
            AlgorithmOneConfig(
                alpha=3, opt_guess=3, epsilon=0.5, sampling_constant=1.0,
                subinstance_solver="greedy",
            ),
            seed=5,
        )
        theirs = IterativePruningSetCover(
            alpha=3, opt_guess=3, epsilon=0.5, sampling_constant=1.0, seed=5
        )
        ours_result = run_streaming_algorithm(ours, instance.system)
        theirs_result = run_streaming_algorithm(theirs, instance.system)
        ours_stored = ours_result.space.peak_by_category.get("stored_incidences", 0)
        theirs_stored = theirs_result.space.peak_by_category.get("stored_incidences", 0)
        assert theirs_stored >= ours_stored

    def test_space_formula_monotone(self):
        assert har_peled_space_words(4096, 50, 2) > har_peled_space_words(1024, 50, 2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IterativePruningSetCover(alpha=0, opt_guess=1)
        with pytest.raises(ValueError):
            IterativePruningSetCover(alpha=1, opt_guess=0)


class TestStoreEverything:
    def test_setcover_single_pass_optimalish(self, planted_instance):
        algorithm = StoreEverythingSetCover(solver="exact")
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert result.passes == 1
        assert result.solution_size == planted_instance.planted_opt

    def test_setcover_space_is_input_size(self, planted_instance):
        algorithm = StoreEverythingSetCover()
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert (
            result.space.peak_by_category["stored_incidences"]
            == planted_instance.system.incidence_count()
        )

    def test_maxcover(self, planted_instance):
        algorithm = StoreEverythingMaxCover(k=2, solver="exact")
        result = run_streaming_algorithm(
            algorithm, planted_instance.system, verify_solution=False
        )
        _, opt = exact_max_coverage(planted_instance.system, 2)
        assert result.estimated_value == opt

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StoreEverythingSetCover(solver="none")
        with pytest.raises(ValueError):
            StoreEverythingMaxCover(k=0)
