"""Unit tests for the hierarchical seed-derivation protocol."""

from repro.runtime.seeding import (
    DEFAULT_ROOT_SEED,
    SeedStreams,
    repetition_seed,
    run_streams,
    scenario_seed,
    stream_seed,
)
from repro.utils.rng import derive_seed

import pytest


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_path_sensitive(self):
        seeds = {
            derive_seed(7),
            derive_seed(7, "a"),
            derive_seed(7, "b"),
            derive_seed(7, "a", 0),
            derive_seed(7, "a", 1),
            derive_seed(8, "a", 1),
        }
        assert len(seeds) == 6

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "stream", "x")
        assert 0 <= seed < 2 ** 64


class TestScenarioAndRepetitionSeeds:
    def test_explicit_root_passes_through(self):
        assert scenario_seed(42, "E1") == 42

    def test_unset_root_derives_from_name(self):
        assert scenario_seed(None, "E1") == derive_seed(
            DEFAULT_ROOT_SEED, "scenario", "E1"
        )
        assert scenario_seed(None, "E1") != scenario_seed(None, "E2")

    def test_repetition_seeds_distinct(self):
        seeds = [repetition_seed(42, rep) for rep in range(20)]
        assert len(set(seeds)) == 20

    def test_negative_repetition_rejected(self):
        with pytest.raises(ValueError):
            repetition_seed(42, -1)


class TestSeedStreams:
    def test_stream_is_cached(self):
        streams = SeedStreams(9)
        assert streams.stream("instance") is streams.stream("instance")

    def test_stream_isolation(self):
        """Extra draws on one named stream must not perturb another."""
        left = SeedStreams(9)
        left.stream("noise")  # created first, then drained heavily
        for _ in range(1000):
            left.stream("noise").random()
        left_values = [left.stream("signal").random() for _ in range(5)]

        right = SeedStreams(9)
        right_values = [right.stream("signal").random() for _ in range(5)]
        assert left_values == right_values

    def test_stream_order_independence(self):
        """The order streams are first requested does not change their seeds."""
        forward = SeedStreams(11)
        a_first = forward.stream("a").randint(0, 10 ** 9)
        b_second = forward.stream("b").randint(0, 10 ** 9)

        backward = SeedStreams(11)
        b_first = backward.stream("b").randint(0, 10 ** 9)
        a_second = backward.stream("a").randint(0, 10 ** 9)
        assert (a_first, b_second) == (a_second, b_first)

    def test_seed_for_matches_stream_seed(self):
        streams = SeedStreams(5)
        assert streams.seed_for("metrics") == stream_seed(5, "metrics")

    def test_names_sorted(self):
        streams = SeedStreams(1)
        streams.stream("b")
        streams.stream("a")
        assert streams.names() == ("a", "b")
        assert list(streams) == ["a", "b"]


class TestRunStreams:
    def test_repetitions_get_distinct_streams(self):
        rep0 = run_streams(None, "demo", repetition=0)
        rep1 = run_streams(None, "demo", repetition=1)
        assert rep0.base_seed != rep1.base_seed
        assert rep0.stream("x").random() != rep1.stream("x").random()

    def test_reproducible_across_managers(self):
        first = run_streams(77, "demo", repetition=3)
        second = run_streams(77, "demo", repetition=3)
        assert first.stream("x").random() == second.stream("x").random()
