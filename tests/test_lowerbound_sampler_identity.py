"""Bit-identity of the batched sampler stack against the per-draw loop path.

The lower-bound samplers draw all randomness as floats through
``random_batch`` / ``random_array`` (bit-identical by construction, see
``test_utils_rng``) and then transform them either vectorized (NumPy) or
with per-draw Python loops.  These tests pin the contract that the two
transforms agree **exactly** — instances, provenance, and post-call stream
position — across a seed × parameter grid.  They run meaningfully under
both kernel-backend CI legs and under ``REPRO_SAMPLER_BATCH=off`` (where
both sides take the loop path and the identity is trivial but the grid
still exercises the samplers).
"""

import pytest

from repro.lowerbound.dmc import DMCParameters, sample_dmc
from repro.lowerbound.dsc import DSCParameters, sample_dsc, sample_dsc_random_partition
from repro.lowerbound.mapping_extension import random_mapping_extension
from repro.problems.disjointness import (
    sample_ddisj,
    sample_ddisj_no,
    sample_ddisj_no_bulk,
    sample_ddisj_yes,
)
from repro.problems.ghd import sample_dghd_no, sample_dghd_yes
from repro.utils.rng import RandomSource, spawn_rng


@pytest.fixture
def loop_path(monkeypatch):
    """Force the per-draw loop transforms for one sampling call."""

    def sampler(func, *args, **kwargs):
        monkeypatch.setenv("REPRO_SAMPLER_BATCH", "off")
        try:
            return func(*args, **kwargs)
        finally:
            monkeypatch.delenv("REPRO_SAMPLER_BATCH", raising=False)

    return sampler


def dsc_fingerprint(instance):
    return (
        instance.theta,
        instance.special_index,
        tuple(instance.alice_sets),
        tuple(instance.bob_sets),
        tuple(instance.disjointness),
        tuple(instance.mappings),
    )


DSC_GRID = [
    dict(universe_size=48, num_pairs=2, alpha=1, t=1),
    dict(universe_size=64, num_pairs=3, alpha=2, t=4),
    dict(universe_size=257, num_pairs=5, alpha=2, t=7),
    dict(universe_size=300, num_pairs=4, alpha=2, t=24),
    dict(universe_size=900, num_pairs=8, alpha=3, t=5),
    # Above the random_array batching threshold (m·(t+1+n) >= 8192): the
    # only grid entries that exercise the vectorized chunk path rather than
    # the small-batch loop fallback.
    dict(universe_size=2048, num_pairs=8, alpha=2, t=8),
    dict(universe_size=2048, num_pairs=8, alpha=2, t=30),
]

SEEDS = (0, 1, 42, 2021)


class TestDSCIdentity:
    @pytest.mark.parametrize("config", DSC_GRID)
    def test_batched_equals_loop_over_seed_grid(self, config, loop_path):
        parameters = DSCParameters(**config)
        for seed in SEEDS:
            for theta in (None, 0, 1):
                batched = sample_dsc(parameters, seed=seed, theta=theta)
                looped = loop_path(sample_dsc, parameters, seed=seed, theta=theta)
                assert dsc_fingerprint(batched) == dsc_fingerprint(looped)
                assert batched == looped

    def test_stream_position_identical_after_sampling(self, loop_path):
        parameters = DSCParameters(universe_size=128, num_pairs=4, alpha=2, t=6)
        rng_a = RandomSource(7)
        sample_dsc(parameters, seed=rng_a, theta=1)
        rng_b = RandomSource(7)
        loop_path(sample_dsc, parameters, seed=rng_b, theta=1)
        assert rng_a.random() == rng_b.random()

    def test_random_partition_identity(self, loop_path):
        parameters = DSCParameters(universe_size=96, num_pairs=5, alpha=2)
        for seed in SEEDS:
            batched = sample_dsc_random_partition(parameters, seed=seed)
            looped = loop_path(sample_dsc_random_partition, parameters, seed=seed)
            assert batched[0] == looped[0]
            assert batched[3] == looped[3]

    def test_lazy_mappings_match_eager_extension(self):
        # A materialised lazy mapping is a full MappingExtension whose blocks
        # partition the universe.
        parameters = DSCParameters(universe_size=120, num_pairs=3, alpha=2, t=8)
        instance = sample_dsc(parameters, seed=11, theta=0)
        for mapping in instance.mappings:
            assert mapping.t == 8
            covered = set()
            for block in mapping.blocks:
                assert not covered & block
                covered |= block
            assert covered == set(range(120))


class TestDMCIdentity:
    # epsilon=0.1 puts the GHD attempt blocks (64 x 2·t1 floats) above the
    # batching threshold, exercising the vectorized gadget path.
    @pytest.mark.parametrize("epsilon", [0.35, 0.2, 0.15, 0.1])
    def test_batched_equals_loop_over_seed_grid(self, epsilon, loop_path):
        parameters = DMCParameters(num_pairs=4, epsilon=epsilon)
        for seed in SEEDS:
            for theta in (None, 0, 1):
                batched = sample_dmc(parameters, seed=seed, theta=theta)
                looped = loop_path(sample_dmc, parameters, seed=seed, theta=theta)
                assert batched == looped

    def test_ghd_gadgets_identical(self, loop_path):
        for seed in SEEDS:
            assert sample_dghd_no(40, seed=seed) == loop_path(
                sample_dghd_no, 40, seed=seed
            )
            assert sample_dghd_yes(40, seed=seed) == loop_path(
                sample_dghd_yes, 40, seed=seed
            )


class TestDisjointnessIdentity:
    # t=2000 puts the bulk draw (7·(t+1) floats) above the batching
    # threshold, exercising the vectorized bulk path.
    @pytest.mark.parametrize("t", [1, 5, 64, 500, 2000])
    def test_bulk_equals_sequential_and_loop(self, t, loop_path):
        for seed in (0, 3, 17):
            bulk = sample_ddisj_no_bulk(t, 7, seed=seed)
            rng = spawn_rng(seed)
            sequential = [sample_ddisj_no(t, seed=rng) for _ in range(7)]
            assert bulk == sequential

            def run_loop():
                loop_rng = spawn_rng(seed)
                return [sample_ddisj_no(t, seed=loop_rng) for _ in range(7)]

            assert bulk == loop_path(run_loop)

    def test_single_samplers_identical(self, loop_path):
        for seed in SEEDS:
            assert sample_ddisj(80, seed=seed) == loop_path(sample_ddisj, 80, seed=seed)
            assert sample_ddisj_yes(80, seed=seed) == loop_path(
                sample_ddisj_yes, 80, seed=seed
            )


class TestMappingExtensionIdentity:
    def test_random_mapping_extension_identical(self, loop_path):
        for seed in SEEDS:
            for n, t in ((60, 4), (100, 7), (256, 16)):
                assert random_mapping_extension(n, t, seed=seed) == loop_path(
                    random_mapping_extension, n, t, seed=seed
                )
