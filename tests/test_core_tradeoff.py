"""Unit tests for the tradeoff bound formulas and power-law fitting."""

import math

import pytest

from repro.core.tradeoff import (
    PowerLawFit,
    demaine_space_bound,
    dsc_parameter_t,
    dsc_parameter_t_unscaled,
    exact_solution_lower_bound,
    fit_power_law,
    har_peled_space_bound,
    nisan_lower_bound,
    theorem1_space_lower_bound,
    theorem2_pass_count,
    theorem2_space_upper_bound,
    theorem4_maxcover_space_lower_bound,
    tradeoff_table,
)


class TestBoundFormulas:
    def test_theorem1_alpha_one_is_linear(self):
        assert theorem1_space_lower_bound(1000, 50, 1) == pytest.approx(50 * 1000)

    def test_theorem1_decreases_with_alpha(self):
        values = [theorem1_space_lower_bound(4096, 100, a) for a in (1, 2, 4)]
        assert values == sorted(values, reverse=True)

    def test_theorem1_decreases_with_passes(self):
        one = theorem1_space_lower_bound(1024, 10, 2, passes=1)
        four = theorem1_space_lower_bound(1024, 10, 2, passes=4)
        assert four == pytest.approx(one / 4)

    def test_theorem2_upper_bound_above_lower_bound(self):
        for alpha in (1, 2, 3, 4):
            lower = theorem1_space_lower_bound(4096, 100, alpha)
            upper = theorem2_space_upper_bound(4096, 100, alpha, 0.5)
            assert upper >= lower

    def test_theorem2_pass_count(self):
        assert theorem2_pass_count(1) == 3
        assert theorem2_pass_count(5) == 11

    def test_theorem4_epsilon_scaling(self):
        half = theorem4_maxcover_space_lower_bound(100, 0.5)
        quarter = theorem4_maxcover_space_lower_bound(100, 0.25)
        assert quarter == pytest.approx(4 * half)

    def test_nisan_and_exact_bounds(self):
        assert nisan_lower_bound(100, 2) == 50
        assert exact_solution_lower_bound(100, 10, 2) == 500

    def test_har_peled_weaker_than_algorithm1(self):
        # The iterative-pruning bound has a larger exponent, so it is larger
        # for alpha >= 3 at big n.
        ours = theorem1_space_lower_bound(2 ** 20, 100, 4)
        theirs = har_peled_space_bound(2 ** 20, 100, 4)
        assert theirs > ours

    def test_demaine_exponent(self):
        assert demaine_space_bound(2 ** 16, 10, 2) == pytest.approx(10 * 2 ** 16)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            theorem1_space_lower_bound(10, 10, 0)
        with pytest.raises(ValueError):
            theorem2_space_upper_bound(10, 10, 1, 0.0)
        with pytest.raises(ValueError):
            theorem2_pass_count(0)
        with pytest.raises(ValueError):
            theorem4_maxcover_space_lower_bound(10, 2.0)


class TestDscParameter:
    def test_unscaled_value(self):
        value = dsc_parameter_t_unscaled(1024, 100, 2)
        assert value == pytest.approx((1024 / math.log(100)) ** 0.5)

    def test_scaled_at_least_one(self):
        assert dsc_parameter_t(1024, 100, 2) >= 1

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            dsc_parameter_t(1024, 100, 0)


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [3 * x ** 0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.constant == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = PowerLawFit(exponent=2.0, log_constant=0.0, r_squared=1.0)
        assert fit.predict(3.0) == pytest.approx(9.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 1.0], [1.0, 2.0])


class TestTradeoffTable:
    def test_rows_per_alpha(self):
        rows = tradeoff_table(1024, 100, [1, 2, 3])
        assert len(rows) == 3
        assert [row[0] for row in rows] == [1, 2, 3]
        assert all(row[2] >= row[1] for row in rows)
