"""Unit tests for the D_SC / D_MC property verifiers."""

import pytest

from repro.lowerbound.dmc import DMCParameters, sample_dmc
from repro.lowerbound.dsc import DSCParameters, sample_dsc
from repro.lowerbound.properties import (
    check_remark_3_1,
    claim_4_4_bounds,
    dmc_value_gap,
    dsc_opt_gap,
    good_index_fraction,
    good_indices,
    singleton_collection_coverage,
)


@pytest.fixture
def dsc_params():
    return DSCParameters(universe_size=150, num_pairs=5, alpha=2, t=6)


@pytest.fixture
def dmc_params():
    return DMCParameters(num_pairs=3, epsilon=0.4)


class TestDscOptGap:
    def test_theta_one_opt_two(self, dsc_params):
        instance = sample_dsc(dsc_params, seed=1, theta=1)
        verdict = dsc_opt_gap(instance)
        assert verdict["opt"] <= 2
        assert verdict["respects_gap"]
        assert verdict["respects_weak_gap"]

    def test_theta_zero_weak_gap(self, dsc_params):
        instance = sample_dsc(dsc_params, seed=2, theta=0)
        verdict = dsc_opt_gap(instance)
        assert verdict["opt"] > 2
        assert verdict["respects_weak_gap"]

    def test_solution_is_reported(self, dsc_params):
        instance = sample_dsc(dsc_params, seed=3, theta=1)
        verdict = dsc_opt_gap(instance)
        assert len(verdict["solution"]) == verdict["opt"]

    def test_alpha_override(self, dsc_params):
        instance = sample_dsc(dsc_params, seed=4, theta=0)
        verdict = dsc_opt_gap(instance, alpha=1)
        assert verdict["alpha"] == 1


class TestRemarkChecks:
    def test_all_checks_named(self, dsc_params):
        instance = sample_dsc(dsc_params, seed=5, theta=0)
        checks = check_remark_3_1(instance)
        assert len(checks) == 3
        assert all(check.name for check in checks)

    def test_theta_one_extra_check(self, dsc_params):
        instance = sample_dsc(dsc_params, seed=6, theta=1)
        names = [check.name for check in check_remark_3_1(instance)]
        assert any("θ=1" in name for name in names)


class TestSingletonCoverage:
    def test_singletons_do_not_cover_universe(self, dsc_params):
        instance = sample_dsc(dsc_params, seed=7, theta=0)
        covered = singleton_collection_coverage(instance, size=3)
        assert covered < instance.universe_size

    def test_zero_size(self, dsc_params):
        instance = sample_dsc(dsc_params, seed=8, theta=0)
        assert singleton_collection_coverage(instance, size=0) == 0


class TestDmcProperties:
    def test_value_gap_both_thetas(self, dmc_params):
        for theta in (0, 1):
            instance = sample_dmc(dmc_params, seed=9 + theta, theta=theta)
            verdict = dmc_value_gap(instance)
            assert verdict["on_correct_side"]

    def test_best_two_cover_is_matched_pair(self, dmc_params):
        instance = sample_dmc(dmc_params, seed=11, theta=1)
        verdict = dmc_value_gap(instance)
        assert verdict["is_matched_pair"]

    def test_claim_4_4_keys(self, dmc_params):
        instance = sample_dmc(dmc_params, seed=12)
        claims = claim_4_4_bounds(instance)
        assert set(claims) == {
            "matched_pairs_cover_u2",
            "mixed_pairs_below_bound",
            "mixed_bound",
            "worst_mixed_coverage",
        }


class TestGoodIndices:
    def test_counts_split_pairs_only(self):
        assignment = {0: "alice", 1: "alice", 2: "alice", 3: "bob", 4: "bob", 5: "alice"}
        # Pairs: (0,3), (1,4), (2,5) with m = 3.
        good = good_indices(assignment, 3)
        assert good == [0, 1]
        assert good_index_fraction(assignment, 3) == pytest.approx(2 / 3)

    def test_empty(self):
        assert good_indices({}, 0) == []
        assert good_index_fraction({}, 0) == 0.0
