"""Unit tests for the exact entropy / mutual information computations."""

import math

import pytest

from repro.infotheory.distributions import JointDistribution
from repro.infotheory.entropy import (
    conditional_entropy,
    conditional_mutual_information,
    entropy,
    mutual_information,
)
from repro.infotheory.estimators import (
    plugin_entropy,
    plugin_mutual_information,
)


@pytest.fixture
def fair_coin_pair():
    """Independent fair bits A and B."""
    pmf = {(a, b): 0.25 for a in (0, 1) for b in (0, 1)}
    return JointDistribution(["A", "B"], pmf)


@pytest.fixture
def copied_bit():
    """A fair bit A with B = A."""
    return JointDistribution(["A", "B"], {(0, 0): 0.5, (1, 1): 0.5})


class TestEntropy:
    def test_fair_coin_entropy(self, fair_coin_pair):
        assert entropy(fair_coin_pair, ["A"]) == pytest.approx(1.0)

    def test_joint_entropy_of_independent(self, fair_coin_pair):
        assert entropy(fair_coin_pair, ["A", "B"]) == pytest.approx(2.0)

    def test_deterministic_variable_zero_entropy(self):
        joint = JointDistribution(["X"], {(7,): 1.0})
        assert entropy(joint, ["X"]) == pytest.approx(0.0)

    def test_biased_coin(self):
        joint = JointDistribution(["X"], {(0,): 0.9, (1,): 0.1})
        expected = -(0.9 * math.log2(0.9) + 0.1 * math.log2(0.1))
        assert entropy(joint, ["X"]) == pytest.approx(expected)


class TestConditionalEntropy:
    def test_independent_conditioning_no_effect(self, fair_coin_pair):
        assert conditional_entropy(fair_coin_pair, ["A"], ["B"]) == pytest.approx(1.0)

    def test_copy_conditioning_removes_entropy(self, copied_bit):
        assert conditional_entropy(copied_bit, ["A"], ["B"]) == pytest.approx(0.0)

    def test_empty_conditioning(self, fair_coin_pair):
        assert conditional_entropy(fair_coin_pair, ["A"], []) == pytest.approx(1.0)


class TestMutualInformation:
    def test_independent_zero(self, fair_coin_pair):
        assert mutual_information(fair_coin_pair, ["A"], ["B"]) == pytest.approx(0.0)

    def test_copy_full_bit(self, copied_bit):
        assert mutual_information(copied_bit, ["A"], ["B"]) == pytest.approx(1.0)

    def test_symmetry(self):
        pmf = {
            (0, 0): 0.4,
            (0, 1): 0.1,
            (1, 0): 0.2,
            (1, 1): 0.3,
        }
        joint = JointDistribution(["A", "B"], pmf)
        assert mutual_information(joint, ["A"], ["B"]) == pytest.approx(
            mutual_information(joint, ["B"], ["A"])
        )


class TestConditionalMutualInformation:
    def test_xor_structure(self):
        # C = A xor B with independent fair A, B: I(A:B) = 0 but I(A:B|C) = 1.
        pmf = {(a, b, a ^ b): 0.25 for a in (0, 1) for b in (0, 1)}
        joint = JointDistribution(["A", "B", "C"], pmf)
        assert mutual_information(joint, ["A"], ["B"]) == pytest.approx(0.0)
        assert conditional_mutual_information(joint, ["A"], ["B"], ["C"]) == pytest.approx(1.0)

    def test_never_negative(self):
        pmf = {
            (0, 0, 0): 0.3,
            (0, 1, 1): 0.2,
            (1, 0, 1): 0.25,
            (1, 1, 0): 0.25,
        }
        joint = JointDistribution(["A", "B", "C"], pmf)
        assert conditional_mutual_information(joint, ["A"], ["B"], ["C"]) >= 0.0


class TestPluginEstimators:
    def test_plugin_entropy_matches_exact_for_balanced_sample(self):
        samples = [0] * 500 + [1] * 500
        assert plugin_entropy(samples) == pytest.approx(1.0)

    def test_plugin_mi_detects_copy(self):
        samples = [(x, x) for x in (0, 1)] * 200
        assert plugin_mutual_information(samples) == pytest.approx(1.0)

    def test_plugin_mi_near_zero_for_independent(self):
        import random

        rng = random.Random(5)
        samples = [(rng.randint(0, 1), rng.randint(0, 1)) for _ in range(2000)]
        assert plugin_mutual_information(samples) < 0.02
