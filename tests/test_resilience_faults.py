"""Tests for deterministic fault injection (repro.resilience.faults)."""

from __future__ import annotations

import pytest

from repro.exceptions import InjectedFaultError
from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultRule,
    active_plan,
    attempt_scope,
    current_attempt,
    fault_plan_active,
    faults_enabled,
    inject,
    install_plan,
    parse_fault_spec,
)
from repro.telemetry.session import TelemetrySession


class TestFaultRule:
    def test_defaults(self):
        rule = FaultRule(site="store.put", kind="torn")
        assert rule.rate == 1.0
        assert rule.until == 1

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="nope", kind="raise")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(site="store.put", kind="explode")

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule(site="store.put", kind="torn", rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultRule(site="store.put", kind="torn", rate=-0.1)

    def test_until_must_be_positive(self):
        with pytest.raises(ValueError, match="until"):
            FaultRule(site="store.put", kind="torn", until=0)


class TestSpecParsing:
    def test_round_trip(self):
        spec = "seed=7,hang=2,executor.submit:crash:0.25:2,store.put:torn:0.5:1"
        plan = parse_fault_spec(spec)
        assert plan.seed == 7
        assert plan.hang_s == 2.0
        assert parse_fault_spec(plan.spec()) == plan

    def test_rate_and_until_default(self):
        plan = parse_fault_spec("engine.pass:raise")
        assert plan.rules == (FaultRule("engine.pass", "raise", 1.0, 1),)

    def test_bad_clause_rejected(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            parse_fault_spec("store.put")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan option"):
            parse_fault_spec("speed=3")

    def test_empty_clauses_skipped(self):
        plan = parse_fault_spec("seed=1,,engine.pass:raise,")
        assert len(plan.rules) == 1


class TestDecide:
    def test_pure_function_of_inputs(self):
        plan = parse_fault_spec("seed=3,executor.submit:crash:0.5")
        first = [plan.decide("executor.submit", f"T{i}", 0) for i in range(64)]
        second = [plan.decide("executor.submit", f"T{i}", 0) for i in range(64)]
        assert first == second
        # A half rate fires on some keys and not others.
        assert any(kind == "crash" for kind in first)
        assert any(kind is None for kind in first)

    def test_rate_one_always_fires_rate_zero_never(self):
        plan = FaultPlan(
            seed=1,
            rules=(
                FaultRule("store.put", "torn", rate=1.0),
                FaultRule("engine.pass", "raise", rate=0.0),
            ),
        )
        assert all(plan.decide("store.put", f"k{i}", 0) == "torn" for i in range(16))
        assert all(plan.decide("engine.pass", f"k{i}", 0) is None for i in range(16))

    def test_until_bounds_attempts(self):
        plan = parse_fault_spec("executor.submit:raise:1:2")
        assert plan.decide("executor.submit", "T", 0) == "raise"
        assert plan.decide("executor.submit", "T", 1) == "raise"
        assert plan.decide("executor.submit", "T", 2) is None

    def test_unmatched_site_is_none(self):
        plan = parse_fault_spec("store.put:torn")
        assert plan.decide("transport.attach", "seg", 0) is None

    def test_different_seeds_differ(self):
        decisions = {
            seed: tuple(
                parse_fault_spec(f"seed={seed},executor.submit:crash:0.5").decide(
                    "executor.submit", f"T{i}", 0
                )
                for i in range(64)
            )
            for seed in (1, 2)
        }
        assert decisions[1] != decisions[2]


class TestActivation:
    def test_env_activates_and_caches(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert not faults_enabled()
        monkeypatch.setenv(FAULTS_ENV_VAR, "seed=5,store.put:torn:0.5")
        plan = active_plan()
        assert plan is not None and plan.seed == 5
        # Same spec string: the cached plan object is reused.
        assert active_plan() is plan
        monkeypatch.setenv(FAULTS_ENV_VAR, "seed=6,store.put:torn:0.5")
        assert active_plan().seed == 6
        monkeypatch.delenv(FAULTS_ENV_VAR)
        assert not faults_enabled()

    def test_install_plan_none_beats_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "seed=5,engine.pass:raise")
        assert faults_enabled()
        with fault_plan_active(None):
            assert not faults_enabled()
            assert inject("engine.pass", key="p1") is None
        assert faults_enabled()

    def test_install_plan_restore(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        restore = install_plan(parse_fault_spec("seed=1,engine.pass:raise"))
        try:
            assert faults_enabled()
        finally:
            restore()
        assert not faults_enabled()


class TestInject:
    def test_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert inject("executor.submit", key="T") is None

    def test_raise_kind_raises_transient(self):
        with fault_plan_active(parse_fault_spec("seed=1,engine.pass:raise")):
            with pytest.raises(InjectedFaultError) as info:
                inject("engine.pass", key="pass:1")
        assert info.value.site == "engine.pass"
        assert info.value.kind == "raise"

    def test_crash_degrades_to_raise_outside_worker(self):
        # os._exit would kill the test process; outside a pool worker the
        # crash kind must degrade to a recoverable transient raise.
        with fault_plan_active(parse_fault_spec("seed=1,executor.submit:crash")):
            with pytest.raises(InjectedFaultError) as info:
                inject("executor.submit", key="T")
        assert info.value.kind == "crash"

    def test_data_kinds_returned_to_caller(self):
        with fault_plan_active(parse_fault_spec("seed=1,store.put:torn")):
            assert inject("store.put", key="fp") == "torn"
        with fault_plan_active(parse_fault_spec("seed=1,executor.submit:corrupt")):
            assert inject("executor.submit", key="T") == "corrupt"

    def test_hang_sleeps_then_raises(self):
        plan = parse_fault_spec("seed=1,hang=0.01,executor.submit:hang")
        with fault_plan_active(plan):
            with pytest.raises(InjectedFaultError) as info:
                inject("executor.submit", key="T")
        assert info.value.kind == "hang"

    def test_injections_are_counted(self):
        with fault_plan_active(parse_fault_spec("seed=1,engine.pass:raise")):
            with TelemetrySession(label="test") as session:
                with pytest.raises(InjectedFaultError):
                    inject("engine.pass", key="p")
            counters = session.registry.snapshot()["counters"]
        assert counters["fault.injected"] == 1
        assert counters["fault.injected.engine.pass.raise"] == 1


class TestAttemptScope:
    def test_default_attempt_is_zero(self):
        assert current_attempt() == 0

    def test_scope_sets_and_restores(self):
        with attempt_scope(3):
            assert current_attempt() == 3
            with attempt_scope(5):
                assert current_attempt() == 5
            assert current_attempt() == 3
        assert current_attempt() == 0

    def test_inject_reads_ambient_attempt(self):
        # until=1: fires at attempt 0, cleared at ambient attempt 1.
        with fault_plan_active(parse_fault_spec("seed=1,engine.pass:raise:1:1")):
            with attempt_scope(1):
                assert inject("engine.pass", key="p") is None
            with pytest.raises(InjectedFaultError):
                inject("engine.pass", key="p")
