"""Unit tests for experiment result serialisation and markdown reporting."""

import json

import pytest

from repro.experiments.harness import ExperimentResult
from repro.experiments.report import (
    load_results_json,
    render_markdown_report,
    result_from_dict,
    result_to_dict,
    save_markdown_report,
    save_results_json,
)
from repro.utils.tables import Table


@pytest.fixture
def sample_result():
    table = Table(["n", "space"], title="demo table")
    table.add_row(128, 1024)
    table.add_row(256, 1500)
    return ExperimentResult(
        experiment_id="E1",
        title="demo experiment",
        table=table,
        findings={"exponent": 0.5, "ok": True, "note": "fine", "inf_value": float("inf")},
    )


class TestRoundTrip:
    def test_dict_round_trip(self, sample_result):
        payload = result_to_dict(sample_result)
        rebuilt = result_from_dict(payload)
        assert rebuilt.experiment_id == "E1"
        assert rebuilt.table.rows == sample_result.table.rows
        assert rebuilt.findings["exponent"] == 0.5

    def test_dict_is_json_serialisable(self, sample_result):
        payload = result_to_dict(sample_result)
        text = json.dumps(payload)
        assert "demo experiment" in text

    def test_infinite_findings_become_strings(self, sample_result):
        payload = result_to_dict(sample_result)
        assert payload["findings"]["inf_value"] == "inf"

    def test_json_file_round_trip(self, sample_result, tmp_path):
        path = save_results_json([sample_result], tmp_path / "results.json")
        loaded = load_results_json(path)
        assert len(loaded) == 1
        assert loaded[0].title == "demo experiment"


class TestMarkdown:
    def test_render_contains_table_and_findings(self, sample_result):
        text = render_markdown_report([sample_result], title="Report")
        assert "# Report" in text
        assert "## E1 — demo experiment" in text
        assert "`exponent` = 0.5" in text
        assert "demo table" in text

    def test_save_markdown(self, sample_result, tmp_path):
        path = save_markdown_report([sample_result], tmp_path / "report.md")
        assert path.read_text().startswith("## E1")
