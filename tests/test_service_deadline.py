"""Deadline propagation: the ambient token, check sites, engine integration."""

from __future__ import annotations

import pytest

from repro.exceptions import DeadlineExceededError, ReproError, TransientTaskError
from repro.service.deadline import (
    Deadline,
    check_deadline,
    clock,
    current_deadline,
    deadline_scope,
    remaining_budget,
)
from repro.streaming.stream import SetStream
from repro.workloads.random_instances import random_set_system

EXPIRED = Deadline(expires_at=clock() - 1.0)


def _system():
    return random_set_system(24, 12, density=0.2, seed=3)


class TestDeadlineValue:
    def test_after_positions_in_the_future(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert 0.0 < deadline.remaining() <= 60.0

    def test_expired_deadline_goes_negative_but_budget_clamps(self):
        assert EXPIRED.expired
        assert EXPIRED.remaining() < 0.0  # raw remaining is signed...
        with deadline_scope(EXPIRED):
            assert remaining_budget() == 0.0  # ...the shippable budget is not


class TestAmbientToken:
    def test_no_deadline_by_default(self):
        assert current_deadline() is None
        check_deadline()  # must be a no-op, not a raise
        assert remaining_budget(7.5) == 7.5

    def test_scope_sets_and_resets(self):
        deadline = Deadline.after(60.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            assert remaining_budget(999.0) < 61.0
        assert current_deadline() is None

    def test_scope_resets_after_exception(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(Deadline.after(60.0)):
                raise RuntimeError("boom")
        assert current_deadline() is None

    def test_check_raises_with_positive_overrun(self):
        with deadline_scope(EXPIRED):
            with pytest.raises(DeadlineExceededError) as excinfo:
                check_deadline()
        assert excinfo.value.overrun > 0.0

    def test_deadline_error_is_not_transient(self):
        # Retrying an expired request can never help; the error must not be
        # caught by the transient-retry machinery.
        assert issubclass(DeadlineExceededError, ReproError)
        assert not issubclass(DeadlineExceededError, TransientTaskError)


class TestStreamIntegration:
    def test_pass_grants_are_cancellation_points(self):
        stream = SetStream(_system())
        with deadline_scope(EXPIRED):
            with pytest.raises(DeadlineExceededError):
                stream.batched_pass()
            with pytest.raises(DeadlineExceededError):
                next(stream.iterate_pass())
        # No pass was charged for either refused grant.
        assert stream.passes_consumed == 0

    def test_streams_flow_freely_without_a_deadline(self):
        stream = SetStream(_system())
        stream.batched_pass()
        list(stream.iterate_pass())
        assert stream.passes_consumed == 2

    def test_engine_refuses_expired_runs(self):
        from repro.core.value_estimation import SetCoverValueEstimator
        from repro.streaming.engine import run_streaming_algorithm

        system = _system()
        with deadline_scope(EXPIRED):
            with pytest.raises(DeadlineExceededError):
                run_streaming_algorithm(
                    SetCoverValueEstimator(alpha=2, seed=0),
                    system,
                    verify_solution=False,
                )

    def test_engine_completes_under_roomy_deadline(self):
        from repro.core.value_estimation import SetCoverValueEstimator
        from repro.streaming.engine import run_streaming_algorithm

        system = _system()
        with deadline_scope(Deadline.after(120.0)):
            result = run_streaming_algorithm(
                SetCoverValueEstimator(alpha=2, seed=0),
                system,
                verify_solution=False,
            )
        clean = run_streaming_algorithm(
            SetCoverValueEstimator(alpha=2, seed=0), system, verify_solution=False
        )
        # A deadline that never fires must not perturb the computation.
        assert result.estimated_value == clean.estimated_value
        assert result.passes == clean.passes
