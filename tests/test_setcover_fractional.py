"""Unit tests for the fractional / counting lower bounds."""

import pytest

from repro.setcover.exact import exact_cover_value
from repro.setcover.fractional import (
    counting_lower_bound,
    fractional_greedy_lower_bound,
    lp_relaxation_value,
)
from repro.setcover.instance import SetSystem


class TestCountingLowerBound:
    def test_simple_bound(self, tiny_system):
        # Largest set has 4 elements and the universe has 6: bound is 2.
        assert counting_lower_bound(tiny_system) == 2

    def test_bound_never_exceeds_opt(self, planted_instance):
        bound = counting_lower_bound(planted_instance.system)
        assert bound <= exact_cover_value(planted_instance.system)

    def test_empty_target(self, tiny_system):
        assert counting_lower_bound(tiny_system, target_mask=0) == 0

    def test_uncoverable_target_rejected(self):
        system = SetSystem(3, [[0]])
        with pytest.raises(ValueError):
            counting_lower_bound(system)


class TestFractionalGreedyLowerBound:
    def test_matches_counting_shape(self, tiny_system):
        assert fractional_greedy_lower_bound(tiny_system) == pytest.approx(6 / 4)

    def test_empty_universe(self):
        assert fractional_greedy_lower_bound(SetSystem(0, [])) == 0.0

    def test_no_sets_is_infinite(self):
        assert fractional_greedy_lower_bound(SetSystem(3, [[]])) == float("inf")


class TestLpRelaxation:
    def test_lower_bounds_integral_opt_up_to_tolerance(self, tiny_system):
        value = lp_relaxation_value(tiny_system)
        # The MWU scheme converges approximately; it must be positive and not
        # wildly exceed opt.
        assert 0 < value <= exact_cover_value(tiny_system) + 1.0

    def test_uncoverable_is_infinite(self):
        assert lp_relaxation_value(SetSystem(2, [[0]])) == float("inf")

    def test_empty_universe(self):
        assert lp_relaxation_value(SetSystem(0, [])) == 0.0
