"""Unit tests for the content-addressed result store."""

import json

from repro.runtime.scenarios import freeze_params
from repro.runtime.store import STORE_FORMAT_VERSION, ResultStore, task_fingerprint
from repro.runtime.tasks import RuntimeTask, execute_task


def tiny_task(seed=5, key="E12"):
    return RuntimeTask(key=key, runner="E12", params=freeze_params({"t": 2}), seed=seed)


class TestFingerprint:
    def test_stable(self):
        assert task_fingerprint(tiny_task()) == task_fingerprint(tiny_task())

    def test_input_sensitive(self):
        base = task_fingerprint(tiny_task(seed=5))
        assert task_fingerprint(tiny_task(seed=6)) != base
        other_params = RuntimeTask(
            key="E12", runner="E12", params=freeze_params({"t": 3}), seed=5
        )
        assert task_fingerprint(other_params) != base

    def test_key_excluded_from_identity(self):
        """The same computation under two scenario names shares a cache slot."""
        assert task_fingerprint(tiny_task(key="a")) == task_fingerprint(
            tiny_task(key="b")
        )


class TestStoreRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        task = tiny_task()
        assert store.get(task) is None
        assert store.misses == 1

        payload = execute_task(task)
        store.put(task, payload)
        assert task in store
        assert store.get(task) == payload
        assert store.hits == 1
        assert len(store) == 1

    def test_different_seed_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(tiny_task(seed=5), execute_task(tiny_task(seed=5)))
        assert store.get(tiny_task(seed=6)) is None

    def test_entries_sharded_by_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        task = tiny_task()
        path = store.put(task, {"experiment_id": "E12"})
        fingerprint = task_fingerprint(task)
        assert path.parent.name == fingerprint[:2]
        assert path.name == f"{fingerprint}.json"

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(tiny_task(), {"experiment_id": "E12"})
        assert store.clear() == 1
        assert len(store) == 0


class TestInvalidation:
    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        task = tiny_task()
        path = store.put(task, {"experiment_id": "E12"})
        path.write_text("{not json")
        assert store.get(task) is None

    def test_fingerprint_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        task = tiny_task()
        path = store.put(task, {"experiment_id": "E12"})
        entry = json.loads(path.read_text())
        entry["fingerprint"] = "0" * 64
        path.write_text(json.dumps(entry))
        assert store.get(task) is None

    def test_format_version_bump_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)
        task = tiny_task()
        path = store.put(task, {"experiment_id": "E12"})
        entry = json.loads(path.read_text())
        entry["format"] = STORE_FORMAT_VERSION + 1
        path.write_text(json.dumps(entry))
        assert store.get(task) is None
        # __contains__ must agree with get() on invalid entries.
        assert task not in store

    def test_recompute_overwrites_corrupt_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        task = tiny_task()
        path = store.put(task, execute_task(task))
        path.write_text("garbage")
        assert store.get(task) is None
        payload = execute_task(task)
        store.put(task, payload)
        assert store.get(task) == payload
