"""Benchmark-baseline parsing tests (the committed BENCH_*.json schemas)."""

import json

from repro.analysis.bench import (
    BenchTrajectory,
    _trajectory_from_payload,
    load_bench_trajectories,
)

KERNELS = {
    "schema": "bench_kernels/v1",
    "grid": [
        {"n": 256, "m": 512, "greedy": {"speedup_numpy": 4.9, "speedup_python": 1.1}},
        {"n": 512, "m": 1024, "greedy": {"speedup_python": 1.2}},
    ],
}
STREAMING = {
    "schema": "bench_streaming/v1",
    "grid": [{"n": 512, "m": 1024, "e11_sweep": {"speedup_numpy": 5.4}}],
}
LOWERBOUND = {
    "schema": "bench_lowerbound/v1",
    "grid": [
        {"kind": "dsc", "t": 1024, "speedup_batched": 6.5},
        {"kind": "dmc", "speedup_batched": 1.6},
    ],
}


class TestSchemaParsing:
    def test_kernels_schema(self):
        trajectory = _trajectory_from_payload("BENCH_kernels.json", KERNELS)
        assert trajectory.name == "kernels"
        assert [(e.label, e.speedup) for e in trajectory.entries] == [
            ("256x512", 4.9),
            ("512x1024", 1.2),
        ]
        assert trajectory.best == 4.9

    def test_streaming_schema(self):
        trajectory = _trajectory_from_payload("BENCH_streaming.json", STREAMING)
        assert trajectory.entries[0].label == "512x1024"
        assert trajectory.entries[0].speedup == 5.4

    def test_lowerbound_schema_labels(self):
        trajectory = _trajectory_from_payload("BENCH_lowerbound.json", LOWERBOUND)
        assert [e.label for e in trajectory.entries] == ["dsc t=1024", "dmc"]

    def test_unknown_schema_is_skipped(self):
        assert (
            _trajectory_from_payload(
                "BENCH_x.json", {"schema": "bench_future/v9", "grid": [{}]}
            )
            is None
        )

    def test_gridless_payload_is_skipped(self):
        assert _trajectory_from_payload("BENCH_x.json", {"schema": "bench_kernels/v1"}) is None


class TestLoadDirectory:
    def test_loads_and_sorts_known_files(self, tmp_path):
        (tmp_path / "BENCH_streaming.json").write_text(json.dumps(STREAMING))
        (tmp_path / "BENCH_kernels.json").write_text(json.dumps(KERNELS))
        (tmp_path / "BENCH_broken.json").write_text("{nope")
        (tmp_path / "OTHER.json").write_text(json.dumps(KERNELS))
        trajectories = load_bench_trajectories(tmp_path)
        assert [t.name for t in trajectories] == ["kernels", "streaming"]
        assert all(isinstance(t, BenchTrajectory) for t in trajectories)

    def test_empty_directory(self, tmp_path):
        assert load_bench_trajectories(tmp_path) == []

    def test_committed_baselines_parse(self):
        # The repo's own committed baselines must always stay parseable.
        trajectories = load_bench_trajectories(".")
        assert {t.name for t in trajectories} >= {"kernels", "streaming", "lowerbound"}
        assert all(t.best > 1.0 for t in trajectories)
