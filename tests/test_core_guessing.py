"""Unit tests for the õpt-guessing wrapper."""

import pytest

from repro.core.guessing import OptGuessingSetCover, geometric_guesses
from repro.setcover.verify import is_feasible_cover
from repro.streaming.engine import run_streaming_algorithm
from repro.workloads.random_instances import disjoint_blocks_instance


class TestGeometricGuesses:
    def test_starts_at_one_and_covers_n(self):
        guesses = geometric_guesses(100, 0.5)
        assert guesses[0] == 1
        assert guesses[-1] >= 100

    def test_strictly_increasing(self):
        guesses = geometric_guesses(1000, 0.25)
        assert all(b > a for a, b in zip(guesses, guesses[1:]))

    def test_count_is_logarithmic(self):
        import math

        guesses = geometric_guesses(10 ** 6, 0.5)
        assert len(guesses) <= 3 * math.log(10 ** 6) / 0.5

    def test_tiny_universe(self):
        assert geometric_guesses(1, 0.5) == [1]
        assert geometric_guesses(0, 0.5) == [1]


class TestOptGuessingSetCover:
    def test_finds_feasible_cover_without_opt(self, planted_instance):
        algorithm = OptGuessingSetCover(alpha=2, epsilon=0.5, seed=3)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert is_feasible_cover(planted_instance.system, result.solution)

    def test_solution_close_to_planted_opt(self, planted_instance):
        algorithm = OptGuessingSetCover(alpha=2, epsilon=0.5, seed=3)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        opt = planted_instance.planted_opt
        assert result.solution_size <= (2 + 0.5) * opt + opt

    def test_exact_on_disjoint_blocks(self):
        instance = disjoint_blocks_instance(36, 6, seed=8)
        algorithm = OptGuessingSetCover(alpha=2, epsilon=0.5, seed=1)
        result = run_streaming_algorithm(algorithm, instance.system)
        assert result.solution_size == 6

    def test_metadata_reports_guesses(self, planted_instance):
        algorithm = OptGuessingSetCover(alpha=2, epsilon=0.5, seed=3)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert result.metadata["guesses"][0] == 1
        assert result.metadata["winning_guess"] is not None
        assert len(result.metadata["outcomes"]) == len(result.metadata["guesses"])

    def test_explicit_guess_list(self, planted_instance):
        algorithm = OptGuessingSetCover(
            alpha=2, epsilon=0.5, seed=3, guesses=[planted_instance.planted_opt]
        )
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        assert is_feasible_cover(planted_instance.system, result.solution)
        assert result.metadata["guesses"] == [planted_instance.planted_opt]

    def test_pass_count_bounded_by_single_run(self, planted_instance):
        algorithm = OptGuessingSetCover(alpha=2, epsilon=0.5, seed=3)
        result = run_streaming_algorithm(algorithm, planted_instance.system)
        # Parallel guesses share physical passes: 2α+1 plus optional clean-up.
        assert result.passes <= 2 * 2 + 1 + 1
