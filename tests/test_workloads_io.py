"""Unit tests for instance serialisation."""

import pytest

from repro.setcover.instance import SetCoverInstance, SetSystem
from repro.workloads.io import dumps_instance, load_instance, loads_instance, save_instance
from repro.workloads.random_instances import plant_cover_instance


class TestRoundTrip:
    def test_text_round_trip(self):
        instance = plant_cover_instance(40, 12, 3, seed=1)
        text = dumps_instance(instance)
        rebuilt = loads_instance(text)
        assert rebuilt.system == instance.system
        assert rebuilt.planted_opt == instance.planted_opt
        assert rebuilt.metadata["kind"] == "planted"

    def test_file_round_trip(self, tmp_path):
        instance = plant_cover_instance(25, 8, 2, seed=2)
        path = save_instance(instance, tmp_path / "instance.txt")
        rebuilt = load_instance(path)
        assert rebuilt.system == instance.system

    def test_empty_set_round_trip(self):
        system = SetSystem(4, [[0, 1, 2, 3], []])
        text = dumps_instance(SetCoverInstance(system))
        rebuilt = loads_instance(text)
        assert rebuilt.system == system

    def test_no_metadata(self):
        system = SetSystem(3, [[0], [1, 2]])
        rebuilt = loads_instance(dumps_instance(SetCoverInstance(system)))
        assert rebuilt.planted_opt is None
        assert rebuilt.metadata == {}


class TestParsingErrors:
    def test_missing_data(self):
        with pytest.raises(ValueError):
            loads_instance("# just a comment\n")

    def test_bad_header(self):
        with pytest.raises(ValueError):
            loads_instance("5\n0 1\n")

    def test_wrong_set_count(self):
        with pytest.raises(ValueError):
            loads_instance("4 3\n0 1\n2 3\n")

    def test_comments_ignored(self):
        text = "# a comment\n3 1\n0 1 2\n"
        instance = loads_instance(text)
        assert instance.system.num_sets == 1
        assert instance.system.elements(0) == frozenset({0, 1, 2})
