"""Unit tests for instance serialisation."""

import pytest

from repro.setcover.instance import SetCoverInstance, SetSystem
from repro.workloads.io import dumps_instance, load_instance, loads_instance, save_instance
from repro.workloads.random_instances import plant_cover_instance


class TestRoundTrip:
    def test_text_round_trip(self):
        instance = plant_cover_instance(40, 12, 3, seed=1)
        text = dumps_instance(instance)
        rebuilt = loads_instance(text)
        assert rebuilt.system == instance.system
        assert rebuilt.planted_opt == instance.planted_opt
        assert rebuilt.metadata["kind"] == "planted"

    def test_file_round_trip(self, tmp_path):
        instance = plant_cover_instance(25, 8, 2, seed=2)
        path = save_instance(instance, tmp_path / "instance.txt")
        rebuilt = load_instance(path)
        assert rebuilt.system == instance.system

    def test_empty_set_round_trip(self):
        system = SetSystem(4, [[0, 1, 2, 3], []])
        text = dumps_instance(SetCoverInstance(system))
        rebuilt = loads_instance(text)
        assert rebuilt.system == system

    def test_no_metadata(self):
        system = SetSystem(3, [[0], [1, 2]])
        rebuilt = loads_instance(dumps_instance(SetCoverInstance(system)))
        assert rebuilt.planted_opt is None
        assert rebuilt.metadata == {}


class TestMetadataRoundTrip:
    def test_full_metadata_preserved(self):
        """Regression: every metadata entry round-trips, not just ``kind``."""
        system = SetSystem(6, [[0, 1, 2], [2, 3, 4], [4, 5]])
        instance = SetCoverInstance(
            system,
            planted_opt=3,
            metadata={
                "kind": "dsc",
                "theta": 1,
                "alpha": 2,
                "t": 5,
                "special_index": None,
                "rate": 0.25,
                "patched": True,
                "note": "hard instance",
            },
        )
        rebuilt = loads_instance(dumps_instance(instance))
        assert rebuilt.metadata == instance.metadata
        assert rebuilt.planted_opt == 3

    def test_dsc_stream_instance_round_trips(self):
        from repro.workloads.adversarial import dsc_stream_instance

        instance = dsc_stream_instance(48, 3, 2, theta=1, seed=9)
        rebuilt = loads_instance(dumps_instance(instance))
        assert rebuilt.system == instance.system
        assert rebuilt.metadata == instance.metadata
        assert rebuilt.planted_opt == instance.planted_opt

    def test_empty_sets_with_full_metadata(self):
        system = SetSystem(4, [[0, 1, 2, 3], [], []])
        instance = SetCoverInstance(system, metadata={"kind": "edge", "level": 7})
        rebuilt = loads_instance(dumps_instance(instance))
        assert rebuilt.system == system
        assert rebuilt.metadata == {"kind": "edge", "level": 7}

    def test_metadata_without_kind(self):
        system = SetSystem(2, [[0], [1]])
        instance = SetCoverInstance(system, metadata={"alpha": 3})
        rebuilt = loads_instance(dumps_instance(instance))
        assert rebuilt.metadata == {"alpha": 3}

    def test_file_round_trip_with_metadata(self, tmp_path):
        from repro.workloads.adversarial import dmc_stream_instance

        instance = dmc_stream_instance(2, 0.35, seed=4)
        path = save_instance(instance, tmp_path / "dmc.txt")
        rebuilt = load_instance(path)
        assert rebuilt.system == instance.system
        assert rebuilt.metadata == instance.metadata

    def test_malformed_meta_line_rejected(self):
        with pytest.raises(ValueError):
            loads_instance("# meta broken-line-without-colon\n2 1\n0 1\n")

    def test_unserialisable_metadata_key_rejected_at_dump(self):
        system = SetSystem(2, [[0], [1]])
        for bad_key in ("source:file", "two\nlines", ""):
            instance = SetCoverInstance(system, metadata={bad_key: "x"})
            with pytest.raises(ValueError, match="cannot be serialised"):
                dumps_instance(instance)

    def test_non_round_trippable_metadata_value_rejected_at_dump(self):
        system = SetSystem(2, [[0], [1]])
        # A tuple would silently come back as a list; a set is not JSON at all.
        for bad_value in ((2, 3), {1, 2}):
            instance = SetCoverInstance(system, metadata={"shape": bad_value})
            with pytest.raises(ValueError, match="metadata value"):
                dumps_instance(instance)


class TestParsingErrors:
    def test_missing_data(self):
        with pytest.raises(ValueError):
            loads_instance("# just a comment\n")

    def test_bad_header(self):
        with pytest.raises(ValueError):
            loads_instance("5\n0 1\n")

    def test_wrong_set_count(self):
        with pytest.raises(ValueError):
            loads_instance("4 3\n0 1\n2 3\n")

    def test_comments_ignored(self):
        text = "# a comment\n3 1\n0 1 2\n"
        instance = loads_instance(text)
        assert instance.system.num_sets == 1
        assert instance.system.elements(0) == frozenset({0, 1, 2})
