"""Unit tests for SetStream and stream orders."""

import pytest

from repro.streaming.stream import SetStream, StreamOrder, stream_from_system


class TestAdversarialOrder:
    def test_items_in_native_order(self, tiny_system):
        stream = SetStream(tiny_system)
        items = list(stream.iterate_pass())
        assert [index for index, _ in items] == list(range(6))
        assert items[0][1] == tiny_system.mask(0)

    def test_pass_counter(self, tiny_system):
        stream = SetStream(tiny_system)
        assert stream.passes_consumed == 0
        list(stream.iterate_pass())
        list(stream.iterate_pass())
        assert stream.passes_consumed == 2

    def test_partial_pass_still_counts(self, tiny_system):
        stream = SetStream(tiny_system)
        iterator = stream.iterate_pass()
        next(iterator)
        assert stream.passes_consumed == 1

    def test_reset(self, tiny_system):
        stream = SetStream(tiny_system)
        list(stream.iterate_pass())
        stream.reset()
        assert stream.passes_consumed == 0


class TestRandomOrder:
    def test_is_permutation(self, tiny_system):
        stream = SetStream(tiny_system, order=StreamOrder.RANDOM, seed=1)
        indices = [index for index, _ in stream.iterate_pass()]
        assert sorted(indices) == list(range(6))

    def test_order_fixed_across_passes(self, tiny_system):
        stream = SetStream(tiny_system, order=StreamOrder.RANDOM, seed=5)
        first = [index for index, _ in stream.iterate_pass()]
        second = [index for index, _ in stream.iterate_pass()]
        assert first == second

    def test_seed_determinism(self, tiny_system):
        a = SetStream(tiny_system, order=StreamOrder.RANDOM, seed=9)
        b = SetStream(tiny_system, order=StreamOrder.RANDOM, seed=9)
        assert a.arrival_order == b.arrival_order


class TestCustomOrder:
    def test_explicit_permutation(self, tiny_system):
        order = [5, 4, 3, 2, 1, 0]
        stream = SetStream(tiny_system, order=StreamOrder.CUSTOM, permutation=order)
        assert [i for i, _ in stream.iterate_pass()] == order

    def test_missing_permutation_rejected(self, tiny_system):
        with pytest.raises(ValueError):
            SetStream(tiny_system, order=StreamOrder.CUSTOM)

    def test_invalid_permutation_rejected(self, tiny_system):
        with pytest.raises(ValueError):
            SetStream(
                tiny_system, order=StreamOrder.CUSTOM, permutation=[0, 0, 1, 2, 3, 4]
            )


class TestConvenience:
    def test_stream_from_system(self, tiny_system):
        stream = stream_from_system(tiny_system, order=StreamOrder.RANDOM, seed=2)
        assert stream.num_sets == 6
        assert stream.universe_size == 6
        assert stream.order is StreamOrder.RANDOM
