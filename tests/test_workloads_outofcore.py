"""Chunked generation and streaming text I/O: bit-parity at bounded memory."""

from __future__ import annotations

import tracemalloc

import pytest

from repro.setcover.instance import SetCoverInstance
from repro.setcover.source import MmapSource
from repro.workloads.io import (
    dump_instance,
    dumps_instance,
    load_instance,
    loads_instance,
)
from repro.workloads.outofcore import generate_to_file
from repro.workloads.random_instances import random_instance, random_set_system


class TestGenerateToFile:
    def test_density_path_matches_in_memory(self, tmp_path):
        descriptor = generate_to_file(
            tmp_path / "a.repro", 32, 300, seed=7, chunk_rows=64
        )
        in_memory = random_set_system(32, 300, seed=7)
        assert descriptor.digest == in_memory.content_digest()
        with MmapSource.open(tmp_path / "a.repro") as source:
            assert source.system().to_packed().buffer == in_memory.to_packed().buffer

    def test_set_size_path_matches_in_memory(self, tmp_path):
        descriptor = generate_to_file(
            tmp_path / "b.repro", 40, 120, set_size=5, seed=11, chunk_rows=13
        )
        in_memory = random_set_system(40, 120, set_size=5, seed=11)
        assert descriptor.digest == in_memory.content_digest()

    def test_chunk_size_never_changes_bytes(self, tmp_path):
        digests = {
            generate_to_file(
                tmp_path / f"c{rows}.repro", 32, 100, seed=3, chunk_rows=rows
            ).digest
            for rows in (1, 7, 64, 1000)
        }
        assert len(digests) == 1

    def test_explicit_density_matches(self, tmp_path):
        descriptor = generate_to_file(
            tmp_path / "d.repro", 24, 50, density=0.4, seed=2
        )
        assert descriptor.digest == random_set_system(
            24, 50, density=0.4, seed=2
        ).content_digest()

    def test_parameter_validation_mirrors_random_set_system(self, tmp_path):
        with pytest.raises(ValueError, match="at most one"):
            generate_to_file(tmp_path / "x.repro", 8, 4, set_size=2, density=0.5)
        with pytest.raises(ValueError, match="set_size"):
            generate_to_file(tmp_path / "x.repro", 8, 4, set_size=9)
        with pytest.raises(ValueError, match="density"):
            generate_to_file(tmp_path / "x.repro", 8, 4, density=1.5)
        with pytest.raises(ValueError, match="chunk_rows"):
            generate_to_file(tmp_path / "x.repro", 8, 4, chunk_rows=0)
        assert list(tmp_path.iterdir()) == []  # every failure aborted cleanly


def make_instance(n=24, m=40, seed=3):
    instance = random_instance(n, m, seed=seed)
    instance.metadata["alpha"] = 2
    instance.metadata["note"] = "streamed"
    return instance


class TestStreamingTextIO:
    def test_dump_is_byte_identical_to_dumps(self, tmp_path):
        instance = make_instance()
        path = dump_instance(instance, tmp_path / "inst.txt")
        assert path.read_text() == dumps_instance(instance)

    def test_round_trip_restores_everything(self, tmp_path):
        instance = make_instance()
        dump_instance(instance, tmp_path / "inst.txt")
        loaded = load_instance(tmp_path / "inst.txt")
        assert loaded.system == instance.system
        assert loaded.metadata == instance.metadata
        assert loaded.planted_opt == instance.planted_opt

    def test_string_and_file_parsers_agree(self, tmp_path):
        instance = make_instance(seed=9)
        path = dump_instance(instance, tmp_path / "inst.txt")
        from_text = loads_instance(path.read_text())
        from_file = load_instance(path)
        assert from_file.system == from_text.system
        assert from_file.metadata == from_text.metadata

    def test_large_m_round_trip(self, tmp_path):
        # Satellite regression: the streaming pair must handle a grid-scale m
        # and still restore the exact system and metadata.
        system = random_set_system(48, 20000, seed=17)
        instance = SetCoverInstance(system, metadata={"kind": "bulk", "rows": 20000})
        path = dump_instance(instance, tmp_path / "big.txt")
        loaded = load_instance(path)
        assert loaded.system.num_sets == 20000
        assert loaded.system.to_packed().buffer == system.to_packed().buffer
        assert loaded.metadata == instance.metadata

    def test_dump_memory_is_bounded_not_document_sized(self, tmp_path):
        # The streaming writer's peak allocation must stay far below the
        # document it writes — the whole point of not building the text.
        system = random_set_system(48, 20000, seed=17)
        instance = SetCoverInstance(system)
        path = tmp_path / "bounded.txt"
        tracemalloc.start()
        try:
            dump_instance(instance, path)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        document_bytes = path.stat().st_size
        assert document_bytes > 500_000  # the regression is only meaningful at scale
        assert peak < document_bytes // 4
