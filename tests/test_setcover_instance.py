"""Unit tests for SetSystem / SetCoverInstance."""

import pytest

from repro.exceptions import InfeasibleInstanceError
from repro.setcover.instance import SetCoverInstance, SetSystem


class TestConstruction:
    def test_basic_sizes(self, tiny_system):
        assert tiny_system.universe_size == 6
        assert tiny_system.num_sets == 6
        assert len(tiny_system) == 6

    def test_elements_round_trip(self, tiny_system):
        assert tiny_system.elements(0) == frozenset({0, 1, 2})
        assert tiny_system[1] == frozenset({3, 4, 5})

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError):
            SetSystem(3, [[0, 5]])

    def test_negative_universe_rejected(self):
        with pytest.raises(ValueError):
            SetSystem(-1, [])

    def test_names_default(self, tiny_system):
        assert tiny_system.name(0) == "S0"
        assert tiny_system.name(5) == "S5"

    def test_names_custom(self):
        system = SetSystem(2, [[0], [1]], names=["left", "right"])
        assert system.names == ["left", "right"]

    def test_names_wrong_length(self):
        with pytest.raises(ValueError):
            SetSystem(2, [[0], [1]], names=["only-one"])

    def test_from_masks(self):
        system = SetSystem.from_masks(4, [0b0011, 0b1100])
        assert system.elements(0) == frozenset({0, 1})
        assert system.elements(1) == frozenset({2, 3})

    def test_from_masks_out_of_range(self):
        with pytest.raises(ValueError):
            SetSystem.from_masks(2, [0b100])

    def test_equality_and_hash(self):
        a = SetSystem(3, [[0], [1, 2]])
        b = SetSystem(3, [[0], [1, 2]])
        c = SetSystem(3, [[0], [1]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_iteration(self, tiny_system):
        sets = list(tiny_system)
        assert sets[2] == frozenset({0, 3})
        assert len(sets) == 6


class TestCoverage:
    def test_coverage_counts(self, tiny_system):
        assert tiny_system.coverage([0]) == 3
        assert tiny_system.coverage([0, 1]) == 6
        assert tiny_system.coverage([]) == 0

    def test_covers_universe(self, tiny_system):
        assert tiny_system.covers_universe([0, 1])
        assert not tiny_system.covers_universe([0])
        assert not tiny_system.covers_universe([])

    def test_empty_universe_covered_by_nothing(self):
        system = SetSystem(0, [])
        assert system.covers_universe([])

    def test_uncovered_mask(self, tiny_system):
        missing = tiny_system.uncovered_mask([0])
        assert missing == 0b111000

    def test_element_frequencies(self, tiny_system):
        freqs = tiny_system.element_frequencies()
        assert len(freqs) == 6
        assert freqs[0] == 3  # element 0 in sets 0, 2, 5

    def test_is_coverable(self, tiny_system):
        assert tiny_system.is_coverable()
        assert not SetSystem(3, [[0], [1]]).is_coverable()

    def test_incidence_count(self, tiny_system):
        assert tiny_system.incidence_count() == 3 + 3 + 2 + 2 + 2 + 4


class TestTransformations:
    def test_restrict_to_elements(self, tiny_system):
        projected = tiny_system.restrict_to_elements([0, 3])
        assert projected.universe_size == 6
        assert projected.elements(0) == frozenset({0})
        assert projected.elements(2) == frozenset({0, 3})

    def test_subsystem(self, tiny_system):
        sub = tiny_system.subsystem([1, 3])
        assert sub.num_sets == 2
        assert sub.elements(0) == frozenset({3, 4, 5})
        assert sub.names == ["S1", "S3"]

    def test_permuted(self, tiny_system):
        permuted = tiny_system.permuted([5, 4, 3, 2, 1, 0])
        assert permuted.elements(0) == tiny_system.elements(5)

    def test_permuted_invalid(self, tiny_system):
        with pytest.raises(ValueError):
            tiny_system.permuted([0, 0, 1, 2, 3, 4])

    def test_dict_round_trip(self, tiny_system):
        payload = tiny_system.to_dict()
        rebuilt = SetSystem.from_dict(payload)
        assert rebuilt == tiny_system


class TestSetCoverInstance:
    def test_planted_opt_recorded(self, tiny_system):
        instance = SetCoverInstance(tiny_system, planted_opt=2)
        assert instance.planted_opt == 2
        assert instance.approximation_ratio(4) == 2.0

    def test_unknown_opt_gives_none_ratio(self, tiny_system):
        instance = SetCoverInstance(tiny_system)
        assert instance.approximation_ratio(4) is None

    def test_invalid_planted_opt(self, tiny_system):
        with pytest.raises(ValueError):
            SetCoverInstance(tiny_system, planted_opt=0)

    def test_require_coverable(self, tiny_system):
        SetCoverInstance(tiny_system).require_coverable()
        bad = SetCoverInstance(SetSystem(3, [[0]]))
        with pytest.raises(InfeasibleInstanceError):
            bad.require_coverable()
