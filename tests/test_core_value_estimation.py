"""Unit tests for the streaming opt-value estimators."""

import pytest

from repro.core.value_estimation import CountingBoundEstimator, SetCoverValueEstimator
from repro.setcover.exact import exact_cover_value
from repro.setcover.instance import SetSystem
from repro.streaming.engine import run_streaming_algorithm
from repro.workloads.random_instances import disjoint_blocks_instance, plant_cover_instance


class TestSetCoverValueEstimator:
    def test_estimate_within_guarantee(self, planted_instance):
        opt = planted_instance.planted_opt
        estimator = SetCoverValueEstimator(alpha=2, epsilon=0.5, opt_guess=opt, seed=1)
        result = run_streaming_algorithm(
            estimator, planted_instance.system, verify_solution=False
        )
        assert result.solution == []  # value-only output
        assert opt <= result.estimated_value <= (2 + 0.5) * opt + opt

    def test_estimate_without_opt_guess(self, planted_instance):
        estimator = SetCoverValueEstimator(alpha=2, epsilon=0.5, seed=2)
        result = run_streaming_algorithm(
            estimator, planted_instance.system, verify_solution=False
        )
        opt = planted_instance.planted_opt
        assert opt <= result.estimated_value <= 3 * opt + opt

    def test_exact_on_disjoint_blocks(self):
        instance = disjoint_blocks_instance(36, 6, seed=3)
        estimator = SetCoverValueEstimator(alpha=2, epsilon=0.5, seed=3)
        result = run_streaming_algorithm(
            estimator, instance.system, verify_solution=False
        )
        assert result.estimated_value == 6

    def test_metadata_and_space_propagated(self, planted_instance):
        estimator = SetCoverValueEstimator(
            alpha=2, epsilon=0.5, opt_guess=planted_instance.planted_opt, seed=4
        )
        result = run_streaming_algorithm(
            estimator, planted_instance.system, verify_solution=False
        )
        assert result.metadata["witness_size"] == result.estimated_value
        assert result.space.peak_words > 0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            SetCoverValueEstimator(alpha=0)


class TestCountingBoundEstimator:
    def test_single_pass_and_lower_bound(self, planted_instance):
        estimator = CountingBoundEstimator()
        result = run_streaming_algorithm(
            estimator, planted_instance.system, verify_solution=False
        )
        assert result.passes == 1
        assert result.estimated_value <= exact_cover_value(planted_instance.system)
        assert result.space.peak_words <= 2

    def test_uncoverable_instance_gives_infinity(self):
        system = SetSystem(3, [[]])
        result = run_streaming_algorithm(
            CountingBoundEstimator(), system, verify_solution=False
        )
        assert result.estimated_value == float("inf")

    def test_exact_on_partition(self):
        instance = disjoint_blocks_instance(40, 4, seed=5)
        result = run_streaming_algorithm(
            CountingBoundEstimator(), instance.system, verify_solution=False
        )
        assert result.estimated_value == 4
