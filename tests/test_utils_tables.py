"""Unit tests for the ASCII table renderer."""

import pytest

from repro.utils.tables import Table, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "1" in lines[2]

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="my table")
        assert text.splitlines()[0] == "my table"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159265]], float_format=".3g")
        assert "3.14" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestTable:
    def test_add_row_and_len(self):
        table = Table(["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert len(table) == 2

    def test_add_row_wrong_arity(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_column_extraction(self):
        table = Table(["name", "value"])
        table.add_row("x", 10)
        table.add_row("y", 20)
        assert table.column("value") == [10, 20]

    def test_column_unknown_name(self):
        table = Table(["a"])
        with pytest.raises(KeyError):
            table.column("missing")

    def test_str_matches_render(self):
        table = Table(["a"], title="t")
        table.add_row(5)
        assert str(table) == table.render()
