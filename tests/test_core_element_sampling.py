"""Unit tests for the Lemma 3.12 element sampling primitive."""

import pytest

from repro.core.element_sampling import element_sample, sampling_probability


class TestSamplingProbability:
    def test_formula(self):
        import math

        p = sampling_probability(1000, 50, 4, 0.5, constant=16.0)
        expected = 16.0 * 4 * math.log(50) / (0.5 * 1000)
        assert p == pytest.approx(min(1.0, expected))

    def test_capped_at_one(self):
        assert sampling_probability(10, 50, 4, 0.5) == 1.0

    def test_empty_universe(self):
        assert sampling_probability(0, 50, 4, 0.5) == 1.0

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            sampling_probability(100, 10, 2, 1.5)
        with pytest.raises(ValueError):
            sampling_probability(100, 10, 2, 0.0)

    def test_invalid_cover_bound(self):
        with pytest.raises(ValueError):
            sampling_probability(100, 10, 0, 0.5)

    def test_monotone_in_rho(self):
        loose = sampling_probability(10 ** 6, 100, 4, 0.5)
        tight = sampling_probability(10 ** 6, 100, 4, 0.05)
        assert tight > loose

    def test_tiny_m_clamped(self):
        # num_sets < 2 must not produce log(1) = 0 probability.
        assert sampling_probability(10 ** 6, 1, 1, 0.5) > 0


class TestElementSample:
    def test_probability_one_keeps_everything(self):
        sample = element_sample(range(100), 1.0, seed=1)
        assert sample == frozenset(range(100))

    def test_probability_zero_keeps_nothing(self):
        assert element_sample(range(100), 0.0, seed=1) == frozenset()

    def test_deterministic_given_seed(self):
        a = element_sample(range(1000), 0.3, seed=7)
        b = element_sample(range(1000), 0.3, seed=7)
        assert a == b

    def test_sample_is_subset(self):
        elements = set(range(50, 150))
        sample = element_sample(elements, 0.4, seed=3)
        assert sample <= elements

    def test_expected_size_roughly_right(self):
        sample = element_sample(range(10000), 0.2, seed=11)
        assert 1600 <= len(sample) <= 2400

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            element_sample(range(10), 1.5)
        with pytest.raises(ValueError):
            element_sample(range(10), -0.1)
