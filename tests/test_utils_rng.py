"""Unit tests for the seeded random source."""

from repro.utils.rng import RandomSource, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_value_only_dependence(self):
        """Derivation depends only on (root, path) — never on call history."""
        first = derive_seed(5, "stream", "a")
        for _ in range(10):
            derive_seed(5, "stream", "b")
        assert derive_seed(5, "stream", "a") == first

    def test_int_and_str_components_mix(self):
        assert derive_seed(5, 1, "a") != derive_seed(5, "1a")
        assert derive_seed(5, 1, "a") == derive_seed(5, "1", "a")

    def test_encoding_is_injective(self):
        """A component containing the separator cannot fake two components."""
        assert derive_seed(7, "a:b") != derive_seed(7, "a", "b")
        assert derive_seed(7, "a|1:b") != derive_seed(7, "a", "b")
        assert derive_seed(7, "ab", "") != derive_seed(7, "a", "b")

    def test_usable_as_random_source_seed(self):
        seed = derive_seed(5, "x")
        assert RandomSource(seed).random() == RandomSource(seed).random()


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.randint(0, 10 ** 9) for _ in range(5)] != [
            b.randint(0, 10 ** 9) for _ in range(5)
        ]

    def test_spawn_is_deterministic(self):
        a_children = [RandomSource(7).spawn().randint(0, 10 ** 9) for _ in range(1)]
        b_children = [RandomSource(7).spawn().randint(0, 10 ** 9) for _ in range(1)]
        assert a_children == b_children

    def test_spawned_children_independent_order(self):
        parent = RandomSource(3)
        first = parent.spawn()
        second = parent.spawn()
        assert first.randint(0, 10 ** 9) != second.randint(0, 10 ** 9)


class TestHelpers:
    def test_permutation_is_permutation(self):
        perm = RandomSource(11).permutation(20)
        assert sorted(perm) == list(range(20))

    def test_subset_size(self):
        subset = RandomSource(5).subset(50, 10)
        assert len(subset) == 10
        assert all(0 <= e < 50 for e in subset)

    def test_subset_too_large_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            RandomSource(5).subset(3, 5)

    def test_bernoulli_extremes(self):
        rng = RandomSource(9)
        assert all(rng.bernoulli(1.0) for _ in range(20))
        assert not any(rng.bernoulli(0.0) for _ in range(20))

    def test_uniform_range(self):
        rng = RandomSource(4)
        values = [rng.uniform(2.0, 3.0) for _ in range(100)]
        assert all(2.0 <= v <= 3.0 for v in values)


class TestSpawnRng:
    def test_spawn_rng_passthrough(self):
        source = RandomSource(1)
        assert spawn_rng(source) is source

    def test_spawn_rng_from_int(self):
        assert isinstance(spawn_rng(17), RandomSource)

    def test_spawn_rng_from_none(self):
        assert isinstance(spawn_rng(None), RandomSource)
