"""Unit tests for the seeded random source."""

from repro.utils.rng import RandomSource, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_value_only_dependence(self):
        """Derivation depends only on (root, path) — never on call history."""
        first = derive_seed(5, "stream", "a")
        for _ in range(10):
            derive_seed(5, "stream", "b")
        assert derive_seed(5, "stream", "a") == first

    def test_int_and_str_components_mix(self):
        assert derive_seed(5, 1, "a") != derive_seed(5, "1a")
        assert derive_seed(5, 1, "a") == derive_seed(5, "1", "a")

    def test_encoding_is_injective(self):
        """A component containing the separator cannot fake two components."""
        assert derive_seed(7, "a:b") != derive_seed(7, "a", "b")
        assert derive_seed(7, "a|1:b") != derive_seed(7, "a", "b")
        assert derive_seed(7, "ab", "") != derive_seed(7, "a", "b")

    def test_usable_as_random_source_seed(self):
        seed = derive_seed(5, "x")
        assert RandomSource(seed).random() == RandomSource(seed).random()


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.randint(0, 10 ** 9) for _ in range(5)] != [
            b.randint(0, 10 ** 9) for _ in range(5)
        ]

    def test_spawn_is_deterministic(self):
        a_children = [RandomSource(7).spawn().randint(0, 10 ** 9) for _ in range(1)]
        b_children = [RandomSource(7).spawn().randint(0, 10 ** 9) for _ in range(1)]
        assert a_children == b_children

    def test_spawned_children_independent_order(self):
        parent = RandomSource(3)
        first = parent.spawn()
        second = parent.spawn()
        assert first.randint(0, 10 ** 9) != second.randint(0, 10 ** 9)


class TestHelpers:
    def test_permutation_is_permutation(self):
        perm = RandomSource(11).permutation(20)
        assert sorted(perm) == list(range(20))

    def test_subset_size(self):
        subset = RandomSource(5).subset(50, 10)
        assert len(subset) == 10
        assert all(0 <= e < 50 for e in subset)

    def test_subset_too_large_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            RandomSource(5).subset(3, 5)

    def test_bernoulli_extremes(self):
        rng = RandomSource(9)
        assert all(rng.bernoulli(1.0) for _ in range(20))
        assert not any(rng.bernoulli(0.0) for _ in range(20))

    def test_uniform_range(self):
        rng = RandomSource(4)
        values = [rng.uniform(2.0, 3.0) for _ in range(100)]
        assert all(2.0 <= v <= 3.0 for v in values)

    def test_subset_mask_matches_subset(self):
        a, b = RandomSource(21), RandomSource(21)
        for _ in range(10):
            assert b.subset_mask(40, 6) == sum(1 << e for e in a.subset(40, 6))
        # Both sources are left at the same stream position.
        assert a.random() == b.random()

    def test_subset_mask_too_large_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            RandomSource(5).subset_mask(3, 5)

    def test_random_array_matches_sequential_draws(self):
        import pytest

        pytest.importorskip("numpy")
        from repro.utils.rng import _BATCH_NUMPY_MIN

        count = _BATCH_NUMPY_MIN + 100
        source = RandomSource(33)
        reference = [source.random() for _ in range(count)]
        rng = RandomSource(33)
        draws = rng.random_array(count)
        assert draws is not None
        assert draws.tolist() == reference
        # The stream advanced exactly `count` draws.
        probe = RandomSource(33)
        for _ in range(count):
            probe.random()
        assert rng.random() == probe.random()

    def test_random_array_declines_small_batches(self):
        rng = RandomSource(2)
        before = rng.randbits(64)
        rng = RandomSource(2)
        assert rng.random_array(10) is None
        # Nothing was consumed by the declined call.
        assert rng.randbits(64) == before

    def test_random_array_rejects_negative(self):
        import pytest

        with pytest.raises(ValueError):
            RandomSource(1).random_array(-1)


class TestSpawnRng:
    def test_spawn_rng_passthrough(self):
        source = RandomSource(1)
        assert spawn_rng(source) is source

    def test_spawn_rng_from_int(self):
        assert isinstance(spawn_rng(17), RandomSource)

    def test_spawn_rng_from_none(self):
        assert isinstance(spawn_rng(None), RandomSource)
