"""Unit tests for the McGregor-Vu style sketched max coverage baseline."""

import pytest

from repro.baselines.mcgregor_vu import McGregorVuMaxCoverage
from repro.setcover.maxcover import exact_max_coverage
from repro.streaming.engine import run_streaming_algorithm
from repro.workloads.coverage import topic_coverage_instance


@pytest.fixture
def coverage_instance():
    return topic_coverage_instance(300, 30, communities=3, seed=21)


class TestMcGregorVu:
    def test_single_pass_and_k_sets(self, coverage_instance):
        algorithm = McGregorVuMaxCoverage(k=3, sketch_size=16, seed=1)
        result = run_streaming_algorithm(
            algorithm, coverage_instance.system, verify_solution=False
        )
        assert result.passes == 1
        assert len(result.solution) <= 3

    def test_space_bounded_by_sketches(self, coverage_instance):
        sketch_size = 8
        algorithm = McGregorVuMaxCoverage(k=2, sketch_size=sketch_size, seed=2)
        result = run_streaming_algorithm(
            algorithm, coverage_instance.system, verify_solution=False
        )
        m = coverage_instance.num_sets
        assert result.space.peak_words <= m * (sketch_size + 1)

    def test_larger_sketch_does_not_hurt_quality(self, coverage_instance):
        _, opt = exact_max_coverage(coverage_instance.system, 2)
        values = {}
        for sketch_size in (4, 64):
            algorithm = McGregorVuMaxCoverage(k=2, sketch_size=sketch_size, seed=3)
            result = run_streaming_algorithm(
                algorithm, coverage_instance.system, verify_solution=False
            )
            values[sketch_size] = coverage_instance.system.coverage(result.solution)
        assert values[64] >= values[4] - opt * 0.2

    def test_achieves_reasonable_coverage(self, coverage_instance):
        _, opt = exact_max_coverage(coverage_instance.system, 3)
        algorithm = McGregorVuMaxCoverage(k=3, sketch_size=48, seed=4)
        result = run_streaming_algorithm(
            algorithm, coverage_instance.system, verify_solution=False
        )
        true_coverage = coverage_instance.system.coverage(result.solution)
        assert true_coverage >= 0.5 * opt

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            McGregorVuMaxCoverage(k=0)
        with pytest.raises(ValueError):
            McGregorVuMaxCoverage(k=2, sketch_size=0)
