"""Parity suite: telemetry capture must not change any output, on any backend.

The telemetry subsystem's core promise is output-neutrality — a run with a
:class:`~repro.telemetry.TelemetrySession` active produces byte-identical
results to the same run without one.  Every test here computes the same
artifact twice (telemetry off, then on) and compares canonical JSON or
equality, parametrized over both kernel backends where the artifact touches
the kernel layer.
"""

import json

import pytest

from repro.core.algorithm1 import AlgorithmOneConfig, StreamingSetCover
from repro.kernels import available_backends
from repro.lowerbound.dmc import DMCParameters, sample_dmc
from repro.lowerbound.dsc import DSCParameters, sample_dsc
from repro.runtime.executor import TaskExecutor
from repro.runtime.scenarios import freeze_params
from repro.runtime.store import ResultStore, task_fingerprint
from repro.runtime.tasks import RuntimeTask
from repro.setcover.greedy import greedy_cover_trace
from repro.setcover.instance import SetSystem
from repro.streaming.engine import run_streaming_algorithm
from repro.telemetry import TelemetrySession
from repro.utils.rng import RandomSource

BACKENDS = available_backends()


def dense_system(n=96, m=40, seed=5, backend="python"):
    rng = RandomSource(seed)
    universe = (1 << n) - 1
    masks = [rng.randbits(n) & rng.randbits(n) | (1 << (i % n)) for i in range(m)]
    masks[0] |= universe  # keep the instance coverable
    return SetSystem.from_masks(n, masks, backend=backend)


def canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=repr)


def grid_tasks():
    return [
        RuntimeTask(
            key=f"E12[t={t},seed={seed}]",
            runner="E12",
            params=freeze_params({"t": t}),
            seed=seed,
        )
        for t in (2, 3)
        for seed in (1, 2)
    ]


@pytest.mark.parametrize("backend", BACKENDS)
class TestKernelLayerParity:
    def test_greedy_cover_identical(self, backend):
        off = greedy_cover_trace(dense_system(backend=backend))
        with TelemetrySession():
            on = greedy_cover_trace(dense_system(backend=backend))
        assert on.solution == off.solution
        assert on.steps == off.steps

    def test_streaming_engine_identical(self, backend):
        def run():
            config = AlgorithmOneConfig(alpha=2, opt_guess=4, epsilon=0.5)
            result = run_streaming_algorithm(
                StreamingSetCover(config, seed=11),
                dense_system(backend=backend),
            )
            return (
                sorted(result.solution),
                result.passes,
                result.space.peak_words if result.space else None,
            )

        off = run()
        with TelemetrySession():
            on = run()
        assert on == off


class TestSamplerParity:
    def test_dsc_identical(self):
        params = DSCParameters(universe_size=64, num_pairs=6, alpha=2)
        off = sample_dsc(params, seed=3, theta=1)
        with TelemetrySession():
            on = sample_dsc(params, seed=3, theta=1)
        assert on == off

    def test_dmc_identical(self):
        params = DMCParameters(num_pairs=4, epsilon=0.5)
        off = sample_dmc(params, seed=9, theta=1)
        with TelemetrySession():
            on = sample_dmc(params, seed=9, theta=1)
        assert on == off


class TestRuntimeParity:
    def test_task_fingerprints_unchanged(self):
        tasks = grid_tasks()
        off = [task_fingerprint(t) for t in tasks]
        with TelemetrySession():
            on = [task_fingerprint(t) for t in tasks]
        assert on == off

    @pytest.mark.parametrize("workers", [1, 2])
    def test_executor_payloads_identical(self, workers):
        tasks = grid_tasks()
        off = TaskExecutor(workers=workers).run(tasks)
        with TelemetrySession():
            on = TaskExecutor(workers=workers).run(tasks)
        assert canonical([o.payload for o in on.outcomes]) == canonical(
            [o.payload for o in off.outcomes]
        )
        # Telemetry rides alongside, never inside, the payloads.
        assert all(o.telemetry is not None for o in on.outcomes)
        assert all(o.telemetry is None for o in off.outcomes)

    def test_store_result_entries_identical(self, tmp_path):
        tasks = grid_tasks()
        TaskExecutor(workers=1, store=ResultStore(tmp_path / "off")).run(tasks)
        with TelemetrySession():
            TaskExecutor(workers=1, store=ResultStore(tmp_path / "on")).run(tasks)
        for task in tasks:
            fingerprint = task_fingerprint(task)
            off_entry = json.loads(
                (ResultStore(tmp_path / "off").path_for(fingerprint)).read_text()
            )
            on_entry = json.loads(
                (ResultStore(tmp_path / "on").path_for(fingerprint)).read_text()
            )
            assert "telemetry" not in off_entry
            on_entry.pop("telemetry")
            assert canonical(on_entry) == canonical(off_entry)
