"""Dispatch backends: serial / local-process / multihost-sim parity and resume.

The contract: the dispatch backend is pure mechanism.  Submission-order
merging plus content-addressed caching mean every backend — including the
subprocess-per-chunk multihost simulation — produces byte-identical
payloads, stores, and stdout; and a run killed mid-grid resumes from its
store to exactly the clean serial bytes.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.resilience.durability import canonical_json
from repro.resilience.faults import FAULTS_ENV_VAR
from repro.resilience.policy import RETRY_ENV_VAR
from repro.runtime import ResultStore, RuntimeTask, TaskExecutor, freeze_params
from repro.runtime.dispatch import DISPATCH_BACKENDS, resolve_dispatch
from repro.setcover.source import MmapSource
from repro.telemetry.session import TelemetrySession
from repro.workloads.outofcore import generate_to_file

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    monkeypatch.delenv(RETRY_ENV_VAR, raising=False)


def grid_tasks(descriptor=None):
    """Cheap mixed grid: E12 cells plus WL cells, optionally file-backed."""
    tasks = [
        RuntimeTask(
            key=f"E12[t={t},seed={seed}]",
            runner="E12",
            params=freeze_params({"t": t}),
            seed=seed,
        )
        for t in (2, 3)
        for seed in (1, 2)
    ]
    wl_params = {"workload": "random", "algorithm": "saha_getoor", "order": "random"}
    if descriptor is not None:
        wl_params["instance"] = descriptor
    tasks.append(
        RuntimeTask(
            key="WL[file]", runner="WL", params=freeze_params(wl_params), seed=5
        )
    )
    return tasks


def payload_bytes(report):
    return [canonical_json(outcome.payload) for outcome in report.outcomes]


class TestResolveDispatch:
    def test_auto_picks_from_workers(self):
        assert resolve_dispatch("auto", workers=1).name == "serial"
        assert resolve_dispatch("auto", workers=4).name == "local-process"

    def test_explicit_names_resolve(self):
        for name in ("serial", "local-process", "multihost-sim"):
            assert resolve_dispatch(name, workers=2).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="dispatch"):
            resolve_dispatch("carrier-pigeon", workers=2)
        with pytest.raises(ValueError, match="dispatch"):
            TaskExecutor(dispatch="carrier-pigeon")

    def test_registry_is_the_cli_choice_list(self):
        assert DISPATCH_BACKENDS == ("auto", "serial", "local-process", "multihost-sim")


class TestDispatchParity:
    def test_all_backends_same_bytes(self, tmp_path):
        descriptor = generate_to_file(tmp_path / "inst.repro", 48, 64, seed=7)
        baseline = payload_bytes(
            TaskExecutor(workers=1, dispatch="serial").run(grid_tasks(descriptor))
        )
        for dispatch in ("local-process", "multihost-sim"):
            report = TaskExecutor(workers=3, dispatch=dispatch).run(
                grid_tasks(descriptor)
            )
            assert payload_bytes(report) == baseline, dispatch
            assert [o.status for o in report.outcomes] == ["computed"] * 5

    def test_backing_never_changes_bytes(self, tmp_path):
        path = tmp_path / "inst.repro"
        generate_to_file(path, 48, 64, seed=7)
        with MmapSource.open(path) as source:
            packed = source.to_packed()
            mmap_desc = source.descriptor()
        from repro.setcover.source import HeapSource, SharedMemorySource

        heap_desc = HeapSource.from_packed(packed).descriptor()
        shared = SharedMemorySource.publish(packed)
        try:
            reports = {
                kind: payload_bytes(
                    TaskExecutor(workers=1).run(grid_tasks(descriptor))
                )
                for kind, descriptor in (
                    ("mmap", mmap_desc),
                    ("heap", heap_desc),
                    ("shared", shared.descriptor()),
                )
            }
        finally:
            shared.close()
        assert reports["mmap"] == reports["heap"] == reports["shared"]

    def test_backing_shares_cache_entries(self, tmp_path):
        path = tmp_path / "inst.repro"
        generate_to_file(path, 48, 64, seed=7)
        with MmapSource.open(path) as source:
            packed = source.to_packed()
            mmap_desc = source.descriptor()
        from repro.setcover.source import HeapSource

        store = ResultStore(tmp_path / "store")
        first = TaskExecutor(workers=1, store=store).run(grid_tasks(mmap_desc))
        assert [o.status for o in first.outcomes] == ["computed"] * 5
        heap_desc = HeapSource.from_packed(packed).descriptor()
        second = TaskExecutor(workers=1, store=store).run(grid_tasks(heap_desc))
        assert [o.status for o in second.outcomes] == ["cached"] * 5
        assert payload_bytes(second) == payload_bytes(first)


class TestMultihostRecovery:
    def test_worker_crash_recovers_to_identical_bytes(self, monkeypatch, tmp_path):
        descriptor = generate_to_file(tmp_path / "inst.repro", 48, 64, seed=7)
        baseline = payload_bytes(
            TaskExecutor(workers=1, dispatch="serial").run(grid_tasks(descriptor))
        )
        monkeypatch.setenv(FAULTS_ENV_VAR, "seed=11,executor.submit:crash:1:1")
        with TelemetrySession(label="hostsim-crash") as session:
            report = TaskExecutor(workers=2, dispatch="multihost-sim").run(
                grid_tasks(descriptor)
            )
        counters = session.registry.snapshot()["counters"]
        assert payload_bytes(report) == baseline
        assert counters.get("executor.worker_lost", 0) > 0

    def test_hostsim_entry_rejects_bad_usage(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.runtime.hostsim"],
            env={**os.environ, "PYTHONPATH": REPO_SRC},
            capture_output=True,
            text=True,
        )
        assert result.returncode == 2

    def test_hostsim_entry_executes_a_chunk(self, tmp_path):
        tasks = grid_tasks()[:2]
        job = tmp_path / "job.pkl"
        out = tmp_path / "result.pkl"
        job.write_bytes(pickle.dumps({"tasks": tasks, "capture": False}))
        result = subprocess.run(
            [sys.executable, "-m", "repro.runtime.hostsim", str(job), str(out)],
            env={**os.environ, "PYTHONPATH": REPO_SRC},
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        results = pickle.loads(out.read_bytes())
        assert len(results) == len(tasks)

    def test_spawn_failure_degrades_to_serial(self, monkeypatch, tmp_path):
        descriptor = generate_to_file(tmp_path / "inst.repro", 48, 64, seed=7)
        baseline = payload_bytes(
            TaskExecutor(workers=1, dispatch="serial").run(grid_tasks(descriptor))
        )

        def no_spawn(*args, **kwargs):
            raise OSError("spawn refused")

        import repro.runtime.dispatch as dispatch_module

        monkeypatch.setattr(dispatch_module.subprocess, "Popen", no_spawn)
        report = TaskExecutor(workers=2, dispatch="multihost-sim").run(
            grid_tasks(descriptor)
        )
        assert payload_bytes(report) == baseline


def store_payloads(store_dir):
    """Store payload files keyed by relative path, stats journals excluded."""
    out = {}
    for path in sorted(Path(store_dir).rglob("*")):
        if path.is_file() and "stats_journal" not in path.parts:
            out[str(path.relative_to(store_dir))] = path.read_bytes()
    return out


class TestKilledRunResumes:
    """Satellite: SIGKILL mid-grid under chaos, resume to clean-serial bytes."""

    CELLS = [
        f"ADV[algorithm={algorithm},order={order},workload=random]"
        for algorithm in ("algorithm1", "saha_getoor", "emek_rosen", "demaine")
        for order in ("adversarial", "random")
    ]

    def run_cli(self, args, env_extra=None, check=True):
        env = {**os.environ, "PYTHONPATH": REPO_SRC}
        env.pop(FAULTS_ENV_VAR, None)
        env.update(env_extra or {})
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            env=env,
            capture_output=True,
            text=True,
        )
        if check:
            assert result.returncode == 0, result.stderr + result.stdout
        return result

    def test_resume_matches_clean_serial(self, tmp_path):
        instance = tmp_path / "inst.repro"
        self.run_cli(["gen-instance", str(instance), "--n", "48", "--m", "64", "--seed", "7"])

        clean = tmp_path / "store-clean"
        self.run_cli(
            ["run", *self.CELLS, "--quiet", "--store", str(clean),
             "--dispatch", "serial", "--instance-file", str(instance)]
        )

        # Chaos leg: multihost dispatch, recoverable crash faults in the
        # workers, and a SIGKILL the moment the store holds some entries.
        resumed = tmp_path / "store-resumed"
        env = {**os.environ, "PYTHONPATH": REPO_SRC,
               FAULTS_ENV_VAR: "seed=3,executor.submit:crash:0.4:1"}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "run", *self.CELLS, "--quiet",
             "--store", str(resumed), "--dispatch", "multihost-sim",
             "--workers", "2", "--instance-file", str(instance)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 60
        killed = False
        while time.monotonic() < deadline:
            entries = [
                p for p in resumed.rglob("*.json") if "quarantine" not in p.parts
            ] if resumed.exists() else []
            if entries and proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
                killed = True
                break
            if proc.poll() is not None:
                break  # finished before we could kill it — resume is a no-op
            time.sleep(0.02)
        proc.wait(timeout=60)
        partial = store_payloads(resumed)
        if killed:
            assert 0 < len(partial) <= len(self.CELLS)

        # Restart against the same store, clean and serial: cached entries
        # are reused, the rest recomputed, final bytes == clean serial store.
        result = self.run_cli(
            ["run", *self.CELLS, "--quiet", "--store", str(resumed),
             "--dispatch", "multihost-sim", "--workers", "2",
             "--instance-file", str(instance)]
        )
        statuses = [
            line for line in result.stdout.splitlines() if line.startswith("[ADV")
        ]
        assert len(statuses) == len(self.CELLS)
        for name, payload in partial.items():
            # whatever survived the kill was reused byte-for-byte
            assert store_payloads(resumed)[name] == payload
        assert store_payloads(resumed) == store_payloads(clean)
