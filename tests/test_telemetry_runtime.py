"""Integration tests: telemetry across the executor, store, CLI, and report."""

import json

import pytest

from repro.analysis import build_report, load_store
from repro.analysis.render import render_markdown
from repro.cli import main
from repro.runtime.executor import TELEMETRY_KEY, TaskExecutor
from repro.runtime.scenarios import freeze_params
from repro.runtime.store import ResultStore, read_store_stats
from repro.runtime.tasks import RuntimeTask
from repro.telemetry import TelemetrySession, validate_trace_dir, validate_trace_file


def grid_tasks(count=3):
    return [
        RuntimeTask(
            key=f"E12[t={t},seed=1]",
            runner="E12",
            params=freeze_params({"t": t}),
            seed=1,
        )
        for t in range(2, 2 + count)
    ]


SCENARIO = "ADV[algorithm=saha_getoor,order=adversarial,workload=dsc]"


class TestExecutorAggregation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_snapshots_absorbed_in_parent(self, workers):
        tasks = grid_tasks()
        with TelemetrySession(label="agg") as session:
            report = TaskExecutor(workers=workers).run(tasks)
        names = [s["name"] for s in session.tracer.spans]
        # One manufactured lifecycle per task, plus the worker's own task.run.
        assert names.count("task.lifecycle") == len(tasks)
        assert names.count("task.run") == len(tasks)
        assert names.count("task.queue_wait") == len(tasks)
        assert names.count("task.merge") == len(tasks)
        lifecycles = [s for s in session.tracer.spans if s["name"] == "task.lifecycle"]
        assert [s["attrs"]["key"] for s in lifecycles] == [t.key for t in tasks]
        merged = report.telemetry
        assert merged is not None and merged["entries"] == len(tasks)

    def test_reserved_payload_key_never_leaks(self):
        tasks = grid_tasks()
        with TelemetrySession():
            report = TaskExecutor(workers=2).run(tasks)
        for outcome in report.outcomes:
            assert TELEMETRY_KEY not in outcome.payload
            assert outcome.telemetry is not None
            # E12 exercises no instrumented counters, but every worker run
            # records at least its task.run span.
            assert "task.run" in outcome.telemetry["span_summary"]

    def test_cached_outcomes_replay_stored_telemetry(self, tmp_path):
        tasks = grid_tasks()
        with TelemetrySession():
            TaskExecutor(workers=1, store=ResultStore(tmp_path)).run(tasks)
        with TelemetrySession():
            second = TaskExecutor(workers=1, store=ResultStore(tmp_path)).run(tasks)
        assert all(o.status == "cached" for o in second.outcomes)
        assert all(o.telemetry is not None for o in second.outcomes)


class TestStoreStatsPersistence:
    def test_flush_accumulates_across_runs(self, tmp_path):
        tasks = grid_tasks()
        TaskExecutor(workers=1, store=ResultStore(tmp_path)).run(tasks)
        stats = read_store_stats(tmp_path)
        assert stats == {
            "hits": 0, "misses": len(tasks), "puts": len(tasks), "skips": 0,
            "quarantined": 0,
        }
        TaskExecutor(workers=1, store=ResultStore(tmp_path)).run(tasks)
        stats = read_store_stats(tmp_path)
        assert stats["hits"] == len(tasks)
        assert stats["misses"] == len(tasks)
        assert stats["skips"] == len(tasks)

    def test_stats_file_invisible_to_entry_globs(self, tmp_path):
        store = ResultStore(tmp_path)
        TaskExecutor(workers=1, store=store).run(grid_tasks(1))
        analysis = load_store(tmp_path)
        assert analysis.unreadable == []
        assert analysis.store_stats is not None

    def test_corrupt_stats_read_as_absent(self, tmp_path):
        (tmp_path / "store_stats.json").write_text("{broken")
        assert read_store_stats(tmp_path) is None


class TestCliTrace:
    def test_run_trace_writes_valid_jsonl(self, tmp_path, capsys):
        store = tmp_path / "store"
        traces = tmp_path / "traces"
        code = main(
            ["run", SCENARIO, "--store", str(store), "--trace", str(traces), "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote trace:" in out
        results = validate_trace_dir(traces)
        assert len(results) == 1
        path, problems = results[0]
        assert problems == []
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["event"] == "run"
        assert lines[-1]["event"] == "metrics"
        assert lines[-1]["metrics"]["counters"], "merged counters must be present"

    def test_validate_trace_command(self, tmp_path, capsys):
        with TelemetrySession(label="ok", trace_dir=tmp_path) as session:
            pass
        assert main(["validate-trace", str(tmp_path)]) == 0
        assert main(["validate-trace", str(session.trace_path)]) == 0
        capsys.readouterr()
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["validate-trace", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_validate_trace_missing_path(self):
        with pytest.raises(SystemExit):
            main(["validate-trace", "/nonexistent/nowhere"])


class TestReportTelemetrySection:
    def test_section_rendered_for_captured_store(self, tmp_path):
        store = tmp_path / "store"
        code = main(
            ["run", SCENARIO, "--store", str(store),
             "--trace", str(tmp_path / "traces"), "--quiet"]
        )
        assert code == 0
        markdown = render_markdown(build_report(load_store(store)))
        assert "## Telemetry" in markdown
        assert "kernel" in markdown  # per-cell counters table
        assert "`engine.run`" in markdown or "engine.runs" in markdown

    def test_section_absent_without_capture(self, tmp_path):
        tasks = grid_tasks(1)
        # No session, no store: build analysis from entries written manually.
        store = ResultStore(tmp_path)
        store.put(tasks[0], {"experiment_id": "E12", "title": "t", "table": {},
                             "findings": {}})
        analysis = load_store(tmp_path)
        analysis.store_stats = None  # as if no run ever flushed stats
        markdown = render_markdown(build_report(analysis))
        assert "## Telemetry" not in markdown

    def test_stats_only_store_renders_activity(self, tmp_path):
        store = ResultStore(tmp_path)
        TaskExecutor(workers=1, store=store).run(grid_tasks(1))
        markdown = render_markdown(build_report(load_store(tmp_path)))
        assert "## Telemetry" in markdown
        assert "store_stats.json" in markdown
        assert "No stored cell carries a telemetry block" in markdown
