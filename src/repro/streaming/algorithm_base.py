"""Abstract base class for multi-pass streaming set cover algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.streaming.space import SpaceMeter, SpaceReport
from repro.streaming.stream import SetStream


@dataclass
class StreamingResult:
    """Outcome of running a streaming algorithm on a stream.

    Attributes
    ----------
    solution:
        Indices of the chosen sets (empty for estimation-only algorithms).
    estimated_value:
        The algorithm's estimate of the optimal value (defaults to the
        solution size when a solution is produced).
    passes:
        Number of passes consumed over the stream.
    space:
        Space report from the algorithm's meter.
    metadata:
        Free-form per-algorithm diagnostics (e.g. sampled-universe sizes).
    """

    solution: List[int] = field(default_factory=list)
    estimated_value: Optional[float] = None
    passes: int = 0
    space: SpaceReport = field(default_factory=SpaceReport)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def solution_size(self) -> int:
        """Number of sets in the returned solution."""
        return len(self.solution)


class StreamingAlgorithm(abc.ABC):
    """Base class: a streaming algorithm consumes a :class:`SetStream`.

    Subclasses implement :meth:`run`, calling ``stream.iterate_pass()`` once
    per pass and charging their retained state to ``self.space``.  The base
    class owns the space meter so the engine can enforce budgets uniformly.
    """

    #: Human-readable name used in experiment tables.
    name: str = "streaming-algorithm"

    def __init__(self, space_budget: Optional[int] = None) -> None:
        self.space = SpaceMeter(budget=space_budget)

    @abc.abstractmethod
    def run(self, stream: SetStream) -> StreamingResult:
        """Process the stream and return the result."""

    # -- helpers shared by implementations ---------------------------------
    def _finalize(
        self,
        stream: SetStream,
        solution: List[int],
        estimated_value: Optional[float] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> StreamingResult:
        """Assemble a :class:`StreamingResult` with the standard bookkeeping."""
        if estimated_value is None and solution:
            estimated_value = float(len(solution))
        return StreamingResult(
            solution=list(solution),
            estimated_value=estimated_value,
            passes=stream.passes_consumed,
            space=self.space.report(),
            metadata=dict(metadata or {}),
        )
