"""Engine for running streaming algorithms with pass/space enforcement.

The engine is deliberately thin: it builds the stream, hands it to the
algorithm, then verifies the result against the declared budgets and (when
asked) against the instance itself.  Keeping verification outside the
algorithms means an algorithm cannot accidentally report better numbers than
it achieved — in particular, an empty solution is verified like any other,
so a broken algorithm cannot report an unverified "cover" of size 0 over a
nonempty universe.

The engine never inspects which compute-kernel backend the instance rides
on: a run is byte-identical whether the batched primitives execute on the
pure-Python, NumPy, or compiled kernel (at any thread count) — the
cross-backend ``StreamingResult`` parity the differential suite in
``tests/property/test_prop_compiled.py`` pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import PassBudgetExceededError
from repro.service.deadline import check_deadline
from repro.setcover.instance import SetSystem
from repro.setcover.verify import verify_cover
from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.space import SpaceMeter
from repro.streaming.stream import SetStream, StreamOrder
from repro.telemetry import metrics
from repro.telemetry.spans import span
from repro.utils.rng import SeedLike


@dataclass
class EngineConfig:
    """Configuration for a single engine run.

    ``pass_budget`` bounds the passes an algorithm may consume;
    ``space_budget`` (words) arms a fresh :class:`SpaceMeter` on the
    algorithm for the run, so exceeding the analysed space bound raises
    :class:`~repro.exceptions.SpaceBudgetExceededError` mid-run (Remark 3.9)
    and the final :class:`~repro.streaming.space.SpaceReport` lands on the
    :class:`StreamingResult`.  ``verify_solution`` checks the returned cover
    against the instance — set it to ``False`` only for estimation-only or
    max-coverage algorithms whose solutions are not meant to be covers.
    """

    order: StreamOrder = StreamOrder.ADVERSARIAL
    seed: SeedLike = None
    pass_budget: Optional[int] = None
    space_budget: Optional[int] = None
    verify_solution: bool = True


class MultiPassEngine:
    """Runs a :class:`StreamingAlgorithm` over a :class:`SetSystem`."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()

    def run(
        self,
        algorithm: StreamingAlgorithm,
        system: SetSystem,
    ) -> StreamingResult:
        """Execute the algorithm and enforce the configured budgets.

        Cooperative deadlines: an ambient request deadline (armed by the
        service front end via :mod:`repro.service.deadline`) is checked here
        before any work starts, at every pass grant inside
        :class:`~repro.streaming.stream.SetStream`, and again before the
        (potentially expensive) solution verification — so an expired
        request never buys another pass or a verification sweep, yet an
        algorithm is never torn down mid-kernel-call.
        """
        check_deadline()
        current = algorithm.space
        if self.config.space_budget is not None:
            # Arm a fresh budgeted meter for this run; the algorithm charges
            # its retained state to it, so the budget is enforced mid-run and
            # the meter's report is what _finalize puts on the result (and
            # what a caller inspects after a budget overrun).  Remember the
            # meter this displaces — through chains of budgeted runs — so a
            # later unbudgeted run can fall back to the algorithm's own
            # declared budget.
            meter = SpaceMeter(budget=self.config.space_budget)
            meter.engine_displaced = getattr(current, "engine_displaced", current)
            algorithm.space = meter
        elif hasattr(current, "engine_displaced"):
            # A previous budgeted engine run armed the current meter; without
            # an engine budget in force the algorithm must not inherit it (or
            # its stale charges).  Re-arm a fresh meter carrying whatever
            # budget the displaced (constructor-time) meter declared.
            algorithm.space = SpaceMeter(budget=current.engine_displaced.budget)
        stream = SetStream(
            system,
            order=self.config.order,
            seed=self.config.seed,
        )
        metrics.add("engine.runs")
        with span(
            "engine.run",
            algorithm=type(algorithm).__name__,
            n=system.universe_size,
            m=system.num_sets,
            order=self.config.order.value,
            backing=system.backing,
        ) as active:
            result = algorithm.run(stream)
            active.set(
                passes=result.passes,
                solution_size=len(result.solution),
                peak_words=result.space.peak_words if result.space else 0,
            )
        if (
            self.config.pass_budget is not None
            and result.passes > self.config.pass_budget
        ):
            raise PassBudgetExceededError(result.passes, self.config.pass_budget)
        if self.config.verify_solution:
            check_deadline()
            with span("engine.verify", solution_size=len(result.solution)):
                verify_cover(system, result.solution)
        return result


def run_streaming_algorithm(
    algorithm: StreamingAlgorithm,
    system: SetSystem,
    order: StreamOrder = StreamOrder.ADVERSARIAL,
    seed: SeedLike = None,
    pass_budget: Optional[int] = None,
    space_budget: Optional[int] = None,
    verify_solution: bool = True,
) -> StreamingResult:
    """One-call convenience wrapper around :class:`MultiPassEngine`."""
    engine = MultiPassEngine(
        EngineConfig(
            order=order,
            seed=seed,
            pass_budget=pass_budget,
            space_budget=space_budget,
            verify_solution=verify_solution,
        )
    )
    return engine.run(algorithm, system)
