"""Engine for running streaming algorithms with pass/space enforcement.

The engine is deliberately thin: it builds the stream, hands it to the
algorithm, then verifies the result against the declared budgets and (when
asked) against the instance itself.  Keeping verification outside the
algorithms means an algorithm cannot accidentally report better numbers than
it achieved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import PassBudgetExceededError
from repro.setcover.instance import SetSystem
from repro.setcover.verify import verify_cover
from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream, StreamOrder
from repro.utils.rng import SeedLike


@dataclass
class EngineConfig:
    """Configuration for a single engine run."""

    order: StreamOrder = StreamOrder.ADVERSARIAL
    seed: SeedLike = None
    pass_budget: Optional[int] = None
    verify_solution: bool = True


class MultiPassEngine:
    """Runs a :class:`StreamingAlgorithm` over a :class:`SetSystem`."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()

    def run(
        self,
        algorithm: StreamingAlgorithm,
        system: SetSystem,
    ) -> StreamingResult:
        """Execute the algorithm and enforce the configured budgets."""
        stream = SetStream(
            system,
            order=self.config.order,
            seed=self.config.seed,
        )
        result = algorithm.run(stream)
        if (
            self.config.pass_budget is not None
            and result.passes > self.config.pass_budget
        ):
            raise PassBudgetExceededError(result.passes, self.config.pass_budget)
        if self.config.verify_solution and result.solution:
            verify_cover(system, result.solution)
        return result


def run_streaming_algorithm(
    algorithm: StreamingAlgorithm,
    system: SetSystem,
    order: StreamOrder = StreamOrder.ADVERSARIAL,
    seed: SeedLike = None,
    pass_budget: Optional[int] = None,
    verify_solution: bool = True,
) -> StreamingResult:
    """One-call convenience wrapper around :class:`MultiPassEngine`."""
    engine = MultiPassEngine(
        EngineConfig(
            order=order,
            seed=seed,
            pass_budget=pass_budget,
            verify_solution=verify_solution,
        )
    )
    return engine.run(algorithm, system)
