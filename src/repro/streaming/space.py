"""Space accounting for streaming algorithms.

The paper measures space in bits / machine words of retained state.  In this
reproduction the dominant space term of every algorithm is the number of
*(set, element) incidences* it stores (projected sets, sampled elements), plus
a smaller number of auxiliary words (counters, chosen indices, the sampled
universe).  :class:`SpaceMeter` tracks both as named categories, records the
peak across the run, and can enforce a hard budget (Remark 3.9: an algorithm
can be terminated deterministically when it attempts to exceed its analysed
space bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import SpaceBudgetExceededError
from repro.telemetry.metrics import gauge_set as _gauge


@dataclass
class SpaceReport:
    """Summary of an algorithm's space usage over a full run.

    Attributes
    ----------
    peak_words:
        Maximum total words held at any instant.
    final_words:
        Words held when the algorithm finished.
    peak_by_category:
        Peak usage broken down by the categories the algorithm declared
        (e.g. ``"stored_incidences"``, ``"sampled_universe"``, ``"solution"``).
    """

    peak_words: int = 0
    final_words: int = 0
    peak_by_category: Dict[str, int] = field(default_factory=dict)

    def dominant_category(self) -> Optional[str]:
        """Return the category with the largest peak usage, if any."""
        if not self.peak_by_category:
            return None
        return max(self.peak_by_category, key=lambda k: self.peak_by_category[k])


class SpaceMeter:
    """Tracks the words of memory a streaming algorithm currently holds.

    Algorithms call :meth:`charge` / :meth:`release` (or :meth:`set_usage` for
    absolute updates) with a category label.  The meter keeps the running
    total, per-category peaks, and the global peak, and optionally raises
    :class:`SpaceBudgetExceededError` when a hard budget is exceeded.
    """

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self._budget = budget
        self._current: Dict[str, int] = {}
        self._peak_by_category: Dict[str, int] = {}
        self._peak_total = 0

    # -- mutation ---------------------------------------------------------
    def charge(self, category: str, words: int) -> None:
        """Add ``words`` to the given category (words may not be negative)."""
        if words < 0:
            raise ValueError(f"charge must be non-negative, got {words}")
        self.set_usage(category, self._current.get(category, 0) + words)

    def release(self, category: str, words: Optional[int] = None) -> None:
        """Remove ``words`` from the category (all of it when ``words`` is None)."""
        held = self._current.get(category, 0)
        if words is None:
            words = held
        if words < 0:
            raise ValueError(f"release must be non-negative, got {words}")
        if words > held:
            raise ValueError(
                f"cannot release {words} words from category {category!r} holding {held}"
            )
        self.set_usage(category, held - words)

    def set_usage(self, category: str, words: int) -> None:
        """Set the absolute usage of a category, updating peaks and budget."""
        if words < 0:
            raise ValueError(f"usage must be non-negative, got {words}")
        self._current[category] = words
        self._peak_by_category[category] = max(
            self._peak_by_category.get(category, 0), words
        )
        total = self.current_words
        self._peak_total = max(self._peak_total, total)
        # Telemetry gauges record the high-water series per category and in
        # total (no-ops when telemetry is off).
        _gauge(f"space.{category}", words)
        _gauge("space.total_words", total)
        if self._budget is not None and total > self._budget:
            raise SpaceBudgetExceededError(total, self._budget)

    def reset_category(self, category: str) -> None:
        """Drop a category's current usage to zero (peak is retained)."""
        self.set_usage(category, 0)

    # -- queries ------------------------------------------------------------
    @property
    def budget(self) -> Optional[int]:
        """The hard budget in words, or None when unenforced."""
        return self._budget

    @property
    def current_words(self) -> int:
        """Total words currently held across all categories."""
        return sum(self._current.values())

    @property
    def peak_words(self) -> int:
        """Largest total ever held."""
        return self._peak_total

    def usage(self, category: str) -> int:
        """Current words held in one category."""
        return self._current.get(category, 0)

    def report(self) -> SpaceReport:
        """Snapshot the meter into an immutable :class:`SpaceReport`."""
        return SpaceReport(
            peak_words=self._peak_total,
            final_words=self.current_words,
            peak_by_category=dict(self._peak_by_category),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpaceMeter(current={self.current_words}, peak={self._peak_total}, "
            f"budget={self._budget})"
        )
