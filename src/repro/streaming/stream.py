"""Set streams: the input presentation layer of the streaming model.

A :class:`SetStream` wraps a :class:`~repro.setcover.SetSystem` together with
an arrival order.  Orders can be adversarial (the system's native order),
uniformly random (as in Theorem 1's random arrival setting), or an explicit
permutation.  The stream counts how many passes have been consumed so the
engine can enforce pass budgets.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.resilience.faults import inject
from repro.service.deadline import check_deadline
from repro.setcover.instance import SetSystem
from repro.telemetry import metrics
from repro.telemetry.spans import event
from repro.utils.rng import RandomSource, SeedLike, spawn_rng


class StreamOrder(enum.Enum):
    """How sets are ordered within each pass of the stream."""

    ADVERSARIAL = "adversarial"
    RANDOM = "random"
    CUSTOM = "custom"


class SetStream:
    """A multi-pass stream of ``(set_index, set_mask)`` items.

    Parameters
    ----------
    system:
        The underlying set system.
    order:
        Arrival order policy.  With :attr:`StreamOrder.RANDOM`, a fresh uniform
        permutation is drawn *once* (random arrival means the stream order is
        random but fixed across passes, matching the model in Section 3.3).
    permutation:
        Explicit permutation of set indices when ``order`` is CUSTOM.
    seed:
        Randomness source for the RANDOM order.
    """

    def __init__(
        self,
        system: SetSystem,
        order: StreamOrder = StreamOrder.ADVERSARIAL,
        permutation: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> None:
        self._system = system
        self._order = order
        self._passes_consumed = 0
        if order is StreamOrder.CUSTOM:
            if permutation is None:
                raise ValueError("CUSTOM order requires an explicit permutation")
            if sorted(permutation) != list(range(system.num_sets)):
                raise ValueError("permutation must cover each set index exactly once")
            self._permutation: List[int] = list(permutation)
        elif order is StreamOrder.RANDOM:
            rng: RandomSource = spawn_rng(seed)
            self._permutation = rng.permutation(system.num_sets)
        else:
            self._permutation = list(range(system.num_sets))

    # -- properties --------------------------------------------------------
    @property
    def system(self) -> SetSystem:
        """The underlying set system (the algorithms never read it directly)."""
        return self._system

    @property
    def universe_size(self) -> int:
        """Universe size n, known to the algorithm up front."""
        return self._system.universe_size

    @property
    def num_sets(self) -> int:
        """Number of sets m, known to the algorithm up front."""
        return self._system.num_sets

    @property
    def order(self) -> StreamOrder:
        """The arrival-order policy of this stream."""
        return self._order

    @property
    def arrival_order(self) -> List[int]:
        """The fixed permutation in which sets arrive each pass."""
        return list(self._permutation)

    @property
    def passes_consumed(self) -> int:
        """Number of full passes handed out so far."""
        return self._passes_consumed

    # -- iteration -----------------------------------------------------------
    def iterate_pass(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(original_set_index, set_mask)`` for one full pass.

        Each call counts as one pass over the stream regardless of whether the
        caller exhausts the iterator (a conservative accounting choice: partial
        passes still cost a pass, as they would in the streaming model).

        Pass grants are the cooperative cancellation points of the serving
        path: when an ambient request deadline (see
        :mod:`repro.service.deadline`) has expired, the grant raises
        :class:`~repro.exceptions.DeadlineExceededError` instead of handing
        out another full pass.  Without an armed deadline the check is one
        context-variable load — the batch path pays nothing.
        """
        check_deadline()
        inject("engine.pass", key=f"iterate:{self._passes_consumed + 1}")
        self._passes_consumed += 1
        # A zero-duration event rather than a span: this is a generator, and
        # holding a span open across yields would leak its parent token into
        # the caller's context between items.
        event(
            "stream.pass",
            number=self._passes_consumed,
            mode="iterate",
            m=self._system.num_sets,
            backing=self._system.backing,
        )
        metrics.add("stream.passes")
        metrics.add("stream.sets_streamed", self._system.num_sets)
        for set_index in self._permutation:
            yield set_index, self._system.mask(set_index)

    def batched_pass(self) -> SetSystem:
        """Consume one pass and return the underlying system for batched access.

        The batched equivalent of :meth:`iterate_pass`: an algorithm that can
        phrase a whole pass as one kernel call (all marginal gains, all
        projections) reads the system directly instead of iterating
        ``(index, mask)`` pairs — but it still pays the pass, keeping the
        streaming model's accounting identical to the per-set loop.  Arrival
        order, where it matters, comes from :attr:`arrival_order`.

        Like :meth:`iterate_pass`, the grant is a cooperative cancellation
        point: an expired ambient deadline raises
        :class:`~repro.exceptions.DeadlineExceededError` before the pass is
        charged, and the check is free when no deadline is armed.
        """
        check_deadline()
        inject("engine.pass", key=f"batched:{self._passes_consumed + 1}")
        self._passes_consumed += 1
        event(
            "stream.pass",
            number=self._passes_consumed,
            mode="batched",
            m=self._system.num_sets,
            backing=self._system.backing,
        )
        metrics.add("stream.passes")
        metrics.add("stream.sets_streamed", self._system.num_sets)
        return self._system

    def reset(self) -> None:
        """Reset the pass counter (the arrival order is preserved)."""
        self._passes_consumed = 0


def stream_from_system(
    system: SetSystem,
    order: StreamOrder = StreamOrder.ADVERSARIAL,
    seed: SeedLike = None,
    permutation: Optional[Sequence[int]] = None,
) -> SetStream:
    """Convenience constructor mirroring :class:`SetStream`'s signature."""
    return SetStream(system, order=order, permutation=permutation, seed=seed)
