"""Streaming model substrate.

Implements the multi-pass set-streaming model of the paper: the sets of a
:class:`~repro.setcover.SetSystem` arrive one at a time, the algorithm may make
several passes, and only its *space* (what it retains between set arrivals) is
restricted — computation per item is free, exactly as in the paper's model.
"""

from repro.streaming.space import SpaceMeter, SpaceReport
from repro.streaming.stream import SetStream, StreamOrder, stream_from_system
from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.engine import MultiPassEngine, run_streaming_algorithm

__all__ = [
    "SpaceMeter",
    "SpaceReport",
    "SetStream",
    "StreamOrder",
    "stream_from_system",
    "StreamingAlgorithm",
    "StreamingResult",
    "MultiPassEngine",
    "run_streaming_algorithm",
]
