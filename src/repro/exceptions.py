"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch library errors without masking programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InfeasibleInstanceError(ReproError):
    """Raised when a set cover instance has no feasible cover."""


class SpaceBudgetExceededError(ReproError):
    """Raised when a streaming algorithm exceeds its declared space budget.

    Mirrors Remark 3.9 in the paper: the algorithm may be terminated as soon
    as it attempts to use more memory than its analysis allows.
    """

    def __init__(self, used: int, budget: int) -> None:
        super().__init__(f"space budget exceeded: used {used} words, budget {budget}")
        self.used = used
        self.budget = budget


class PassBudgetExceededError(ReproError):
    """Raised when a streaming algorithm requests more passes than allowed."""

    def __init__(self, used: int, budget: int) -> None:
        super().__init__(f"pass budget exceeded: used {used} passes, budget {budget}")
        self.used = used
        self.budget = budget


class TransientTaskError(ReproError):
    """Base class for failures that are safe to retry.

    A transient failure means the *attempt* was lost, not that the task is
    wrong: re-executing the same task with the same inputs is expected to
    succeed and — because every task is a pure function of its inputs —
    produces a byte-identical payload.  The retry machinery in
    :mod:`repro.resilience.policy` retries exactly this hierarchy and lets
    every other exception propagate unchanged.
    """


class InjectedFaultError(TransientTaskError):
    """Raised by the fault-injection framework at an armed injection point."""

    def __init__(self, site: str, key: str, kind: str = "raise", attempt: int = 0) -> None:
        super().__init__(
            f"injected fault at {site} (key={key!r}, kind={kind}, attempt={attempt})"
        )
        self.site = site
        self.key = key
        self.kind = kind
        self.attempt = attempt


class WorkerLostError(TransientTaskError):
    """Raised when a worker process died or timed out mid-task.

    The executor normally absorbs these by respawning the pool and
    re-executing only the lost tasks; it surfaces only when the retry
    budget is exhausted.
    """

    def __init__(self, message: str, tasks: int = 0) -> None:
        super().__init__(message)
        self.tasks = tasks


class PayloadIntegrityError(TransientTaskError):
    """Raised when a task payload fails its end-to-end checksum.

    Payloads crossing the worker boundary under fault injection carry a
    checksum of their canonical JSON; a mismatch means the bytes were
    corrupted in flight and the task must be recomputed, never merged.
    """


class SharedSegmentLostError(TransientTaskError):
    """Raised when a shared-memory segment attach finds the segment gone.

    An attach racing the publisher's ``close``/``unlink`` (or a publisher
    that died and was resurrected under a new segment name) is a lost
    *attempt*, not a wrong answer: the attach never mutates anything, so
    re-resolving the handle and attaching again is always safe.  Being part
    of the :class:`TransientTaskError` hierarchy makes the ambient retry
    policy handle exactly that.
    """

    def __init__(self, segment: str) -> None:
        super().__init__(f"shared-memory segment {segment!r} is gone (unlinked?)")
        self.segment = segment


class InstanceSourceLostError(TransientTaskError):
    """Raised when attaching an instance source finds its backing gone.

    The file-backed analogue of :class:`SharedSegmentLostError`: an mmap
    container that disappeared between descriptor creation and attach (NFS
    lag, a publisher cleaning up early, a torn re-export) is a lost
    *attempt* — the attach never mutates anything, so re-resolving the
    descriptor and attaching again is always safe under the ambient retry
    policy.
    """

    def __init__(self, location: str, detail: str = "is gone") -> None:
        super().__init__(f"instance source {location!r} {detail}")
        self.location = location


class DeadlineExceededError(ReproError):
    """Raised by a cooperative cancellation check once a deadline has passed.

    Deliberately *not* transient: re-running the same computation against an
    already-expired deadline fails again immediately, so the retry machinery
    must let it propagate to whoever owns the deadline (the service maps it
    to an explicit ``deadline`` response).  ``overrun`` is how many seconds
    past the deadline the check observed.
    """

    def __init__(self, overrun: float) -> None:
        super().__init__(f"deadline exceeded by {overrun:.4f}s")
        self.overrun = overrun


class CircuitOpenError(ReproError):
    """Raised when a circuit breaker refuses further attempts.

    The breaker opens after a configured number of *consecutive* failures,
    turning an endless retry storm into a fast, explicit failure.
    """

    def __init__(self, failures: int, threshold: int) -> None:
        super().__init__(
            f"circuit open after {failures} consecutive failures "
            f"(threshold {threshold})"
        )
        self.failures = failures
        self.threshold = threshold


class ProtocolError(ReproError):
    """Raised when a communication protocol is driven in an invalid way."""


class DistributionError(ReproError):
    """Raised when a hard-distribution sampler is given invalid parameters."""
