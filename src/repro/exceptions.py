"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch library errors without masking programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InfeasibleInstanceError(ReproError):
    """Raised when a set cover instance has no feasible cover."""


class SpaceBudgetExceededError(ReproError):
    """Raised when a streaming algorithm exceeds its declared space budget.

    Mirrors Remark 3.9 in the paper: the algorithm may be terminated as soon
    as it attempts to use more memory than its analysis allows.
    """

    def __init__(self, used: int, budget: int) -> None:
        super().__init__(f"space budget exceeded: used {used} words, budget {budget}")
        self.used = used
        self.budget = budget


class PassBudgetExceededError(ReproError):
    """Raised when a streaming algorithm requests more passes than allowed."""

    def __init__(self, used: int, budget: int) -> None:
        super().__init__(f"pass budget exceeded: used {used} passes, budget {budget}")
        self.used = used
        self.budget = budget


class ProtocolError(ReproError):
    """Raised when a communication protocol is driven in an invalid way."""


class DistributionError(ReproError):
    """Raised when a hard-distribution sampler is given invalid parameters."""
