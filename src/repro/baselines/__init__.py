"""Prior streaming algorithms the paper positions its bounds against.

* :class:`SahaGetoorGreedy` — the single-pass "keep a set if it improves the
  current cover" heuristic of Saha and Getoor (SDM 2009).
* :class:`EmekRosenSemiStreaming` — a semi-streaming one-pass algorithm in the
  spirit of Emek and Rosén (ICALP 2014): keep, for every element, one small
  set responsible for it.
* :class:`IterativePruningSetCover` — the Har-Peled et al. (PODS 2016) style
  multi-pass algorithm with *iterative* pruning, the algorithm whose space
  bound ``Õ(m·n^{Θ(1/α)})`` (constant > 2 in the exponent) the paper sharpens
  to exactly ``1/α`` via one-shot pruning.
* :class:`ProgressiveGreedyPasses` — the Demaine et al. (DISC 2014) flavour of
  multi-pass thresholded greedy.
* :class:`StoreEverythingSetCover` — the trivial "store the whole input, solve
  offline" baseline (space Θ(mn), one pass) marking the upper end of the
  space axis in E1/E11.
"""

from repro.baselines.saha_getoor import SahaGetoorGreedy
from repro.baselines.emek_rosen import EmekRosenSemiStreaming
from repro.baselines.har_peled import IterativePruningSetCover
from repro.baselines.demaine import ProgressiveGreedyPasses
from repro.baselines.full_storage import StoreEverythingSetCover, StoreEverythingMaxCover
from repro.baselines.mcgregor_vu import McGregorVuMaxCoverage

__all__ = [
    "SahaGetoorGreedy",
    "EmekRosenSemiStreaming",
    "IterativePruningSetCover",
    "ProgressiveGreedyPasses",
    "StoreEverythingSetCover",
    "StoreEverythingMaxCover",
    "McGregorVuMaxCoverage",
]
