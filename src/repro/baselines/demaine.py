"""Multi-pass thresholded greedy (Demaine et al., DISC 2014 flavour).

The algorithm makes O(α) passes; in pass j it picks every set that covers at
least ``n / 2^j``-ish uncovered elements (a geometric threshold schedule).
It needs only Õ(m·n^{Θ(1/log α)}) space in the original analysis; here the
retained state is just the uncovered universe and the solution, so its space
is small but its approximation guarantee is log n-ish rather than α — the
other historical point on the tradeoff curve for E11.

Each pass is batched: the threshold is fixed for the duration of a pass and
per-set gains only shrink as picks land, so one kernel call against the
pass-entry universe prunes every set that cannot reach the threshold; only
the surviving candidates are re-checked sequentially in arrival order.
"""

from __future__ import annotations

from typing import List, Optional

from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream
from repro.utils.bitset import bitset_size


class ProgressiveGreedyPasses(StreamingAlgorithm):
    """Multi-pass geometric-threshold greedy set cover."""

    name = "demaine-progressive-greedy"

    def __init__(
        self,
        num_passes: int,
        space_budget: Optional[int] = None,
    ) -> None:
        super().__init__(space_budget=space_budget)
        if num_passes < 1:
            raise ValueError(f"num_passes must be >= 1, got {num_passes}")
        self.num_passes = num_passes

    def run(self, stream: SetStream) -> StreamingResult:
        n = stream.universe_size
        uncovered = (1 << n) - 1
        solution: List[int] = []
        chosen = set()
        self.space.set_usage("uncovered_universe", n)

        for pass_index in range(self.num_passes):
            if uncovered == 0:
                break
            # Threshold decays geometrically from n/2 down to 1.
            threshold = max(1.0, n / (2 ** (pass_index + 1)))
            final_pass = pass_index == self.num_passes - 1
            if final_pass:
                threshold = 1.0
            system = stream.batched_pass()
            entry_gains = system.kernel().gains(uncovered)
            for set_index in stream.arrival_order:
                if uncovered == 0:
                    break
                if set_index in chosen or entry_gains[set_index] < threshold:
                    continue
                mask = system.mask(set_index)
                gain = bitset_size(mask & uncovered)
                if gain >= threshold:
                    chosen.add(set_index)
                    solution.append(set_index)
                    uncovered &= ~mask
                    self.space.set_usage("solution", len(solution))

        metadata = {"uncovered_after_run": bitset_size(uncovered)}
        return self._finalize(stream, solution, metadata=metadata)
