"""Single-pass streaming greedy in the style of Saha and Getoor (SDM 2009).

The algorithm keeps a running partial cover: a set from the stream is added to
the solution whenever it covers at least a ``threshold_fraction`` of the
still-uncovered elements (the original paper uses simple "does it help"
heuristics; the thresholded form is the standard presentation).  One pass,
space O(n + solution), but the approximation can be as bad as Ω(√n) on
adversarial orders — the behaviour E11 contrasts with Algorithm 1.

The pass is batched: one kernel call computes every set's gain against the
pass-entry universe, and since gains only shrink as picks land, sets that
start at gain 0 can never be picked — only the live candidates are re-checked
against the current uncovered mask, in arrival order, with the seed's exact
pick rule.
"""

from __future__ import annotations

from typing import Optional

from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream
from repro.utils.bitset import bitset_size


class SahaGetoorGreedy(StreamingAlgorithm):
    """One-pass thresholded streaming greedy set cover."""

    name = "saha-getoor-greedy"

    def __init__(
        self,
        threshold_fraction: float = 0.0,
        space_budget: Optional[int] = None,
    ) -> None:
        super().__init__(space_budget=space_budget)
        if not 0.0 <= threshold_fraction < 1.0:
            raise ValueError(
                f"threshold_fraction must lie in [0, 1), got {threshold_fraction}"
            )
        self.threshold_fraction = threshold_fraction

    def run(self, stream: SetStream) -> StreamingResult:
        n = stream.universe_size
        uncovered = (1 << n) - 1
        solution = []
        self.space.set_usage("uncovered_universe", n)
        system = stream.batched_pass()
        entry_gains = system.kernel().gains(uncovered)
        for set_index in stream.arrival_order:
            if uncovered == 0:
                break
            if entry_gains[set_index] == 0:
                continue
            mask = system.mask(set_index)
            gain = bitset_size(mask & uncovered)
            if gain == 0:
                continue
            remaining = bitset_size(uncovered)
            if gain >= max(1, self.threshold_fraction * remaining):
                solution.append(set_index)
                uncovered &= ~mask
                self.space.set_usage("solution", len(solution))
        metadata = {
            "uncovered_after_run": bitset_size(uncovered),
            "threshold_fraction": self.threshold_fraction,
        }
        return self._finalize(stream, solution, metadata=metadata)
