"""Multi-pass set cover with *iterative* pruning (Har-Peled et al., PODS 2016).

The original algorithm alternates element sampling with an extra "pruning"
step in every iteration: sets that still cover many uncovered elements are
taken greedily before the sampled sub-instance is solved.  The per-iteration
pruning threshold decays geometrically, which is what pushes the space
exponent to Θ(1/α) with a constant larger than 2; the paper's Algorithm 1
replaces this with a single up-front pruning pass and a sharper sampling rate,
reaching exactly n^{1/α}.

This reimplementation is faithful at the level the two papers describe the
difference (E11's ablation: iterative vs one-shot pruning), not a line-by-line
port of [32]'s pseudo-code.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.element_sampling import element_sample, sampling_probability
from repro.exceptions import InfeasibleInstanceError
from repro.setcover.exact import exact_set_cover
from repro.setcover.greedy import greedy_set_cover
from repro.setcover.instance import SetSystem
from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream
from repro.utils.bitset import bitset_from_iterable, bitset_size, bitset_to_set
from repro.utils.rng import SeedLike, spawn_rng


class IterativePruningSetCover(StreamingAlgorithm):
    """Har-Peled-style α-approximation with per-iteration pruning.

    Parameters mirror :class:`~repro.core.algorithm1.AlgorithmOneConfig`; the
    key differences from Algorithm 1 are (a) pruning happens inside every
    iteration with a geometrically decreasing threshold and (b) the element
    sampling rate uses the weaker exponent ``2/α`` (the "Θ(1/α) with constant
    ≥ 2" of the original analysis), so the stored projections are larger.
    """

    name = "har-peled-iterative-pruning"

    def __init__(
        self,
        alpha: int,
        opt_guess: int,
        epsilon: float = 0.5,
        subinstance_solver: str = "greedy",
        sampling_constant: float = 16.0,
        seed: SeedLike = None,
        space_budget: Optional[int] = None,
    ) -> None:
        super().__init__(space_budget=space_budget)
        if alpha < 1:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        if opt_guess < 1:
            raise ValueError(f"opt_guess must be >= 1, got {opt_guess}")
        self.alpha = alpha
        self.opt_guess = opt_guess
        self.epsilon = epsilon
        self.subinstance_solver = subinstance_solver
        self.sampling_constant = sampling_constant
        self._rng = spawn_rng(seed)

    def run(self, stream: SetStream) -> StreamingResult:
        n = stream.universe_size
        m = stream.num_sets
        uncovered = (1 << n) - 1
        solution: List[int] = []
        chosen = set()
        metadata: Dict[str, object] = {"sample_sizes": [], "stored_incidences_per_round": []}
        self.space.set_usage("uncovered_universe", n)

        # The weaker sampling exponent of the original analysis.
        rho = n ** (-min(1.0, 2.0 / self.alpha)) if n > 1 else 0.5

        for iteration in range(self.alpha):
            if uncovered == 0:
                break
            # Iterative pruning pass: threshold decays with the iteration.
            # Batched like Algorithm 1's pruning: the threshold is fixed for
            # the pass and gains only shrink, so one kernel call rules out
            # every set that starts below it; survivors are re-checked in
            # arrival order against the live uncovered mask.
            threshold = n / (self.epsilon * self.opt_guess * (2 ** iteration))
            system = stream.batched_pass()
            entry_gains = system.kernel().gains(uncovered)
            for set_index in stream.arrival_order:
                if set_index in chosen or entry_gains[set_index] < max(1.0, threshold):
                    continue
                mask = system.mask(set_index)
                if bitset_size(mask & uncovered) >= max(1.0, threshold):
                    chosen.add(set_index)
                    solution.append(set_index)
                    uncovered &= ~mask
                    self.space.set_usage("solution", len(solution))
            if uncovered == 0:
                break

            probability = sampling_probability(
                universe_size=n,
                num_sets=m,
                cover_size_bound=self.opt_guess,
                rho=rho,
                constant=self.sampling_constant,
            )
            sample = element_sample(
                bitset_to_set(uncovered), probability, seed=self._rng.spawn()
            )
            sample_mask = bitset_from_iterable(sample)
            metadata["sample_sizes"].append(len(sample))
            self.space.set_usage("sampled_universe", len(sample))

            # Pass: store every set's projection onto the sample — one
            # batched kernel call for the per-set projection sizes; the
            # per-arrival accounting walk keeps the space meter's (and any
            # budget's) trajectory exactly the seed's.
            streamed = stream.batched_pass()
            kernel = streamed.kernel()
            projection_sizes = kernel.gains(sample_mask)
            stored = 0
            for set_index in stream.arrival_order:
                stored += projection_sizes[set_index]
                self.space.set_usage("stored_incidences", stored)
            metadata["stored_incidences_per_round"].append(stored)

            # Residual sample: what the chosen sets don't already cover,
            # restricted to what any stored projection could cover.
            target = sample_mask & ~streamed.coverage_mask(chosen)
            target &= kernel.union()
            round_solution: List[int] = []
            if target:
                try:
                    if self.subinstance_solver == "exact":
                        projected = SetSystem.from_masks(n, kernel.restrict(sample_mask))
                        round_solution = exact_set_cover(projected, target_mask=target)
                    else:
                        # Every gain against a subset of the sample is equal
                        # on the projection and the full set, so greedy runs
                        # directly on the streamed system's cached kernel —
                        # no projected system is ever materialised.
                        round_solution = greedy_set_cover(streamed, required_mask=target)
                except InfeasibleInstanceError:
                    round_solution = []

            # Pass: shrink the uncovered universe by the chosen (full) sets.
            system = stream.batched_pass()
            uncovered &= ~system.coverage_mask(round_solution)
            for set_index in round_solution:
                if set_index not in chosen:
                    chosen.add(set_index)
                    solution.append(set_index)
            self.space.set_usage("solution", len(solution))
            self.space.reset_category("stored_incidences")
            self.space.reset_category("sampled_universe")

        if uncovered:
            # Clean-up pass, batched: sets disjoint from the pass-entry
            # uncovered universe stay disjoint as it shrinks.
            system = stream.batched_pass()
            entry_gains = system.kernel().gains(uncovered)
            for set_index in stream.arrival_order:
                if uncovered == 0:
                    break
                if set_index in chosen or entry_gains[set_index] == 0:
                    continue
                mask = system.mask(set_index)
                if mask & uncovered:
                    chosen.add(set_index)
                    solution.append(set_index)
                    uncovered &= ~mask
                    self.space.set_usage("solution", len(solution))
            metadata["cleanup_used"] = True

        metadata["uncovered_after_run"] = bitset_size(uncovered)
        return self._finalize(stream, solution, metadata=metadata)


def har_peled_space_words(
    universe_size: int, num_sets: int, alpha: int, epsilon: float = 0.5
) -> float:
    """Predicted stored words Õ(m·n^{2/α}) for the iterative-pruning algorithm."""
    exponent = min(1.0, 2.0 / alpha)
    log_m = math.log(max(num_sets, 2))
    return 16 * num_sets * universe_size ** exponent * log_m / epsilon + universe_size
