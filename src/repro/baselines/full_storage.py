"""Store-everything baselines: one pass, Θ(mn) space, offline solve.

These mark the trivial upper end of the space axis that Theorem 1 shows is
unavoidable up to the ``n^{1-1/α}`` factor for α-approximation.  The storage
pass is batched — one kernel call for all per-set sizes — with the space
meter still charged in arrival order so budget enforcement matches the
per-set loop exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.setcover.exact import exact_set_cover
from repro.setcover.greedy import greedy_set_cover
from repro.setcover.maxcover import exact_max_coverage, greedy_max_coverage
from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream


class StoreEverythingSetCover(StreamingAlgorithm):
    """Store the whole stream, then solve set cover offline."""

    name = "store-everything-setcover"

    def __init__(
        self,
        solver: str = "greedy",
        space_budget: Optional[int] = None,
    ) -> None:
        super().__init__(space_budget=space_budget)
        if solver not in ("exact", "greedy"):
            raise ValueError(f"solver must be 'exact' or 'greedy', got {solver!r}")
        self.solver = solver

    def run(self, stream: SetStream) -> StreamingResult:
        streamed = stream.batched_pass()
        sizes = streamed.kernel().set_sizes()
        stored = 0
        for set_index in stream.arrival_order:
            stored += sizes[set_index]
            self.space.set_usage("stored_incidences", stored)
        # The stored copy is mask-identical to the streamed system, so the
        # offline solve runs on it directly — reusing its already-built
        # kernel instead of packing a fresh one per run.
        if self.solver == "exact":
            solution = exact_set_cover(streamed)
        else:
            solution = greedy_set_cover(streamed)
        self.space.set_usage("solution", len(solution))
        return self._finalize(stream, solution)


class StoreEverythingMaxCover(StreamingAlgorithm):
    """Store the whole stream, then solve maximum k-coverage offline."""

    name = "store-everything-maxcover"

    def __init__(
        self,
        k: int,
        solver: str = "greedy",
        space_budget: Optional[int] = None,
    ) -> None:
        super().__init__(space_budget=space_budget)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if solver not in ("exact", "greedy"):
            raise ValueError(f"solver must be 'exact' or 'greedy', got {solver!r}")
        self.k = k
        self.solver = solver

    def run(self, stream: SetStream) -> StreamingResult:
        streamed = stream.batched_pass()
        sizes = streamed.kernel().set_sizes()
        stored = 0
        for set_index in stream.arrival_order:
            stored += sizes[set_index]
            self.space.set_usage("stored_incidences", stored)
        if self.solver == "exact":
            chosen, value = exact_max_coverage(streamed, self.k)
        else:
            chosen, value = greedy_max_coverage(streamed, self.k)
        self.space.set_usage("solution", len(chosen))
        return self._finalize(
            stream, chosen, estimated_value=float(value), metadata={"k": self.k}
        )
