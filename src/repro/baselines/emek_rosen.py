"""Semi-streaming set cover in the spirit of Emek and Rosén (ICALP 2014).

One pass, Õ(n) space: for every element the algorithm remembers the best
"effectiveness" set seen so far (a set's effectiveness for an element is the
reciprocal of the number of new elements it would be credited with).  At the
end of the pass the remembered sets form the solution.  The approximation is
O(√n) — which is optimal for single-pass Õ(n)-space algorithms — and E11 uses
it as the "small space, weak approximation" end of the tradeoff curve.

The pass is one batched kernel call.  The seed's per-set loop keeps, for each
element, a running strict maximum of the sizes of the sets containing it and
credits the element to the set that last raised that maximum — i.e. to the
*first set in arrival order achieving the maximum size*.  Folding the arrival
position into a per-set priority key turns the whole pass into a single
:meth:`~repro.kernels.base.Kernel.claim_resolution` argmax, byte-identical to
the sequential bookkeeping on both kernel backends.
"""

from __future__ import annotations

from typing import List, Optional

from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream
from repro.utils.bitset import bitset_size


class EmekRosenSemiStreaming(StreamingAlgorithm):
    """One-pass semi-streaming set cover: per-element best-set bookkeeping."""

    name = "emek-rosen-semi-streaming"

    def __init__(self, space_budget: Optional[int] = None) -> None:
        super().__init__(space_budget=space_budget)

    def run(self, stream: SetStream) -> StreamingResult:
        n = stream.universe_size
        # For each element: (credited set index, credit size of that set) —
        # the retained state the space accounting charges, even though the
        # batched pass resolves all claims in one kernel call.
        self.space.set_usage("per_element_state", 2 * n)

        system = stream.batched_pass()
        kernel = system.kernel()
        m = system.num_sets
        sizes = kernel.set_sizes()
        # An element's final credit goes to the largest set containing it,
        # ties to the earliest arrival.  Encode both in one key: the size in
        # the high part, the (reversed) arrival position in the low part, so
        # a plain per-element argmax reproduces the sequential credit chain.
        # Size-0 sets keep key 0 and never claim, as in the per-set loop.
        keys: List[int] = [0] * m
        for position, set_index in enumerate(stream.arrival_order):
            size = sizes[set_index]
            if size:
                keys[set_index] = size * m + (m - 1 - position)
        responsible = kernel.claim_resolution(keys)

        solution = sorted({index for index in responsible if index >= 0})
        self.space.set_usage("solution", len(solution))
        covered = system.coverage_mask(solution) if solution else 0
        metadata = {
            "uncovered_after_run": n - bitset_size(covered),
        }
        return self._finalize(stream, solution, metadata=metadata)
