"""Semi-streaming set cover in the spirit of Emek and Rosén (ICALP 2014).

One pass, Õ(n) space: for every element the algorithm remembers the best
"effectiveness" set seen so far (a set's effectiveness for an element is the
reciprocal of the number of new elements it would be credited with).  At the
end of the pass the remembered sets form the solution.  The approximation is
O(√n) — which is optimal for single-pass Õ(n)-space algorithms — and E11 uses
it as the "small space, weak approximation" end of the tradeoff curve.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream
from repro.utils.bitset import bitset_size, bitset_to_set


class EmekRosenSemiStreaming(StreamingAlgorithm):
    """One-pass semi-streaming set cover: per-element best-set bookkeeping."""

    name = "emek-rosen-semi-streaming"

    def __init__(self, space_budget: Optional[int] = None) -> None:
        super().__init__(space_budget=space_budget)

    def run(self, stream: SetStream) -> StreamingResult:
        n = stream.universe_size
        # For each element: (credited set index, credit size of that set).
        responsible: Dict[int, int] = {}
        credit_size: Dict[int, int] = {}
        self.space.set_usage("per_element_state", 2 * n)

        for set_index, mask in stream.iterate_pass():
            size = bitset_size(mask)
            if size == 0:
                continue
            # The set claims every element for which it beats the current
            # credit (larger claimed chunks are better).
            claimable = [
                element
                for element in bitset_to_set(mask)
                if credit_size.get(element, 0) < size
            ]
            if not claimable:
                continue
            for element in claimable:
                responsible[element] = set_index
                credit_size[element] = size

        solution = sorted(set(responsible.values()))
        self.space.set_usage("solution", len(solution))
        covered = stream.system.coverage_mask(solution) if solution else 0
        metadata = {
            "uncovered_after_run": n - bitset_size(covered),
        }
        return self._finalize(stream, solution, metadata=metadata)
