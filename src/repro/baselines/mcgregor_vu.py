"""Single-pass (1 − 1/e)-approximate maximum coverage (McGregor–Vu style).

McGregor and Vu (ICDT 2017) — cited by the paper as [42] — give single-pass
max-coverage algorithms in Õ(m) space with a (1 − 1/e)-approximation, and
show that beating (1 − 1/e) requires Ω̃(m) space while a (1 − ε) guarantee
needs the full m/ε² (the paper's Result 2 pins the ε-dependence down).

This baseline implements the Õ(m)-space flavour: every set is replaced by a
fixed-size uniform *sketch* of its elements (plus its true cardinality) and
greedy runs over the sketches.  With k = O(1) and logarithmic sketch sizes
the guarantee degrades gracefully, which is what E10-style comparisons need —
a small-space algorithm that cannot reach (1 − ε) for small ε.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.setcover.instance import SetSystem
from repro.setcover.maxcover import greedy_max_coverage
from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream
from repro.utils.bitset import bitset_from_iterable, bitset_size
from repro.utils.rng import SeedLike, spawn_rng


class McGregorVuMaxCoverage(StreamingAlgorithm):
    """Single-pass max coverage over per-set element sketches.

    Parameters
    ----------
    k:
        Number of sets to select.
    sketch_size:
        Elements retained per set (the Õ(1) per-set space of the Õ(m)-space
        regime).  Larger sketches improve the estimate towards greedy's
        (1−1/e) guarantee.
    """

    name = "mcgregor-vu-maxcover"

    def __init__(
        self,
        k: int,
        sketch_size: int = 32,
        seed: SeedLike = None,
        space_budget: Optional[int] = None,
    ) -> None:
        super().__init__(space_budget=space_budget)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if sketch_size < 1:
            raise ValueError(f"sketch_size must be >= 1, got {sketch_size}")
        self.k = k
        self.sketch_size = sketch_size
        self._rng = spawn_rng(seed)

    def run(self, stream: SetStream) -> StreamingResult:
        n = stream.universe_size
        m = stream.num_sets
        sketches: List[int] = [0] * m
        true_sizes: Dict[int, int] = {}
        stored = 0
        system = stream.batched_pass()
        kernel = system.kernel()
        sizes = kernel.set_sizes()
        # Element identities are only needed for the sets that actually get
        # down-sampled; everything at or under the sketch size keeps its mask
        # verbatim.  One batched unpack serves exactly the oversized sets.
        oversized = [i for i in range(m) if sizes[i] > self.sketch_size]
        element_lists = (
            dict(zip(oversized, kernel.element_lists(oversized))) if oversized else {}
        )
        for set_index in stream.arrival_order:
            size = sizes[set_index]
            true_sizes[set_index] = size
            if size > self.sketch_size:
                # The seed draws the sample from the iteration order of a
                # Python set built by ascending insertion; rebuilding that
                # set from the kernel's ascending element list reproduces
                # the exact order, hence the exact rng.sample stream.
                elements = list(set(element_lists[set_index]))
                elements = self._rng.sample(elements, self.sketch_size)
                sketches[set_index] = bitset_from_iterable(elements)
                stored += self.sketch_size + 1
            else:
                sketches[set_index] = system.mask(set_index)
                stored += size + 1
            self.space.set_usage("sketches", stored)

        sketch_system = SetSystem.from_masks(n, sketches)
        chosen, sketch_value = greedy_max_coverage(sketch_system, self.k)

        # Rescale the sketch coverage: each chosen set's sketch represents
        # true_size / sketch_len of its elements.  This is a biased estimate
        # (overlaps are under-counted), reported as-is — the point of the
        # baseline is its small space, not estimate quality.
        estimate = 0.0
        seen = 0
        for index in chosen:
            sketch_len = bitset_size(sketches[index]) or 1
            new_in_sketch = bitset_size(sketches[index] & ~seen)
            estimate += new_in_sketch * (true_sizes.get(index, 0) / sketch_len)
            seen |= sketches[index]
        metadata = {
            "k": self.k,
            "sketch_size": self.sketch_size,
            "sketch_coverage": sketch_value,
        }
        return self._finalize(
            stream, chosen, estimated_value=estimate, metadata=metadata
        )
