"""Two-party protocols for the maximum coverage problem (k sets, value goal).

* :class:`FullExchangeMaxCoverProtocol` — Alice ships everything, Bob solves
  exactly; Θ(m·n) bits.
* :class:`SampledMaxCoverProtocol` — shared element sample of size
  Θ(k·log m/ε²); Alice ships only projections, so the cost is Θ(m/ε²·log n)
  bits, matching the shape of the Theorem 4/5 lower bound Ω̃(m/ε²) and of the
  upper bounds of Bateni et al. / McGregor–Vu the paper cites.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.communication.model import Message, Protocol, Transcript, TwoPartyProtocol
from repro.communication.protocols.setcover_protocol import SetCoverInput, merge_inputs
from repro.core.element_sampling import element_sample
from repro.setcover.instance import SetSystem
from repro.setcover.maxcover import exact_max_coverage, greedy_max_coverage
from repro.utils.bitset import bitset_from_iterable, bitset_to_set
from repro.utils.rng import SeedLike, spawn_rng


class FullExchangeMaxCoverProtocol(TwoPartyProtocol):
    """Alice sends her sets; Bob solves max coverage exactly and outputs the value."""

    name = "maxcover-full-exchange"

    def __init__(self, k: int, solver: str = "exact") -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if solver not in ("exact", "greedy"):
            raise ValueError(f"solver must be 'exact' or 'greedy', got {solver!r}")
        self.k = k
        self.solver = solver

    def alice_round(
        self,
        alice_input: SetCoverInput,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        payload = [
            (index, sorted(bitset_to_set(mask)))
            for index, mask in sorted(alice_input.sets.items())
        ]
        return payload, None

    def bob_round(
        self,
        bob_input: SetCoverInput,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        alice_sets = {
            index: bitset_from_iterable(elements)
            for index, elements in received[0].payload
        }
        alice_input = SetCoverInput(bob_input.universe_size, alice_sets)
        system, _order = merge_inputs(alice_input, bob_input)
        if self.solver == "exact":
            _, value = exact_max_coverage(system, self.k)
        else:
            _, value = greedy_max_coverage(system, self.k)
        return value, value


class SampledMaxCoverProtocol(Protocol):
    """Element-sampling protocol: Õ(m/ε²) bits for a (1±ε) estimate.

    A shared random sample of the universe of size ≈ c·k·log(m)/ε² is fixed by
    public randomness; Alice sends her sets' projections onto the sample; Bob
    solves max coverage on the projected instance and rescales the sampled
    value by the inverse sampling rate.
    """

    name = "maxcover-sampled"

    def __init__(
        self,
        k: int,
        epsilon: float,
        sampling_constant: float = 4.0,
        solver: str = "exact",
        seed: SeedLike = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
        self.k = k
        self.epsilon = epsilon
        self.sampling_constant = sampling_constant
        self.solver = solver
        self._rng = spawn_rng(seed)

    def sampling_rate(self, universe_size: int, num_sets: int) -> float:
        """Per-element keep probability Θ(k·log m/(ε²·n))."""
        if universe_size <= 0:
            return 1.0
        log_m = math.log(max(num_sets, 2))
        rate = self.sampling_constant * self.k * log_m / (self.epsilon ** 2 * universe_size)
        return min(1.0, rate)

    def execute(
        self, alice_input: SetCoverInput, bob_input: SetCoverInput
    ) -> Transcript:
        transcript = Transcript()
        n = alice_input.universe_size
        m = alice_input.num_sets + bob_input.num_sets
        rate = self.sampling_rate(n, m)
        sample = element_sample(range(n), rate, seed=self._rng.spawn())
        sample_mask = bitset_from_iterable(sample)
        transcript.public_randomness = sorted(sample)

        alice_projections = [
            (index, sorted(bitset_to_set(mask & sample_mask)))
            for index, mask in sorted(alice_input.sets.items())
        ]
        transcript.messages.append(Message(sender="alice", payload=alice_projections))

        projections = {
            index: bitset_from_iterable(elements)
            for index, elements in alice_projections
        }
        for index, mask in bob_input.sets.items():
            projections[index] = mask & sample_mask
        order = sorted(projections)
        system = SetSystem.from_masks(n, [projections[i] for i in order])
        if self.solver == "exact":
            chosen_local, sampled_value = exact_max_coverage(system, self.k)
        else:
            chosen_local, sampled_value = greedy_max_coverage(system, self.k)
        chosen = [order[i] for i in chosen_local]
        estimate = sampled_value / rate if rate > 0 else 0.0
        transcript.messages.append(
            Message(sender="bob", payload={"chosen": chosen, "estimate_x1000": int(estimate * 1000)})
        )
        transcript.output = estimate
        transcript.metadata = {
            "chosen": chosen,
            "sampled_value": sampled_value,
            "sampling_rate": rate,
            "sample_size": len(sample),
        }
        return transcript
