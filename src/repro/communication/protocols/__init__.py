"""Concrete two-party protocols.

* Disjointness / GHD: the trivial one-way protocols (baselines for the
  communication-cost experiments).
* Set cover: the full-exchange exact protocol and a two-party simulation of
  Algorithm 1 whose communication matches the paper's upper bound shape
  ``Õ(α · m · n^{1/α})``.
* Maximum coverage: full exchange and an element-sampling protocol with
  communication ``Õ(m/ε²)`` matching Theorem 4/5's shape.
"""

from repro.communication.protocols.disjointness import (
    TrivialDisjProtocol,
    IntersectionProbeProtocol,
)
from repro.communication.protocols.ghd import TrivialGHDProtocol
from repro.communication.protocols.setcover_protocol import (
    FullExchangeSetCoverProtocol,
    TwoPartyAlgorithmOneProtocol,
    SetCoverInput,
)
from repro.communication.protocols.maxcover_protocol import (
    FullExchangeMaxCoverProtocol,
    SampledMaxCoverProtocol,
)

__all__ = [
    "TrivialDisjProtocol",
    "IntersectionProbeProtocol",
    "TrivialGHDProtocol",
    "FullExchangeSetCoverProtocol",
    "TwoPartyAlgorithmOneProtocol",
    "SetCoverInput",
    "FullExchangeMaxCoverProtocol",
    "SampledMaxCoverProtocol",
]
