"""Protocols for the set disjointness problem.

Disjointness has (randomised) communication complexity Θ(t); the trivial
protocol below communicates Θ(t·log t) bits and is the baseline the E12
benchmark compares the information-cost lower bound against.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.communication.model import Message, TwoPartyProtocol, no_message
from repro.problems.disjointness import DisjointnessInstance


class TrivialDisjProtocol(TwoPartyProtocol):
    """Alice sends her entire set; Bob announces the answer."""

    name = "disj-trivial"

    def alice_round(
        self,
        alice_input: frozenset,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        return sorted(alice_input), None

    def bob_round(
        self,
        bob_input: frozenset,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        alice_set = set(received[0].payload)
        answer = "Yes" if not (alice_set & bob_input) else "No"
        return answer, answer


class IntersectionProbeProtocol(TwoPartyProtocol):
    """Bob sends his set size, then Alice sends her set and Bob answers.

    A deliberately slightly-interactive variant used by tests to exercise the
    multi-round transcript machinery (the extra round carries no information
    about the answer, so its information cost matches the trivial protocol's
    up to the size announcement).
    """

    name = "disj-probe"

    def alice_round(
        self,
        alice_input: frozenset,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        if not received:
            # First round: ask Bob for his size (send a probe bit).
            return True, None
        return sorted(alice_input), None

    def bob_round(
        self,
        bob_input: frozenset,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        if len(received) == 1:
            return len(bob_input), None
        alice_set = set(received[-1].payload)
        answer = "Yes" if not (alice_set & bob_input) else "No"
        return answer, answer


def correct_disjointness_answer(
    instance: DisjointnessInstance, output: Any
) -> bool:
    """Judge a protocol output against the true Disj answer."""
    expected = "Yes" if instance.is_disjoint else "No"
    return output == expected


def extract_inputs(instance: DisjointnessInstance) -> Tuple[frozenset, frozenset]:
    """Convert a :class:`DisjointnessInstance` into protocol inputs."""
    return instance.alice, instance.bob
