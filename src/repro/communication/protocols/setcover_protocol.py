"""Two-party protocols for the set cover problem.

``SetCover`` in the paper's Section 3: the 2m sets are partitioned between
Alice and Bob and the players must α-approximate the optimal cover size.

Two concrete protocols are provided:

* :class:`FullExchangeSetCoverProtocol` — Alice ships her whole input and Bob
  solves the instance exactly; cost Θ(m·n) bits.  This is the trivial
  protocol whose cost the paper's Theorem 3 shows cannot be beaten by more
  than the ``n^{1-1/α}`` factor.
* :class:`TwoPartyAlgorithmOneProtocol` — a communication-model simulation of
  Algorithm 1: shared public randomness fixes the sampled universes, each
  round Alice sends the projections of her sets (``Õ(m·n^{1/α})`` bits), Bob
  solves the sampled sub-instance offline and sends back the chosen indices
  and the updated uncovered universe.  Its cost exhibits the paper's upper
  bound shape ``Õ(α · m · n^{1/α} + n)`` and it outputs an
  (α+ε)-approximation of the optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.communication.model import Message, Protocol, Transcript, TwoPartyProtocol
from repro.core.element_sampling import element_sample, sampling_probability
from repro.setcover.exact import exact_set_cover
from repro.setcover.greedy import greedy_set_cover
from repro.setcover.instance import SetSystem
from repro.utils.bitset import bitset_from_iterable, bitset_size, bitset_to_set
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class SetCoverInput:
    """One player's share of a two-party set cover instance.

    ``sets`` maps the *global* set index to the set's bitset mask, so the two
    players' shares can be merged unambiguously and solutions refer to global
    indices.
    """

    universe_size: int
    sets: Dict[int, int]

    @property
    def num_sets(self) -> int:
        """Number of sets held by this player."""
        return len(self.sets)

    def as_system(self) -> SetSystem:
        """This player's sets alone, as a :class:`SetSystem` (local order)."""
        indices = sorted(self.sets)
        return SetSystem.from_masks(
            self.universe_size,
            [self.sets[i] for i in indices],
            [f"S{i}" for i in indices],
        )


def merge_inputs(alice: SetCoverInput, bob: SetCoverInput) -> Tuple[SetSystem, List[int]]:
    """Merge the two shares into one system; returns (system, global indices)."""
    if alice.universe_size != bob.universe_size:
        raise ValueError("the two players disagree on the universe size")
    merged = dict(alice.sets)
    for index, mask in bob.sets.items():
        if index in merged:
            raise ValueError(f"set index {index} appears on both sides")
        merged[index] = mask
    order = sorted(merged)
    system = SetSystem.from_masks(
        alice.universe_size, [merged[i] for i in order], [f"S{i}" for i in order]
    )
    return system, order


class FullExchangeSetCoverProtocol(TwoPartyProtocol):
    """Alice sends every set she holds; Bob solves exactly and outputs opt."""

    name = "setcover-full-exchange"

    def __init__(self, solver: str = "exact") -> None:
        if solver not in ("exact", "greedy"):
            raise ValueError(f"solver must be 'exact' or 'greedy', got {solver!r}")
        self.solver = solver

    def alice_round(
        self,
        alice_input: SetCoverInput,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        payload = [
            (index, sorted(bitset_to_set(mask)))
            for index, mask in sorted(alice_input.sets.items())
        ]
        return payload, None

    def bob_round(
        self,
        bob_input: SetCoverInput,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        alice_sets = {
            index: bitset_from_iterable(elements)
            for index, elements in received[0].payload
        }
        alice_input = SetCoverInput(bob_input.universe_size, alice_sets)
        system, _order = merge_inputs(alice_input, bob_input)
        if self.solver == "exact":
            solution = exact_set_cover(system)
        else:
            solution = greedy_set_cover(system)
        value = len(solution)
        return value, value


class TwoPartyAlgorithmOneProtocol(Protocol):
    """Communication-model simulation of Algorithm 1 (α-approximation).

    The protocol mirrors the streaming algorithm pass for pass:

    1. *Pruning:* Alice picks her sets covering ≥ n/(ε·õpt) uncovered
       elements and sends the resulting uncovered universe to Bob, who does
       the same and sends the universe back.
    2. *α sampling rounds:* a shared (public-randomness) element sample of the
       uncovered universe is fixed; Alice sends the projections of all her
       sets onto the sample; Bob, who now holds every projection, covers the
       sample offline, announces the chosen global indices, asks Alice for the
       full content of her chosen sets, and both players update the uncovered
       universe.

    The output is the total number of chosen sets — an (α+ε)-approximation of
    opt on coverable instances, with communication dominated by the α rounds
    of projections: ``Õ(α·m·n^{1/α}/ε)`` bits.
    """

    name = "setcover-two-party-algorithm1"

    def __init__(
        self,
        alpha: int,
        opt_guess: int,
        epsilon: float = 0.5,
        subinstance_solver: str = "exact",
        sampling_constant: float = 16.0,
        seed: SeedLike = None,
    ) -> None:
        if alpha < 1:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        if opt_guess < 1:
            raise ValueError(f"opt_guess must be >= 1, got {opt_guess}")
        self.alpha = alpha
        self.opt_guess = opt_guess
        self.epsilon = epsilon
        self.subinstance_solver = subinstance_solver
        self.sampling_constant = sampling_constant
        self._rng = spawn_rng(seed)

    def execute(
        self, alice_input: SetCoverInput, bob_input: SetCoverInput
    ) -> Transcript:
        transcript = Transcript()
        n = alice_input.universe_size
        m = alice_input.num_sets + bob_input.num_sets
        uncovered = (1 << n) - 1
        solution: List[int] = []
        rng = self._rng.spawn()
        transcript.public_randomness = "shared-element-samples"

        # -- pruning pass ----------------------------------------------------
        threshold = n / (self.epsilon * self.opt_guess)
        for player, inputs in (("alice", alice_input), ("bob", bob_input)):
            picked_here: List[int] = []
            for index in sorted(inputs.sets):
                mask = inputs.sets[index]
                if bitset_size(mask & uncovered) >= threshold:
                    picked_here.append(index)
                    uncovered &= ~mask
                    solution.append(index)
            # The player announces the picked indices and the new uncovered
            # universe; the universe is charged as an n-bit characteristic
            # vector (the encoding the paper's +n space term corresponds to).
            transcript.messages.append(
                Message(
                    sender=player,
                    payload={
                        "picked": picked_here,
                        "uncovered": sorted(bitset_to_set(uncovered)),
                    },
                    bits=n + 1 + len(picked_here) * max(1, (m).bit_length()),
                )
            )

        # -- alpha sampling rounds --------------------------------------------
        rho = n ** (-1.0 / self.alpha) if n > 1 else 0.5
        for _round in range(self.alpha):
            if uncovered == 0:
                break
            probability = sampling_probability(
                universe_size=n,
                num_sets=max(m, 2),
                cover_size_bound=self.opt_guess,
                rho=rho,
                constant=self.sampling_constant,
            )
            sample = element_sample(
                bitset_to_set(uncovered), probability, seed=rng.spawn()
            )
            sample_mask = bitset_from_iterable(sample)

            # Alice ships her projections onto the shared sample.
            alice_projections = {
                index: sorted(bitset_to_set(mask & sample_mask))
                for index, mask in sorted(alice_input.sets.items())
            }
            transcript.messages.append(
                Message(
                    sender="alice",
                    payload=[(i, els) for i, els in alice_projections.items()],
                )
            )

            # Bob covers the sample offline using all projections.
            projections = {
                index: bitset_from_iterable(elements)
                for index, elements in alice_projections.items()
            }
            for index, mask in bob_input.sets.items():
                projections[index] = mask & sample_mask
            order = sorted(projections)
            sampled_system = SetSystem.from_masks(
                n, [projections[i] for i in order]
            )
            target = sample_mask
            for chosen_index in solution:
                if chosen_index in projections:
                    target &= ~projections[chosen_index]
            coverable = 0
            for mask in projections.values():
                coverable |= mask
            target &= coverable
            if target:
                if self.subinstance_solver == "exact":
                    local_solution = exact_set_cover(sampled_system, target_mask=target)
                else:
                    local_solution = greedy_set_cover(sampled_system, required_mask=target)
                round_choice = [order[i] for i in local_solution]
            else:
                round_choice = []
            transcript.messages.append(
                Message(sender="bob", payload={"chosen": round_choice})
            )

            # Alice reveals the full content of her chosen sets so both
            # players can shrink the uncovered universe identically.
            revealed = [
                (index, sorted(bitset_to_set(alice_input.sets[index])))
                for index in round_choice
                if index in alice_input.sets
            ]
            transcript.messages.append(Message(sender="alice", payload=revealed))
            for index in round_choice:
                if index not in solution:
                    solution.append(index)
                full_mask = alice_input.sets.get(index, bob_input.sets.get(index, 0))
                uncovered &= ~full_mask

        # -- clean-up: guarantee feasibility on coverable instances -----------
        if uncovered:
            for player, inputs in (("alice", alice_input), ("bob", bob_input)):
                extra: List[Tuple[int, List[int]]] = []
                for index in sorted(inputs.sets):
                    if uncovered == 0:
                        break
                    if index in solution:
                        continue
                    mask = inputs.sets[index]
                    if mask & uncovered:
                        solution.append(index)
                        uncovered &= ~mask
                        extra.append((index, sorted(bitset_to_set(mask))))
                if extra:
                    transcript.messages.append(
                        Message(sender=player, payload={"cleanup": extra})
                    )

        transcript.output = len(solution)
        transcript.metadata = {
            "solution": solution,
            "uncovered": bitset_size(uncovered),
            "alpha": self.alpha,
            "opt_guess": self.opt_guess,
        }
        return transcript


def predicted_protocol_cost_bits(
    universe_size: int, num_sets: int, alpha: int, epsilon: float = 0.5
) -> float:
    """Predicted Õ(α·m·n^{1/α}/ε + n) bit cost of the Algorithm-1 protocol."""
    n = max(universe_size, 2)
    m = max(num_sets, 2)
    log_n = math.log2(n)
    return (
        alpha * 16 * m * n ** (1.0 / alpha) * math.log(m) / epsilon * log_n / n ** 0.0
        + n * log_n
    )
