"""Protocols for the gap-hamming-distance problem."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.communication.model import Message, TwoPartyProtocol
from repro.problems.ghd import GHDInstance, ghd_answer


class TrivialGHDProtocol(TwoPartyProtocol):
    """Alice sends her entire set; Bob computes Δ(A, B) and answers.

    Communicates Θ(t·log t) bits — the baseline against which the Ω(t)
    information-complexity lower bound (Lemma 4.1 / 4.2) is compared in E10.
    """

    name = "ghd-trivial"

    def alice_round(
        self,
        alice_input: frozenset,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        return sorted(alice_input), None

    def bob_round(
        self,
        bob_input: frozenset,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        alice_set = frozenset(received[0].payload)
        t = state.get("t", 0)
        distance = len(alice_set ^ bob_input)
        threshold = t ** 0.5 if t else 0
        if t and distance >= t / 2 + threshold:
            answer = "Yes"
        elif t and distance <= t / 2 - threshold:
            answer = "No"
        else:
            # Inside the promise gap any answer is allowed; report the side
            # the distance leans towards so deterministic tests are stable.
            answer = "Yes" if t and distance >= t / 2 else "No"
        return answer, answer

    def setup(self, alice_input: Any, bob_input: Any) -> Dict[str, Any]:
        # The universe size t is shared knowledge; infer the smallest
        # consistent t so instances do not need to carry it separately.
        maximum = max([-1] + list(alice_input) + list(bob_input))
        return {"t": maximum + 1}


class SizedGHDProtocol(TrivialGHDProtocol):
    """Variant that takes (t, set) inputs so the promise threshold is exact."""

    name = "ghd-trivial-sized"

    def setup(self, alice_input: Any, bob_input: Any) -> Dict[str, Any]:
        t_alice, _ = alice_input
        return {"t": t_alice}

    def alice_round(self, alice_input, received, state):
        _, alice_set = alice_input
        return sorted(alice_set), None

    def bob_round(self, bob_input, received, state):
        _, bob_set = bob_input
        return super().bob_round(bob_set, received, state)


def correct_ghd_answer(instance: GHDInstance, output: Any) -> bool:
    """Judge a protocol output against the GHD promise (gap answers are free)."""
    expected = ghd_answer(instance)
    if expected == "*":
        return output in ("Yes", "No")
    return output == expected
