"""Core abstractions of the two-party communication model.

A :class:`TwoPartyProtocol` is driven by :func:`run_protocol`: the players
alternate (or follow any round structure the protocol chooses) by returning
:class:`Message` objects until one of them produces the output.  The
transcript records every message and its length in bits, which is what the
communication-cost accounting and the streaming-to-communication reductions
(Theorem 1's final step) consume.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ProtocolError


def payload_bits(payload: Any) -> int:
    """Number of bits needed to encode a message payload.

    The encoding rules are deliberately simple and consistent so costs are
    comparable across protocols:

    * ``bool`` — 1 bit;
    * ``int`` — its binary length (at least 1);
    * ``str`` — 8 bits per character;
    * set/frozenset/list/tuple of ints — sum of element costs plus a length
      word;
    * anything else — 64 bits per item as a conservative default.
    """
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length())
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (set, frozenset, list, tuple)):
        length_word = max(1, math.ceil(math.log2(len(payload) + 2)))
        return length_word + sum(payload_bits(item) for item in payload)
    if payload is None:
        return 1
    return 64


@dataclass
class Message:
    """One message exchanged during a protocol run."""

    sender: str  # "alice" or "bob"
    payload: Any
    bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sender not in ("alice", "bob"):
            raise ProtocolError(f"unknown sender {self.sender!r}")
        if self.bits is None:
            self.bits = payload_bits(self.payload)
        if self.bits < 0:
            raise ProtocolError(f"message bit-length must be non-negative, got {self.bits}")


@dataclass
class Transcript:
    """The full record of a protocol run."""

    messages: List[Message] = field(default_factory=list)
    output: Any = None
    public_randomness: Any = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        """Total communication cost of the run in bits."""
        return sum(message.bits or 0 for message in self.messages)

    @property
    def rounds(self) -> int:
        """Number of messages exchanged."""
        return len(self.messages)

    def as_symbol(self) -> Tuple:
        """A hashable rendering of the transcript (for information-cost joints)."""
        return tuple((m.sender, _freeze(m.payload)) for m in self.messages) + (
            ("output", _freeze(self.output)),
        )


def _freeze(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value))
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


class Protocol(abc.ABC):
    """Base class for anything that can be run to produce a transcript."""

    #: Human-readable protocol name used in experiment tables.
    name: str = "protocol"

    @abc.abstractmethod
    def execute(self, alice_input: Any, bob_input: Any) -> Transcript:
        """Run the protocol on the given inputs and return the transcript."""


class TwoPartyProtocol(Protocol):
    """A protocol expressed as explicit Alice/Bob steps.

    Subclasses implement :meth:`alice_round` and :meth:`bob_round`; each is
    called with the player's private input, the list of messages received so
    far, and a per-run scratch state dict.  Returning ``(payload, None)``
    sends a message; returning ``(payload, output)`` sends the final message
    and declares the output.  :func:`run_protocol` alternates starting with
    Alice until an output is declared or ``max_rounds`` is hit.
    """

    max_rounds: int = 64

    def setup(self, alice_input: Any, bob_input: Any) -> Dict[str, Any]:
        """Hook for public randomness / shared precomputation (default: none)."""
        return {}

    @abc.abstractmethod
    def alice_round(
        self,
        alice_input: Any,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        """Alice's next message (payload, output-or-None)."""

    @abc.abstractmethod
    def bob_round(
        self,
        bob_input: Any,
        received: List[Message],
        state: Dict[str, Any],
    ) -> Tuple[Any, Optional[Any]]:
        """Bob's next message (payload, output-or-None)."""

    def execute(self, alice_input: Any, bob_input: Any) -> Transcript:
        return run_protocol(self, alice_input, bob_input)


def run_protocol(
    protocol: TwoPartyProtocol, alice_input: Any, bob_input: Any
) -> Transcript:
    """Drive a :class:`TwoPartyProtocol` until it declares an output."""
    transcript = Transcript()
    state = protocol.setup(alice_input, bob_input)
    transcript.public_randomness = state.get("public_randomness")
    for round_index in range(protocol.max_rounds):
        if round_index % 2 == 0:
            payload, output = protocol.alice_round(alice_input, transcript.messages, state)
            sender = "alice"
        else:
            payload, output = protocol.bob_round(bob_input, transcript.messages, state)
            sender = "bob"
        if payload is not _NO_MESSAGE:
            transcript.messages.append(Message(sender=sender, payload=payload))
        if output is not None:
            transcript.output = output
            return transcript
    raise ProtocolError(
        f"protocol {protocol.name!r} did not terminate within {protocol.max_rounds} rounds"
    )


class _NoMessage:
    """Sentinel: a round that sends nothing (used by silent turns)."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<no message>"


_NO_MESSAGE = _NoMessage()


def no_message() -> Any:
    """Return the sentinel meaning 'this round sends no message'."""
    return _NO_MESSAGE
