"""Communication cost accounting over collections of transcripts.

Definition 1 of the paper: the communication cost of a protocol on a
distribution is the *worst-case* transcript length; the communication
complexity of a problem is the minimum over δ-error protocols.  The helpers
here compute worst-case and average costs over sampled inputs, which is how
the E6/E10 benchmarks report the cost of the concrete protocols.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from repro.communication.model import Protocol, Transcript


def transcript_bits(transcript: Transcript) -> int:
    """Total bit-length of one transcript."""
    return transcript.total_bits


def worst_case_communication(transcripts: Iterable[Transcript]) -> int:
    """Maximum transcript length over the given runs (Definition 1)."""
    costs = [t.total_bits for t in transcripts]
    if not costs:
        raise ValueError("need at least one transcript")
    return max(costs)


def average_communication(transcripts: Iterable[Transcript]) -> float:
    """Average transcript length over the given runs."""
    costs = [t.total_bits for t in transcripts]
    if not costs:
        raise ValueError("need at least one transcript")
    return sum(costs) / len(costs)


def evaluate_protocol(
    protocol: Protocol,
    instances: Sequence[Tuple[object, object]],
    correct: Callable[[Tuple[object, object], object], bool],
) -> Tuple[float, int, float]:
    """Run a protocol over sampled instances and summarise it.

    Returns ``(error_rate, worst_case_bits, average_bits)`` where ``correct``
    judges the protocol output against each ``(alice_input, bob_input)`` pair.
    """
    if not instances:
        raise ValueError("need at least one instance")
    transcripts: List[Transcript] = []
    errors = 0
    for alice_input, bob_input in instances:
        transcript = protocol.execute(alice_input, bob_input)
        transcripts.append(transcript)
        if not correct((alice_input, bob_input), transcript.output):
            errors += 1
    return (
        errors / len(instances),
        worst_case_communication(transcripts),
        average_communication(transcripts),
    )
