"""Two-party communication model substrate.

Implements Yao's two-party model as used throughout the paper's lower-bound
section: Alice and Bob hold private inputs, exchange messages in rounds, and
the communication cost of a run is the total bit-length of the transcript.
Concrete protocols for set disjointness, gap-hamming-distance, and the
two-party set cover / maximum coverage problems live in
:mod:`repro.communication.protocols`.
"""

from repro.communication.model import (
    Message,
    Transcript,
    Protocol,
    TwoPartyProtocol,
    run_protocol,
)
from repro.communication.cost import (
    transcript_bits,
    worst_case_communication,
    average_communication,
)

__all__ = [
    "Message",
    "Transcript",
    "Protocol",
    "TwoPartyProtocol",
    "run_protocol",
    "transcript_bits",
    "worst_case_communication",
    "average_communication",
]
