"""Information cost of concrete communication protocols.

Definition 2 of the paper: the internal information cost of a protocol π on a
distribution D over inputs (X, Y) is ``I(Π : X | Y) + I(Π : Y | X)`` where Π
is the transcript (including public randomness).

For the concrete, deterministic-given-randomness protocols implemented in
:mod:`repro.communication`, the transcript is a deterministic function of the
inputs and the (enumerable) randomness, so on a small input distribution the
information cost can be computed *exactly* by building the joint distribution
of (X, Y, Π) and applying the exact mutual-information formulas.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, Sequence, Tuple

from repro.infotheory.distributions import JointDistribution
from repro.infotheory.entropy import conditional_mutual_information


def transcript_information_cost(joint: JointDistribution) -> float:
    """Internal information cost from an explicit (X, Y, Pi) joint.

    The joint must have variables named ``"X"``, ``"Y"`` and ``"Pi"``.
    """
    for required in ("X", "Y", "Pi"):
        if required not in joint.variables:
            raise ValueError(f"joint must contain variable {required!r}")
    return conditional_mutual_information(joint, ["Pi"], ["X"], ["Y"]) + (
        conditional_mutual_information(joint, ["Pi"], ["Y"], ["X"])
    )


def internal_information_cost(
    input_distribution: Iterable[Tuple[Hashable, Hashable, float]],
    transcript_fn: Callable[[Hashable, Hashable], Hashable],
) -> float:
    """Exact internal information cost of a deterministic protocol.

    Parameters
    ----------
    input_distribution:
        Iterable of ``(x, y, probability)`` triples describing the input
        distribution D.
    transcript_fn:
        Deterministic mapping from inputs to the full transcript.  Randomized
        protocols should be handled by folding the public randomness into the
        transcript value and averaging externally (Claim 2.3 guarantees this
        matches the definition).
    """
    pmf = {}
    for x, y, probability in input_distribution:
        transcript = transcript_fn(x, y)
        key = (x, y, transcript)
        pmf[key] = pmf.get(key, 0.0) + probability
    joint = JointDistribution(["X", "Y", "Pi"], pmf)
    return transcript_information_cost(joint)


def information_cost_of_randomized_protocol(
    input_distribution: Sequence[Tuple[Hashable, Hashable, float]],
    randomness_values: Sequence[Tuple[Hashable, float]],
    transcript_fn: Callable[[Hashable, Hashable, Hashable], Hashable],
) -> float:
    """Information cost when the protocol also uses enumerable public randomness.

    Per Claim 2.3, the transcript "includes" the public randomness, so we fold
    the randomness value R into the transcript symbol ``(R, Π_R(x, y))`` and
    compute the internal information cost of the resulting joint.
    """
    pmf = {}
    for x, y, p_input in input_distribution:
        for r, p_r in randomness_values:
            transcript = (r, transcript_fn(x, y, r))
            key = (x, y, transcript)
            pmf[key] = pmf.get(key, 0.0) + p_input * p_r
    joint = JointDistribution(["X", "Y", "Pi"], pmf)
    return transcript_information_cost(joint)
