"""Finite discrete joint distributions over named variables.

A :class:`JointDistribution` assigns probability mass to tuples of values of
named random variables.  All information-theoretic quantities in the library
(entropy, mutual information, information cost) are computed exactly from
these objects, which keeps the reproduction of the paper's Appendix A facts
and Claim 2.3 free of sampling noise.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

Assignment = Tuple[Hashable, ...]


class JointDistribution:
    """A probability mass function over joint assignments of named variables.

    Parameters
    ----------
    variables:
        Ordered variable names, e.g. ``("A", "B", "Pi")``.
    pmf:
        Mapping from value tuples (same order as ``variables``) to
        probabilities.  Probabilities must be non-negative and sum to 1
        within ``tolerance``.
    """

    def __init__(
        self,
        variables: Sequence[str],
        pmf: Mapping[Assignment, float],
        tolerance: float = 1e-9,
    ) -> None:
        if len(set(variables)) != len(variables):
            raise ValueError("variable names must be distinct")
        self._variables: List[str] = list(variables)
        cleaned: Dict[Assignment, float] = {}
        total = 0.0
        for assignment, probability in pmf.items():
            if len(assignment) != len(self._variables):
                raise ValueError(
                    f"assignment {assignment!r} has {len(assignment)} values, "
                    f"expected {len(self._variables)}"
                )
            if probability < -tolerance:
                raise ValueError(f"negative probability {probability} for {assignment!r}")
            if probability <= 0:
                continue
            cleaned[tuple(assignment)] = cleaned.get(tuple(assignment), 0.0) + probability
            total += probability
        if abs(total - 1.0) > max(tolerance, 1e-6):
            raise ValueError(f"probabilities sum to {total}, expected 1")
        # Renormalise away accumulated floating point drift.
        self._pmf: Dict[Assignment, float] = {
            assignment: probability / total for assignment, probability in cleaned.items()
        }

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_samples(
        cls, variables: Sequence[str], samples: Iterable[Assignment]
    ) -> "JointDistribution":
        """Empirical distribution of the given samples."""
        counts: Dict[Assignment, float] = {}
        total = 0
        for sample in samples:
            counts[tuple(sample)] = counts.get(tuple(sample), 0.0) + 1.0
            total += 1
        if total == 0:
            raise ValueError("cannot build a distribution from zero samples")
        return cls(variables, {k: v / total for k, v in counts.items()})

    @classmethod
    def uniform(
        cls, variables: Sequence[str], support: Iterable[Assignment]
    ) -> "JointDistribution":
        """Uniform distribution over an explicit support."""
        support_list = [tuple(s) for s in support]
        if not support_list:
            raise ValueError("support must be non-empty")
        probability = 1.0 / len(support_list)
        pmf: Dict[Assignment, float] = {}
        for assignment in support_list:
            pmf[assignment] = pmf.get(assignment, 0.0) + probability
        return cls(variables, pmf)

    # -- accessors ---------------------------------------------------------
    @property
    def variables(self) -> List[str]:
        """Ordered variable names."""
        return list(self._variables)

    def probability(self, assignment: Assignment) -> float:
        """Probability of a full joint assignment (0 when outside the support)."""
        return self._pmf.get(tuple(assignment), 0.0)

    def support(self) -> List[Assignment]:
        """All assignments with positive probability."""
        return list(self._pmf.keys())

    def items(self) -> Iterable[Tuple[Assignment, float]]:
        """Iterate over (assignment, probability) pairs."""
        return self._pmf.items()

    def _indices(self, names: Sequence[str]) -> List[int]:
        indices = []
        for name in names:
            try:
                indices.append(self._variables.index(name))
            except ValueError as exc:
                raise KeyError(f"unknown variable {name!r}") from exc
        return indices

    # -- marginalisation and conditioning -----------------------------------
    def marginal(self, names: Sequence[str]) -> "JointDistribution":
        """Marginal distribution of the named variables (in the given order)."""
        indices = self._indices(names)
        pmf: Dict[Assignment, float] = {}
        for assignment, probability in self._pmf.items():
            key = tuple(assignment[i] for i in indices)
            pmf[key] = pmf.get(key, 0.0) + probability
        return JointDistribution(names, pmf)

    def condition(
        self, names: Sequence[str], values: Assignment
    ) -> "JointDistribution":
        """Distribution conditioned on ``names == values`` (same variable set)."""
        indices = self._indices(names)
        values = tuple(values)
        pmf: Dict[Assignment, float] = {}
        mass = 0.0
        for assignment, probability in self._pmf.items():
            if all(assignment[i] == values[j] for j, i in enumerate(indices)):
                pmf[assignment] = probability
                mass += probability
        if mass <= 0:
            raise ValueError(f"conditioning event {dict(zip(names, values))} has zero probability")
        return JointDistribution(
            self._variables, {k: v / mass for k, v in pmf.items()}
        )

    def map_variable(
        self, name: str, new_name: str, func: Callable[[Hashable], Hashable]
    ) -> "JointDistribution":
        """Apply a deterministic function to one variable (renaming it)."""
        index = self._indices([name])[0]
        new_variables = list(self._variables)
        new_variables[index] = new_name
        pmf: Dict[Assignment, float] = {}
        for assignment, probability in self._pmf.items():
            new_assignment = list(assignment)
            new_assignment[index] = func(assignment[index])
            key = tuple(new_assignment)
            pmf[key] = pmf.get(key, 0.0) + probability
        return JointDistribution(new_variables, pmf)

    def product(self, other: "JointDistribution") -> "JointDistribution":
        """Independent product of two joints over disjoint variable sets."""
        overlap = set(self._variables) & set(other._variables)
        if overlap:
            raise ValueError(f"variables overlap: {sorted(overlap)}")
        variables = self._variables + other._variables
        pmf: Dict[Assignment, float] = {}
        for a, pa in self._pmf.items():
            for b, pb in other._pmf.items():
                pmf[a + b] = pa * pb
        return JointDistribution(variables, pmf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JointDistribution(variables={self._variables}, "
            f"support_size={len(self._pmf)})"
        )
