"""The paper's Appendix A information-theory facts as checkable predicates.

Each ``check_fact_*`` function evaluates both sides of the corresponding
inequality/identity on a concrete :class:`JointDistribution` and returns a
:class:`FactCheck` recording the two sides and whether the fact holds (within
a numerical tolerance).  The property-based tests feed random joints through
these checks; the E12 benchmark reports them for the distributions appearing
in the lower-bound proofs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.infotheory.distributions import JointDistribution
from repro.infotheory.entropy import (
    conditional_entropy,
    conditional_mutual_information,
    entropy,
    mutual_information,
)

_TOLERANCE = 1e-7


@dataclass
class FactCheck:
    """Outcome of evaluating one information-theory fact."""

    name: str
    lhs: float
    rhs: float
    holds: bool

    def __bool__(self) -> bool:
        return self.holds


def check_fact_entropy_bounds(
    distribution: JointDistribution, variable: str
) -> FactCheck:
    """Fact A.1-(1): 0 <= H(A) <= log |supp(A)|."""
    h = entropy(distribution, [variable])
    support_size = len(distribution.marginal([variable]).support())
    upper = math.log2(support_size) if support_size > 0 else 0.0
    holds = -_TOLERANCE <= h <= upper + _TOLERANCE
    return FactCheck("A.1-(1) entropy bounds", h, upper, holds)


def check_fact_mi_nonnegative(
    distribution: JointDistribution, a: Sequence[str], b: Sequence[str]
) -> FactCheck:
    """Fact A.1-(2): I(A : B) >= 0."""
    value = mutual_information(distribution, list(a), list(b))
    return FactCheck("A.1-(2) MI non-negative", value, 0.0, value >= -_TOLERANCE)


def check_fact_conditioning_reduces_entropy(
    distribution: JointDistribution,
    a: str,
    b: Sequence[str],
    c: Sequence[str],
) -> FactCheck:
    """Fact A.1-(3): H(A | B, C) <= H(A | B)."""
    lhs = conditional_entropy(distribution, [a], list(b) + list(c))
    rhs = conditional_entropy(distribution, [a], list(b))
    return FactCheck("A.1-(3) conditioning reduces entropy", lhs, rhs, lhs <= rhs + _TOLERANCE)


def check_fact_chain_rule(
    distribution: JointDistribution,
    a: str,
    b: str,
    c: str,
) -> FactCheck:
    """Fact A.1-(4): I(A, B : C) = I(A : C) + I(B : C | A)."""
    lhs = mutual_information(distribution, [a, b], [c])
    rhs = mutual_information(distribution, [a], [c]) + conditional_mutual_information(
        distribution, [b], [c], [a]
    )
    return FactCheck("A.1-(4) chain rule", lhs, rhs, abs(lhs - rhs) <= 1e-6)


def check_fact_a2(
    distribution: JointDistribution,
    a: str,
    b: str,
    c: str,
    d: str,
) -> FactCheck:
    """Fact A.2: if A ⊥ D | C then I(A : B | C) <= I(A : B | C, D).

    The caller is responsible for supplying a distribution satisfying the
    independence premise; :func:`conditional_independence_gap` can verify it.
    """
    lhs = conditional_mutual_information(distribution, [a], [b], [c])
    rhs = conditional_mutual_information(distribution, [a], [b], [c, d])
    return FactCheck("A.2 conditioning increases MI", lhs, rhs, lhs <= rhs + 1e-6)


def check_fact_a3(
    distribution: JointDistribution,
    a: str,
    b: str,
    c: str,
    d: str,
) -> FactCheck:
    """Fact A.3: if A ⊥ D | B, C then I(A : B | C) >= I(A : B | C, D)."""
    lhs = conditional_mutual_information(distribution, [a], [b], [c])
    rhs = conditional_mutual_information(distribution, [a], [b], [c, d])
    return FactCheck("A.3 conditioning decreases MI", lhs, rhs, lhs >= rhs - 1e-6)


def check_fact_a4(
    distribution: JointDistribution,
    a: str,
    b: str,
    c: str,
) -> FactCheck:
    """Fact A.4: I(A : B | C) <= I(A : B) + H(C)."""
    lhs = conditional_mutual_information(distribution, [a], [b], [c])
    rhs = mutual_information(distribution, [a], [b]) + entropy(distribution, [c])
    return FactCheck("A.4 conditioning bounded by H(C)", lhs, rhs, lhs <= rhs + 1e-6)


def conditional_independence_gap(
    distribution: JointDistribution,
    a: str,
    d: str,
    given: Sequence[str],
) -> float:
    """Return I(A : D | given), which is 0 iff A ⊥ D | given.

    Used by tests to confirm that the premises of Facts A.2 / A.3 hold before
    asserting their conclusions.
    """
    return conditional_mutual_information(distribution, [a], [d], list(given))
