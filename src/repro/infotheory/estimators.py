"""Plug-in (empirical) estimators of entropy and mutual information.

Used where the exact joint distribution is too large to enumerate (e.g. the
information content of concrete protocol transcripts on sampled hard-
distribution instances): samples are binned into an empirical joint and the
exact formulas are applied to it.  The estimators are biased for small sample
sizes — the docstrings and tests note the direction of the bias.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence, Tuple

from repro.infotheory.distributions import JointDistribution
from repro.infotheory.entropy import entropy, mutual_information


def empirical_joint(
    variables: Sequence[str],
    samples: Iterable[Tuple[Hashable, ...]],
) -> JointDistribution:
    """Build the empirical joint distribution from samples."""
    return JointDistribution.from_samples(variables, samples)


def plugin_entropy(samples: Iterable[Hashable]) -> float:
    """Plug-in entropy of a single variable from samples (bits).

    The plug-in estimator under-estimates entropy in expectation (Jensen), so
    callers comparing against theoretical lower bounds should treat it as a
    conservative value.
    """
    joint = empirical_joint(["X"], [(s,) for s in samples])
    return entropy(joint, ["X"])


def plugin_mutual_information(
    samples: Iterable[Tuple[Hashable, Hashable]],
) -> float:
    """Plug-in mutual information between two variables from paired samples."""
    joint = empirical_joint(["X", "Y"], [(x, y) for x, y in samples])
    return mutual_information(joint, ["X"], ["Y"])
