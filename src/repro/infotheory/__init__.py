"""Information theory toolkit.

Exact Shannon entropy / mutual information on finite discrete joint
distributions, plug-in estimators from samples, and the information-theory
facts (Appendix A of the paper) as checkable numeric predicates.  These are
the quantities the paper's lower-bound proofs manipulate; the reproduction
computes them exactly at small scale to validate the identities the proofs
rely on.
"""

from repro.infotheory.distributions import JointDistribution
from repro.infotheory.entropy import (
    entropy,
    conditional_entropy,
    mutual_information,
    conditional_mutual_information,
)
from repro.infotheory.estimators import (
    empirical_joint,
    plugin_entropy,
    plugin_mutual_information,
)
from repro.infotheory.facts import (
    check_fact_entropy_bounds,
    check_fact_mi_nonnegative,
    check_fact_conditioning_reduces_entropy,
    check_fact_chain_rule,
    check_fact_a2,
    check_fact_a3,
    check_fact_a4,
)
from repro.infotheory.information_cost import (
    transcript_information_cost,
    internal_information_cost,
)
from repro.infotheory.odometer import (
    InformationOdometer,
    OdometerReading,
    truncate_at_budget,
)

__all__ = [
    "JointDistribution",
    "entropy",
    "conditional_entropy",
    "mutual_information",
    "conditional_mutual_information",
    "empirical_joint",
    "plugin_entropy",
    "plugin_mutual_information",
    "check_fact_entropy_bounds",
    "check_fact_mi_nonnegative",
    "check_fact_conditioning_reduces_entropy",
    "check_fact_chain_rule",
    "check_fact_a2",
    "check_fact_a3",
    "check_fact_a4",
    "transcript_information_cost",
    "internal_information_cost",
    "InformationOdometer",
    "OdometerReading",
    "truncate_at_budget",
]
