"""A per-round information odometer for concrete protocols (Lemma 3.6 context).

Braverman and Weinstein's "information odometer" lets two players keep a
running estimate of how much information their protocol has revealed so far,
and the paper (via Göös et al., Lemma 3.6) uses it to relate a protocol's
information cost on Yes- and No-instances: run the protocol, watch the
odometer, and abort once the revealed information exceeds a threshold.

For the small, exactly-enumerable distributions used in this reproduction we
do not need the interactive estimator: the cumulative information revealed
after each round can be computed *exactly* from the joint distribution of
(inputs, transcript prefix).  :class:`InformationOdometer` does precisely
that, and :func:`truncate_at_budget` implements the Lemma 3.6 construction —
a new protocol that aborts once the odometer passes a budget — whose error
and information cost the E12-style tests compare against the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

from repro.infotheory.distributions import JointDistribution
from repro.infotheory.entropy import conditional_mutual_information

InputTriple = Tuple[Hashable, Hashable, float]
TranscriptFn = Callable[[Hashable, Hashable], Sequence[Hashable]]


@dataclass
class OdometerReading:
    """Cumulative internal information revealed after a given round."""

    round_index: int
    revealed_to_bob: float  # I(prefix : X | Y)
    revealed_to_alice: float  # I(prefix : Y | X)

    @property
    def total(self) -> float:
        """Internal information cost of the prefix."""
        return self.revealed_to_bob + self.revealed_to_alice


class InformationOdometer:
    """Exact per-round information accounting for a deterministic protocol.

    Parameters
    ----------
    input_distribution:
        Triples ``(x, y, probability)`` describing the input distribution.
    transcript_fn:
        Maps an input pair to the *sequence* of messages the protocol sends
        (the full transcript, one entry per round).
    """

    def __init__(
        self,
        input_distribution: Sequence[InputTriple],
        transcript_fn: TranscriptFn,
    ) -> None:
        if not input_distribution:
            raise ValueError("input distribution must be non-empty")
        total = sum(p for _, _, p in input_distribution)
        if total <= 0:
            raise ValueError("input distribution has no mass")
        self._inputs = [(x, y, p / total) for x, y, p in input_distribution]
        self._transcript_fn = transcript_fn
        self._transcripts: Dict[Tuple[Hashable, Hashable], Tuple[Hashable, ...]] = {}
        for x, y, _ in self._inputs:
            self._transcripts[(x, y)] = tuple(transcript_fn(x, y))
        self._max_rounds = max(
            (len(t) for t in self._transcripts.values()), default=0
        )

    @property
    def max_rounds(self) -> int:
        """Length of the longest transcript over the support."""
        return self._max_rounds

    def _prefix_joint(self, rounds: int) -> JointDistribution:
        pmf: Dict[Tuple[Hashable, Hashable, Hashable], float] = {}
        for x, y, probability in self._inputs:
            prefix = self._transcripts[(x, y)][:rounds]
            key = (x, y, prefix)
            pmf[key] = pmf.get(key, 0.0) + probability
        return JointDistribution(["X", "Y", "Pi"], pmf)

    def reading_after(self, rounds: int) -> OdometerReading:
        """Exact cumulative information revealed by the first ``rounds`` messages."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        joint = self._prefix_joint(rounds)
        return OdometerReading(
            round_index=rounds,
            revealed_to_bob=conditional_mutual_information(joint, ["Pi"], ["X"], ["Y"]),
            revealed_to_alice=conditional_mutual_information(joint, ["Pi"], ["Y"], ["X"]),
        )

    def readings(self) -> List[OdometerReading]:
        """Readings after every round, from 0 up to the longest transcript."""
        return [self.reading_after(r) for r in range(self._max_rounds + 1)]

    def final_information_cost(self) -> float:
        """Internal information cost of the full protocol."""
        return self.reading_after(self._max_rounds).total


def truncate_at_budget(
    odometer: InformationOdometer,
    budget: float,
) -> int:
    """Return the largest round count whose cumulative information is ≤ budget.

    This is the (idealised, exactly-computed) stopping rule of the Lemma 3.6
    construction: the truncated protocol runs for this many rounds and then
    aborts with an arbitrary answer.  Monotonicity of the readings is
    guaranteed because a longer prefix reveals at least as much information.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    allowed = 0
    for reading in odometer.readings():
        if reading.total <= budget + 1e-9:
            allowed = reading.round_index
        else:
            break
    return allowed
