"""Exact entropy and mutual information on :class:`JointDistribution` objects.

All quantities are in bits (log base 2), matching the paper's convention where
``|A| := log |supp(A)|`` upper-bounds ``H(A)`` (Fact A.1-(1)).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.infotheory.distributions import JointDistribution


def _h(probabilities) -> float:
    total = 0.0
    for p in probabilities:
        if p > 0:
            total -= p * math.log2(p)
    return total


def entropy(distribution: JointDistribution, names: Sequence[str]) -> float:
    """Shannon entropy H(names) in bits."""
    marginal = distribution.marginal(list(names))
    return _h(p for _, p in marginal.items())


def conditional_entropy(
    distribution: JointDistribution,
    target: Sequence[str],
    given: Sequence[str],
) -> float:
    """Conditional entropy H(target | given) in bits.

    Computed as ``H(target, given) - H(given)``, which is numerically stable
    for the exact rational-ish pmfs used in the tests.
    """
    target = list(target)
    given = list(given)
    if not given:
        return entropy(distribution, target)
    joint = entropy(distribution, target + [g for g in given if g not in target])
    return joint - entropy(distribution, given)


def mutual_information(
    distribution: JointDistribution,
    a: Sequence[str],
    b: Sequence[str],
) -> float:
    """Mutual information I(a : b) = H(a) - H(a | b) in bits."""
    return entropy(distribution, a) - conditional_entropy(distribution, a, b)


def conditional_mutual_information(
    distribution: JointDistribution,
    a: Sequence[str],
    b: Sequence[str],
    given: Sequence[str],
) -> float:
    """Conditional mutual information I(a : b | given) in bits.

    Uses the identity ``I(A:B|C) = H(A|C) - H(A|B,C)``.
    """
    a = list(a)
    b = list(b)
    given = list(given)
    first = conditional_entropy(distribution, a, given)
    second = conditional_entropy(distribution, a, b + [g for g in given if g not in b])
    value = first - second
    # Clamp tiny negative values arising from floating point cancellation.
    if -1e-9 < value < 0:
        return 0.0
    return value
