"""Durability primitives: checksums and journal-based counter persistence.

Two building blocks the crash-safe store and hardened executor share:

* **Canonical checksums** — :func:`canonical_checksum` hashes the canonical
  JSON of a payload (sorted keys, compact separators), giving an end-to-end
  integrity check that is stable across processes and dict orderings.  Store
  entries carry one per entry (:func:`entry_checksum` excludes the checksum
  field itself and the advisory ``telemetry`` block); task payloads carry one
  across the worker IPC boundary when fault injection is active.

* **Stats journals** — a journal directory of per-writer files replaces the
  read-modify-write cycle on ``store_stats.json`` that loses updates under
  concurrent writers.  Each writer owns exactly one journal file (named by
  pid + random suffix) and atomically rewrites *its own file* with its
  session totals; nobody ever edits another writer's file, so there is no
  write-write race by construction.  Readers sum the legacy base file plus
  every journal (:func:`sum_journals`).

Example — checksums are order-independent, journals sum per writer::

    >>> canonical_checksum({"b": 2, "a": 1}) == canonical_checksum({"a": 1, "b": 2})
    True
    >>> import tempfile; from pathlib import Path
    >>> root = Path(tempfile.mkdtemp())
    >>> journal = StatsJournal(root, keys=("puts", "hits"))
    >>> _ = journal.write({"puts": 3, "hits": 1})
    >>> other = StatsJournal(root, keys=("puts", "hits"))
    >>> _ = other.write({"puts": 2, "hits": 0})
    >>> sum_journals(root, keys=("puts", "hits"))
    {'puts': 5, 'hits': 1}
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Union

PathLike = Union[str, Path]

#: Directory (under a store root) holding one journal file per writer.  The
#: ``.journal`` suffix keeps journal files invisible to the store's
#: ``*/*.json`` entry globs.
JOURNAL_DIRNAME = "stats_journal"

#: Suffix of journal files (JSON content; the suffix hides them from globs).
JOURNAL_SUFFIX = ".journal"


def canonical_json(payload: Any) -> str:
    """The canonical JSON form every checksum in the stack hashes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_checksum(payload: Any) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


#: Entry fields excluded from the entry checksum: the checksum itself, and
#: the advisory ``telemetry`` block — capture on vs off must store entries
#: whose checksums (like their result payloads) are byte-identical.
_ENTRY_CHECKSUM_EXCLUDED = ("checksum", "telemetry")


def entry_checksum(entry: Mapping[str, Any]) -> str:
    """Checksum of a store entry's durable fields.

    Excludes the entry's own ``checksum`` field and the advisory
    ``telemetry`` sibling, so a telemetry-capturing run and a silent run
    write entries with identical checksums over identical result bytes.
    """
    return canonical_checksum(
        {k: v for k, v in entry.items() if k not in _ENTRY_CHECKSUM_EXCLUDED}
    )


def atomic_write_json(path: Path, payload: Any, indent: Optional[int] = 2) -> Path:
    """Write JSON durably: unique tmp file in the same directory, then rename.

    ``os.replace`` is atomic on POSIX, so a reader never observes a partial
    file and a crash mid-write leaves at most a stray ``*.tmp`` — never a
    truncated final file.  The tmp name embeds pid + random suffix so
    concurrent writers of the same path each rename their own complete file.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.parent / f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    tmp_path.write_text(json.dumps(payload, indent=indent, sort_keys=True))
    tmp_path.replace(path)
    return path


class StatsJournal:
    """One writer's durable counter file inside a shared journal directory.

    Each instance owns a distinct file and only ever rewrites that file
    (atomically) with the writer's *cumulative* session totals — an
    overwrite-in-place ledger, not an append log, so repeated flushes are
    idempotent and crash-safe, and concurrent writers cannot clobber each
    other because they never share a path.
    """

    def __init__(self, root: PathLike, keys: Sequence[str]) -> None:
        self.root = Path(root)
        self.keys = tuple(keys)
        self.path = (
            self.root
            / JOURNAL_DIRNAME
            / f"{os.getpid()}-{uuid.uuid4().hex[:8]}{JOURNAL_SUFFIX}"
        )

    def write(self, totals: Mapping[str, int]) -> Path:
        """Atomically replace this writer's journal with ``totals``."""
        payload = {key: int(totals.get(key, 0)) for key in self.keys}
        return atomic_write_json(self.path, payload)


def iter_journal_files(root: PathLike) -> Iterable[Path]:
    """Every journal file under ``root``'s journal directory (sorted)."""
    directory = Path(root) / JOURNAL_DIRNAME
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"*{JOURNAL_SUFFIX}"))


def sum_journals(
    root: PathLike,
    keys: Sequence[str],
    base: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Aggregate view: ``base`` totals plus every journal file's counters.

    Unreadable journal files are skipped (a torn journal loses at most that
    writer's delta, never the whole ledger).  The result carries every key in
    ``keys`` with missing values read as 0.
    """
    totals = {key: int((base or {}).get(key, 0)) for key in keys}
    for path in iter_journal_files(root):
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(raw, dict):
            continue
        for key in keys:
            totals[key] += int(raw.get(key, 0))
    return totals


__all__ = [
    "JOURNAL_DIRNAME",
    "JOURNAL_SUFFIX",
    "StatsJournal",
    "atomic_write_json",
    "canonical_checksum",
    "canonical_json",
    "entry_checksum",
    "iter_journal_files",
    "sum_journals",
]
