"""Chaos harness: run a workload under faults, assert byte-identical output.

The harness is the resilience layer's proof obligation.  It runs the same
task list twice against two fresh result stores:

1. **clean** — serial, faults force-disabled (:func:`install_plan` with
   ``None``), the reference output;
2. **chaos** — sharded across workers under a seeded
   :class:`~repro.resilience.faults.FaultPlan` (exported through
   ``REPRO_FAULTS`` so pool workers inherit the schedule), with the ambient
   retry policy doing the recovering;

then diffs the stores entry by entry: same fingerprints, and for each
fingerprint the canonical JSON of the stored ``result`` payload must be
byte-identical.  Failures may cost retries, respawns, and quarantined files —
they must never change bytes.

``repro chaos`` is the CLI face of :func:`run_chaos`;
``benchmarks/bench_resilience.py`` reuses it for the CI chaos gate.

Example — a tiny grid survives a crashy schedule with parity::

    >>> report = run_chaos(["E1"], faults="seed=3,executor.submit:raise:0.5",
    ...                    workers=1)
    >>> report.parity
    True
    >>> report.tasks >= 1
    True
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.resilience.durability import canonical_json
from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    install_plan,
    parse_fault_spec,
)
from repro.resilience.policy import RETRY_ENV_VAR, RetryPolicy

#: The fault schedule ``repro chaos`` applies when ``--faults`` is not given:
#: a 20% worker-crash rate plus torn store writes and transient mid-pass
#: failures — every recovery path in one run, still terminating (until=1).
DEFAULT_CHAOS_SPEC = (
    "seed=1,executor.submit:crash:0.2,executor.submit:raise:0.2,"
    "store.put:torn:0.3,engine.pass:raise:0.1"
)


@dataclass
class ChaosReport:
    """The verdict of one chaos run: parity plus the recovery bookkeeping."""

    scenarios: Tuple[str, ...]
    tasks: int
    workers: int
    fault_spec: str
    parity: bool
    mismatched: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    extra: List[str] = field(default_factory=list)
    clean_stats: Dict[str, int] = field(default_factory=dict)
    chaos_stats: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def quarantined(self) -> int:
        """How many corrupt entries the chaos store quarantined."""
        return self.chaos_stats.get("quarantined", 0)

    def render(self) -> str:
        """Human-readable summary (what ``repro chaos`` prints)."""
        lines = [
            f"chaos: {len(self.scenarios)} scenario(s), {self.tasks} task(s), "
            f"workers={self.workers}",
            f"faults: {self.fault_spec}",
            f"parity: {'OK — chaos store byte-identical to clean serial run' if self.parity else 'FAILED'}",
        ]
        if not self.parity:
            for name, keys in (
                ("mismatched", self.mismatched),
                ("missing", self.missing),
                ("extra", self.extra),
            ):
                if keys:
                    lines.append(f"  {name}: {', '.join(sorted(keys)[:8])}")
        lines.append(
            "recovery: "
            f"faults_injected={self.counters.get('fault.injected', 0)} "
            f"retries={self.counters.get('retry.attempts', 0)} "
            f"respawns={self.counters.get('executor.pool_respawns', 0)} "
            f"quarantined={self.quarantined} "
            f"degradations={self.counters.get('degrade.total', 0)}"
        )
        return "\n".join(lines)


def _expand_tasks(names: Sequence[str], seed: Optional[int] = None) -> List[Any]:
    """Resolve scenario names / experiment ids / tags to a task list."""
    # Imported lazily: repro.runtime imports this package at module load.
    from repro.runtime import SCENARIO_REGISTRY, get_scenario, iter_scenarios, tasks_from_scenario

    tasks: List[Any] = []
    for name in names:
        if name in SCENARIO_REGISTRY:
            specs = [get_scenario(name)]
        elif name.upper() in SCENARIO_REGISTRY:
            specs = [get_scenario(name.upper())]
        else:
            specs = list(iter_scenarios(tag=name))
            if not specs:
                raise KeyError(
                    f"unknown scenario, experiment, or tag {name!r}; "
                    "run 'repro scenarios' to see the options"
                )
        for spec in specs:
            tasks.extend(tasks_from_scenario(spec, seed_override=seed))
    return tasks


def _store_payloads(root: Path) -> Dict[str, str]:
    """Map fingerprint → canonical JSON of the stored ``result`` payload.

    Only the result payload is compared: telemetry blocks and checksums are
    siblings that legitimately differ between capturing and non-capturing
    runs; the parity contract is about the *science* bytes.
    """
    payloads: Dict[str, str] = {}
    for path in sorted(Path(root).glob("*/*.json")):
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(entry, dict) and "fingerprint" in entry:
            payloads[entry["fingerprint"]] = canonical_json(entry.get("result"))
    return payloads


def run_chaos(
    scenarios: Sequence[str],
    faults: Union[str, FaultPlan, None] = None,
    seed: Optional[int] = None,
    workers: int = 4,
    retry: Optional[Union[str, RetryPolicy]] = None,
    root: Optional[Union[str, Path]] = None,
    keep: bool = False,
) -> ChaosReport:
    """Run ``scenarios`` clean and under faults; diff the result stores.

    ``faults`` is a ``REPRO_FAULTS`` spec string or a :class:`FaultPlan`
    (default: :data:`DEFAULT_CHAOS_SPEC`); ``retry`` optionally overrides the
    ambient retry policy the same way.  Both are exported through the
    environment for the chaos leg so pool workers inherit them, and fully
    restored afterwards.  ``root`` keeps the two stores somewhere inspectable
    (``keep=True`` skips cleanup of a temporary root).
    """
    from repro.runtime import ResultStore, TaskExecutor
    from repro.telemetry import TelemetrySession

    plan = faults if isinstance(faults, FaultPlan) else parse_fault_spec(
        faults if faults is not None else DEFAULT_CHAOS_SPEC
    )
    retry_spec = retry.spec() if isinstance(retry, RetryPolicy) else retry

    tasks = _expand_tasks(scenarios, seed=seed)
    base = Path(root) if root is not None else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    owns_root = root is None and not keep
    clean_root = base / "clean"
    chaos_root = base / "chaos"
    saved_env = {
        var: os.environ.get(var) for var in (FAULTS_ENV_VAR, RETRY_ENV_VAR)
    }
    try:
        # Clean reference leg: serial, faults force-disabled even if the
        # surrounding environment carries REPRO_FAULTS.
        restore_plan = install_plan(None)
        try:
            clean_store = ResultStore(clean_root)
            TaskExecutor(workers=1, store=clean_store).run(list(tasks))
        finally:
            restore_plan()

        # Chaos leg: plan and retry policy travel via the environment so
        # pool workers inherit them; the parent resolves the same env vars.
        os.environ[FAULTS_ENV_VAR] = plan.spec()
        if retry_spec is not None:
            os.environ[RETRY_ENV_VAR] = retry_spec
        chaos_store = ResultStore(chaos_root)
        with TelemetrySession(label="chaos") as session:
            TaskExecutor(workers=workers, store=chaos_store).run(list(tasks))
        counters = {
            name: int(value)
            for name, value in session.registry.snapshot().get("counters", {}).items()
            if name.split(".")[0] in ("fault", "retry", "degrade", "executor", "store")
        }
    finally:
        for var, value in saved_env.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value

    clean_payloads = _store_payloads(clean_root)
    chaos_payloads = _store_payloads(chaos_root)
    mismatched = sorted(
        fp
        for fp in clean_payloads.keys() & chaos_payloads.keys()
        if clean_payloads[fp] != chaos_payloads[fp]
    )
    missing = sorted(clean_payloads.keys() - chaos_payloads.keys())
    extra = sorted(chaos_payloads.keys() - clean_payloads.keys())
    report = ChaosReport(
        scenarios=tuple(scenarios),
        tasks=len(tasks),
        workers=workers,
        fault_spec=plan.spec(),
        parity=not (mismatched or missing or extra),
        mismatched=mismatched,
        missing=missing,
        extra=extra,
        clean_stats=clean_store.stats(),
        chaos_stats=chaos_store.stats(),
        counters=counters,
    )
    if owns_root:
        shutil.rmtree(base, ignore_errors=True)
    return report


__all__ = ["ChaosReport", "DEFAULT_CHAOS_SPEC", "run_chaos"]
