"""Fault injection, retry policy, and crash-safe execution for the runtime.

The resilience layer makes the runtime survive the failures a long benchmark
campaign actually hits — crashed workers, hung kernels, torn writes, corrupt
payloads — under one invariant: **failures may cost wall-clock, but never
change bytes**.  Recovery always reproduces the exact output of a fault-free
run, extending the determinism discipline (seed protocol, submission-order
merging) to the failure domain.

* :mod:`repro.resilience.faults` — deterministic fault-injection plans:
  seeded schedules of crashes / hangs / corruption / torn writes at named
  injection points, activated via ``REPRO_FAULTS`` or the CLI's ``--faults``;
* :mod:`repro.resilience.policy` — :class:`RetryPolicy`: bounded attempts,
  exponential backoff with deterministic jitter, per-task timeouts, circuit
  breaking (``REPRO_RETRY`` / ``--retry``);
* :mod:`repro.resilience.durability` — canonical checksums, atomic JSON
  writes, and per-writer stats journals (the store's crash-safety kit);
* :mod:`repro.resilience.degrade` — the degradation ladder (NumPy kernel →
  pure Python, parallel → serial, grid cell → outcome row) and its telemetry;
* :mod:`repro.resilience.chaos` — the chaos harness: run a workload grid
  under a seeded fault schedule and assert the result store is byte-identical
  to a clean serial run (``repro chaos``).

Example — a seeded plan decides faults deterministically::

    >>> plan = parse_fault_spec("seed=3,executor.submit:raise:0.5")
    >>> plan.decide("executor.submit", "T1", 0) == plan.decide(
    ...     "executor.submit", "T1", 0)
    True
    >>> parse_retry_spec("attempts=4,backoff=0.01").max_attempts
    4
"""

from repro.resilience.degrade import DEGRADATION_LADDER, record_degradation
from repro.resilience.durability import (
    StatsJournal,
    atomic_write_json,
    canonical_checksum,
    canonical_json,
    entry_checksum,
    sum_journals,
)
from repro.resilience.faults import (
    DATA_KINDS,
    FAULTS_ENV_VAR,
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    attempt_scope,
    current_attempt,
    fault_plan_active,
    faults_enabled,
    inject,
    install_plan,
    mark_worker_process,
    parse_fault_spec,
)
from repro.resilience.drain import DRAIN_SIGNALS, drain_on_signal
from repro.resilience.policy import (
    DEFAULT_POLICY,
    RETRY_ENV_VAR,
    CircuitBreaker,
    RetryPolicy,
    backoff_delay,
    parse_retry_spec,
    policy_from_env,
    retry_call,
)

from repro.resilience.chaos import ChaosReport, run_chaos  # isort: skip  (imports runtime)

__all__ = [
    "CircuitBreaker",
    "ChaosReport",
    "DATA_KINDS",
    "DEFAULT_POLICY",
    "DEGRADATION_LADDER",
    "DRAIN_SIGNALS",
    "FAULTS_ENV_VAR",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "RETRY_ENV_VAR",
    "RetryPolicy",
    "StatsJournal",
    "active_plan",
    "atomic_write_json",
    "attempt_scope",
    "backoff_delay",
    "canonical_checksum",
    "canonical_json",
    "current_attempt",
    "drain_on_signal",
    "entry_checksum",
    "fault_plan_active",
    "faults_enabled",
    "inject",
    "install_plan",
    "mark_worker_process",
    "parse_fault_spec",
    "parse_retry_spec",
    "policy_from_env",
    "record_degradation",
    "retry_call",
    "run_chaos",
    "sum_journals",
]
