"""Deterministic fault injection for the runtime stack.

A :class:`FaultPlan` is a seeded schedule of failures: each :class:`FaultRule`
names an *injection point* (``site``), a failure ``kind``, a firing ``rate``,
and how many attempts it keeps firing for (``until``).  Whether a rule fires
is a pure function of ``(plan seed, site, kind, key, attempt)`` — decided by
hashing through :func:`repro.utils.rng.derive_seed`, never by drawing from a
shared stream — so a fault schedule is reproducible across processes, worker
counts, and execution orders, exactly like the runtime's seed protocol.

Faults may cost retries and wall-clock, but they must never change bytes: a
rule's default ``until=1`` means it fires only on attempt 0, so the retry
machinery in :mod:`repro.resilience.policy` always clears it, and the final
payloads/stores are byte-identical to a fault-free run (the chaos harness in
:mod:`repro.resilience.chaos` asserts this).

Injection points and the kinds they honour:

=====================  ================================================
``executor.submit``    ``crash`` (worker dies), ``hang`` (sleep past the
                       timeout), ``corrupt`` (payload bytes flip in
                       flight), ``raise`` (transient exception)
``store.put``          ``torn`` (entry file truncated mid-write)
``transport.attach``   ``raise`` (shared-memory attach fails)
``engine.pass``        ``raise`` (failure mid-streaming-pass)
``kernel.make``        ``raise`` (accelerated backend fails to build)
``service.request``    ``crash`` (service worker dies mid-request),
                       ``raise`` (transient per-request failure)
=====================  ================================================

Plans activate via the ``REPRO_FAULTS`` environment variable (the CLI's
``--faults`` writes it so worker processes inherit the schedule) or
programmatically with :func:`install_plan` / :func:`fault_plan_active`.

Example — parse a spec and make deterministic decisions::

    >>> plan = parse_fault_spec("seed=7,executor.submit:crash:0.5")
    >>> plan.rules[0].site, plan.rules[0].kind, plan.rules[0].rate
    ('executor.submit', 'crash', 0.5)
    >>> decisions = [plan.decide("executor.submit", f"T{i}", 0) for i in range(8)]
    >>> decisions == [plan.decide("executor.submit", f"T{i}", 0) for i in range(8)]
    True
    >>> plan.decide("store.put", "T0", 0) is None  # no rule for that site
    True
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.exceptions import InjectedFaultError
from repro.telemetry import metrics
from repro.telemetry.spans import event
from repro.utils.rng import derive_seed

#: Environment variable carrying the fault spec into worker processes.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The named injection points threaded through the stack.
FAULT_SITES = (
    "executor.submit",
    "store.put",
    "transport.attach",
    "engine.pass",
    "kernel.make",
    "service.request",
)

#: The failure kinds a rule may request.
FAULT_KINDS = ("crash", "hang", "corrupt", "raise", "torn")

#: Kinds the *caller* must act on (data corruption) rather than the injector
#: raising/crashing on their behalf; :func:`inject` returns these.
DATA_KINDS = ("corrupt", "torn")

#: 2^64, the denominator turning a derived seed into a uniform in [0, 1).
_SEED_SPACE = float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault schedule.

    ``rate`` is the per-``(key, attempt)`` firing probability; ``until``
    bounds the attempts the rule may fire on (attempts ``0 .. until-1``), so
    the default of 1 guarantees any single retry clears the fault and a chaos
    run always terminates.
    """

    site: str
    kind: str
    rate: float = 1.0
    until: int = 1

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.until < 1:
            raise ValueError(f"until must be >= 1, got {self.until}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, order-independent schedule of fault decisions."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    #: How long a ``hang`` fault sleeps before failing (seconds).  Tests dial
    #: this down next to a short executor timeout.
    hang_s: float = 30.0

    def decide(self, site: str, key: str, attempt: int = 0) -> Optional[str]:
        """The kind that fires at ``(site, key, attempt)``, or ``None``.

        Pure: hashing ``(seed, site, kind, key, attempt)`` through
        :func:`derive_seed` gives an independent uniform per decision, so the
        answer never depends on call order, process, or how many other
        decisions were made first.  The first matching rule in spec order
        wins.
        """
        for rule in self.rules:
            if rule.site != site or attempt >= rule.until:
                continue
            if rule.rate >= 1.0:
                return rule.kind
            draw = derive_seed(self.seed, site, rule.kind, key, attempt) / _SEED_SPACE
            if draw < rule.rate:
                return rule.kind
        return None

    def spec(self) -> str:
        """Render back to the ``REPRO_FAULTS`` spec grammar (round-trips)."""
        clauses = [f"seed={self.seed}", f"hang={self.hang_s:g}"]
        clauses += [
            f"{rule.site}:{rule.kind}:{rule.rate:g}:{rule.until}" for rule in self.rules
        ]
        return ",".join(clauses)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`.

    Grammar: comma-separated clauses.  ``seed=N`` and ``hang=SECONDS`` set
    plan options; every other clause is a rule ``site:kind[:rate[:until]]``
    (rate defaults to 1.0, until to 1).  Example::

        seed=7,executor.submit:crash:0.2,store.put:torn:0.5:2
    """
    seed = 0
    hang_s = 30.0
    rules: List[FaultRule] = []
    for raw in spec.split(","):
        clause = raw.strip()
        if not clause:
            continue
        if "=" in clause and ":" not in clause:
            name, _, value = clause.partition("=")
            name = name.strip().lower()
            if name == "seed":
                seed = int(value)
            elif name == "hang":
                hang_s = float(value)
            else:
                raise ValueError(f"unknown fault-plan option {name!r} in {spec!r}")
            continue
        parts = clause.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(
                f"bad fault clause {clause!r}; expected site:kind[:rate[:until]]"
            )
        rate = float(parts[2]) if len(parts) > 2 else 1.0
        until = int(parts[3]) if len(parts) > 3 else 1
        rules.append(FaultRule(site=parts[0], kind=parts[1], rate=rate, until=until))
    return FaultPlan(seed=seed, rules=tuple(rules), hang_s=hang_s)


# ---------------------------------------------------------------------------
# Activation.  The active plan is process-global (faults cross process
# boundaries via the environment, and a worker must see the plan no matter
# which thread/context runs the task).  ``None`` means "resolve from the
# environment on next use"; _NO_PLAN means "resolved: faults off".
# ---------------------------------------------------------------------------

_NO_PLAN = FaultPlan(rules=())
_active_plan: Optional[FaultPlan] = None
_resolved_spec: Optional[str] = None

#: Set to True inside process-pool workers (the executor's initializer), so
#: ``crash`` faults know :func:`os._exit` kills a disposable worker, not the
#: user's interpreter.
_IN_WORKER = False

#: Attempt number ambient to the current task execution; injection sites deep
#: in the stack (engine.pass, kernel.make) read it so a retried task attempt
#: re-evaluates its fault decisions at the new attempt.
_ATTEMPT: "ContextVar[int]" = ContextVar("repro_fault_attempt", default=0)


def mark_worker_process() -> None:
    """Record that this process is a disposable pool worker (see ``crash``)."""
    global _IN_WORKER
    _IN_WORKER = True


def current_attempt() -> int:
    """The ambient task attempt number (0 outside any retry scope)."""
    return _ATTEMPT.get()


@contextmanager
def attempt_scope(attempt: int) -> Iterator[None]:
    """Make ``attempt`` ambient for injection sites inside the block."""
    token = _ATTEMPT.set(attempt)
    try:
        yield
    finally:
        _ATTEMPT.reset(token)


def install_plan(plan: Optional[FaultPlan]):
    """Install ``plan`` as the active fault plan (``None`` disables faults).

    Returns a zero-argument restore callable; prefer the
    :func:`fault_plan_active` context manager in tests.
    """
    global _active_plan, _resolved_spec
    previous_plan, previous_spec = _active_plan, _resolved_spec
    _active_plan = plan if plan is not None else _NO_PLAN
    # "<installed>" marks an explicit installation, which always wins over the
    # environment — install_plan(None) force-disables faults even when
    # REPRO_FAULTS is set (the chaos harness's clean-run guarantee).
    _resolved_spec = "<installed>"

    def restore() -> None:
        global _active_plan, _resolved_spec
        _active_plan = previous_plan
        _resolved_spec = previous_spec

    return restore


@contextmanager
def fault_plan_active(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Context manager form of :func:`install_plan` (restores on exit)."""
    restore = install_plan(plan)
    try:
        yield
    finally:
        restore()


def active_plan() -> Optional[FaultPlan]:
    """The plan injection sites consult, or ``None`` when faults are off.

    Resolution is environment-driven and cached per spec string: the first
    call (and any call after ``REPRO_FAULTS`` changes) parses the variable;
    afterwards the check is one global load and a string compare, cheap
    enough for per-pass injection sites.  A plan installed via
    :func:`install_plan` takes precedence over the environment.
    """
    global _active_plan, _resolved_spec
    if _resolved_spec == "<installed>":
        return None if _active_plan is _NO_PLAN or not _active_plan.rules else _active_plan
    spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if spec != (_resolved_spec or ""):
        _resolved_spec = spec
        _active_plan = parse_fault_spec(spec) if spec else _NO_PLAN
    plan = _active_plan
    if plan is None or not plan.rules:
        return None
    return plan


def faults_enabled() -> bool:
    """Whether any fault plan is currently active (sites will be consulted)."""
    return active_plan() is not None


def inject(site: str, key: str, attempt: Optional[int] = None) -> Optional[str]:
    """Evaluate the injection point ``site`` for ``key``; act on the result.

    No-op (one global/env check) when no plan is active.  When a rule fires:

    * ``raise`` — raises :class:`InjectedFaultError` (a transient, retryable
      failure);
    * ``crash`` — calls ``os._exit`` in pool workers (the parent sees a
      broken pool); outside a worker it degrades to ``raise`` so serial runs
      stay recoverable;
    * ``hang`` — sleeps ``plan.hang_s`` seconds, then raises (a hung worker
      either trips the executor timeout or eventually fails transiently);
    * ``corrupt`` / ``torn`` — returned to the caller, which must apply the
      data corruption itself (payload mangling, torn entry write).

    Every firing is counted (``fault.injected`` plus a per-site/kind counter)
    and traced as a ``fault.inject`` event when telemetry is capturing.
    """
    plan = active_plan()
    if plan is None:
        return None
    if attempt is None:
        attempt = _ATTEMPT.get()
    kind = plan.decide(site, key, attempt)
    if kind is None:
        return None
    metrics.add("fault.injected")
    metrics.add(f"fault.injected.{site}.{kind}")
    event("fault.inject", site=site, key=key, kind=kind, attempt=attempt)
    if kind == "crash":
        if _IN_WORKER:
            os._exit(17)  # hard death: no atexit, no cleanup — a real crash
        raise InjectedFaultError(site, key, kind="crash", attempt=attempt)
    if kind == "hang":
        time.sleep(plan.hang_s)
        raise InjectedFaultError(site, key, kind="hang", attempt=attempt)
    if kind == "raise":
        raise InjectedFaultError(site, key, kind="raise", attempt=attempt)
    return kind  # corrupt / torn: the caller applies the damage


__all__ = [
    "DATA_KINDS",
    "FAULTS_ENV_VAR",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "attempt_scope",
    "current_attempt",
    "fault_plan_active",
    "faults_enabled",
    "inject",
    "install_plan",
    "mark_worker_process",
    "parse_fault_spec",
]
