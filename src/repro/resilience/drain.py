"""Signal-driven graceful drain, shared by the executor and the service.

Both long-running front ends — a sharded :class:`~repro.runtime.executor.
TaskExecutor` sweep and the asyncio solver service — obey the same drain
contract on ``SIGTERM``: stop accepting new work, let in-flight work finish
(or time out), flush stats, release shared resources deterministically.

The executor already implements the drain itself for ``KeyboardInterrupt``
(cancel outstanding futures, flush journals, return a partial
``RunReport(interrupted=True)``); :func:`drain_on_signal` extends that to
process signals by translating them into a ``KeyboardInterrupt`` raised in
the main thread.  The asyncio service registers its own loop-level handlers
(``loop.add_signal_handler``) because an exception cannot be injected into
an event loop from a signal frame — but the *sequence* it runs is the same
drain contract, and the shared test case in ``tests/test_runtime_recovery.py``
pins both.

Example — a custom callback observes the signal without raising::

    >>> import os, signal
    >>> hits = []
    >>> with drain_on_signal(callback=hits.append, signals=(signal.SIGUSR1,)):
    ...     signal.raise_signal(signal.SIGUSR1)
    >>> hits
    [<Signals.SIGUSR1: 10>]
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence

from repro.telemetry import metrics
from repro.telemetry.spans import event

#: The signals a drain scope intercepts by default.
DRAIN_SIGNALS = (signal.SIGTERM,)


@contextmanager
def drain_on_signal(
    callback: Optional[Callable[[signal.Signals], None]] = None,
    signals: Sequence[signal.Signals] = DRAIN_SIGNALS,
) -> Iterator[None]:
    """Translate ``signals`` into a graceful drain for the enclosed block.

    With no ``callback``, a caught signal raises :class:`KeyboardInterrupt`
    in the main thread — which is exactly the drain path the executor
    already implements (partial report, flushed stats, cancelled futures).
    With a ``callback``, the signal is handed to it instead (the service
    uses this form when it cannot run under an asyncio loop's own handler).

    Previous handlers are restored on exit.  Outside the main thread, signal
    handlers cannot be installed; the scope is then a documented no-op so
    library code can use it unconditionally.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def handler(signum, frame):  # pragma: no cover - exercised via raise_signal
        metrics.add("drain.signals")
        event("drain.signal", signum=int(signum))
        received = signal.Signals(signum)
        if callback is not None:
            callback(received)
            return
        raise KeyboardInterrupt(f"drain on {received.name}")

    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, handler)
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


__all__ = ["DRAIN_SIGNALS", "drain_on_signal"]
