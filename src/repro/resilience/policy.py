"""Retry policy: bounded attempts, deterministic backoff, circuit breaking.

A :class:`RetryPolicy` says how the runtime responds to *transient* failures
(the :class:`~repro.exceptions.TransientTaskError` hierarchy — injected
faults, lost workers, corrupted payloads): how many attempts a task gets, how
long to back off between them, when a hung task counts as lost
(``timeout``), and when to stop retrying structurally — the circuit breaker
after ``breaker_threshold`` consecutive failures, and serial degradation
after ``max_pool_respawns`` process-pool losses.

Backoff is exponential with *deterministic* jitter: the jitter fraction for
attempt ``k`` is a uniform derived by hashing ``(seed, path, k)`` through
:func:`repro.utils.rng.derive_seed` — the same discipline as the runtime's
seed streams — so two runs of the same schedule wait the same milliseconds
and a retry storm still de-synchronises across tasks (each task's seed gives
it a different jitter stream).  Retries cost wall-clock, never bytes.

Policies come from the ``REPRO_RETRY`` environment variable or the CLI's
``--retry`` flag; :func:`policy_from_env` resolves the ambient one.

Example — deterministic backoff and spec round-trip::

    >>> policy = parse_retry_spec("attempts=5,backoff=0.1,multiplier=2,jitter=0")
    >>> [round(backoff_delay(policy, a, seed=1, path=("T",)), 3) for a in (1, 2, 3)]
    [0.1, 0.2, 0.4]
    >>> backoff_delay(policy, 2, seed=1, path=("T",)) == backoff_delay(
    ...     policy, 2, seed=1, path=("T",))
    True
    >>> parse_retry_spec("attempts=2").max_attempts
    2
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Sequence, Tuple, Type

from repro.exceptions import CircuitOpenError, TransientTaskError
from repro.telemetry import metrics
from repro.utils.rng import derive_seed

#: Environment variable carrying the retry spec into worker processes.
RETRY_ENV_VAR = "REPRO_RETRY"

#: 2^64, the denominator turning a derived seed into a uniform in [0, 1).
_SEED_SPACE = float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """How the runtime responds to transient failures.

    ``max_attempts`` counts total tries per task (1 = no retry).  Backoff for
    attempt ``k >= 1`` is ``min(max_backoff, base_backoff * multiplier**(k-1))``
    scaled by a deterministic jitter in ``[1 - jitter, 1]``.  ``timeout`` is
    the per-task wall-clock budget the executor enforces on worker chunks
    (``None`` disables timeout detection).  ``breaker_threshold`` consecutive
    failures open the circuit; ``max_pool_respawns`` bounds process-pool
    recreation before the executor degrades to serial execution.
    """

    max_attempts: int = 3
    base_backoff: float = 0.02
    multiplier: float = 2.0
    max_backoff: float = 1.0
    jitter: float = 0.5
    timeout: Optional[float] = None
    breaker_threshold: int = 5
    max_pool_respawns: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.max_pool_respawns < 0:
            raise ValueError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}"
            )

    def spec(self) -> str:
        """Render back to the ``REPRO_RETRY`` spec grammar (round-trips)."""
        clauses = [
            f"attempts={self.max_attempts}",
            f"backoff={self.base_backoff:g}",
            f"multiplier={self.multiplier:g}",
            f"max_backoff={self.max_backoff:g}",
            f"jitter={self.jitter:g}",
            f"breaker={self.breaker_threshold}",
            f"respawns={self.max_pool_respawns}",
        ]
        if self.timeout is not None:
            clauses.append(f"timeout={self.timeout:g}")
        return ",".join(clauses)


#: The policy used when neither the environment nor the caller supplies one.
DEFAULT_POLICY = RetryPolicy()

_SPEC_FIELDS = {
    "attempts": ("max_attempts", int),
    "backoff": ("base_backoff", float),
    "multiplier": ("multiplier", float),
    "max_backoff": ("max_backoff", float),
    "jitter": ("jitter", float),
    "timeout": ("timeout", float),
    "breaker": ("breaker_threshold", int),
    "respawns": ("max_pool_respawns", int),
}


def parse_retry_spec(spec: str, base: Optional[RetryPolicy] = None) -> RetryPolicy:
    """Parse ``name=value`` clauses into a policy (unset fields keep defaults).

    Accepted names: ``attempts``, ``backoff``, ``multiplier``, ``max_backoff``,
    ``jitter``, ``timeout``, ``breaker``, ``respawns``.  ``timeout=0`` and
    ``timeout=none`` both disable the timeout.
    """
    policy = base or DEFAULT_POLICY
    updates = {}
    for raw in spec.split(","):
        clause = raw.strip()
        if not clause:
            continue
        name, sep, value = clause.partition("=")
        name = name.strip().lower()
        if not sep or name not in _SPEC_FIELDS:
            raise ValueError(
                f"bad retry clause {clause!r}; expected one of "
                f"{sorted(_SPEC_FIELDS)} as name=value"
            )
        field_name, convert = _SPEC_FIELDS[name]
        if field_name == "timeout" and value.strip().lower() in ("none", "0", "off"):
            updates[field_name] = None
            continue
        updates[field_name] = convert(value)
    return replace(policy, **updates) if updates else policy


def policy_from_env(base: Optional[RetryPolicy] = None) -> RetryPolicy:
    """The ambient policy: ``REPRO_RETRY`` applied over ``base``/defaults."""
    spec = os.environ.get(RETRY_ENV_VAR, "").strip()
    if not spec:
        return base or DEFAULT_POLICY
    return parse_retry_spec(spec, base=base)


def backoff_delay(
    policy: RetryPolicy,
    attempt: int,
    seed: int = 0,
    path: Sequence[Any] = (),
) -> float:
    """Seconds to wait before retry ``attempt`` (attempt 1 = first retry).

    Exponential in ``attempt`` with deterministic jitter: the uniform comes
    from hashing ``(seed, "backoff", *path, attempt)``, so the schedule is a
    pure function of the task identity and reproduces exactly across runs
    while still decorrelating concurrent tasks.
    """
    if attempt < 1:
        return 0.0
    raw = policy.base_backoff * (policy.multiplier ** (attempt - 1))
    delay = min(policy.max_backoff, raw)
    if policy.jitter > 0.0 and delay > 0.0:
        uniform = derive_seed(seed, "backoff", *[str(p) for p in path], attempt) / _SEED_SPACE
        delay *= 1.0 - policy.jitter * uniform
    return delay


class CircuitBreaker:
    """Trips open after N *consecutive* failures; any success resets it.

    The breaker turns a persistent failure (a store on a dead disk, a pool
    that can never spawn) into one fast :class:`CircuitOpenError` instead of
    an unbounded retry storm.  It is deliberately state-only — no wall-clock
    half-open probation — because the runtime's callers decide recovery
    structurally (respawn, degrade to serial) rather than by waiting.
    """

    def __init__(self, threshold: int = 5) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.consecutive_failures = 0
        self.total_failures = 0

    @property
    def open(self) -> bool:
        """Whether the breaker currently refuses attempts."""
        return self.consecutive_failures >= self.threshold

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` when the breaker is open."""
        if self.open:
            metrics.add("retry.breaker_rejections")
            raise CircuitOpenError(self.consecutive_failures, self.threshold)

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.open:
            metrics.add("retry.breaker_opens")

    def reset(self) -> None:
        """Manually close the breaker (structural recovery succeeded)."""
        self.consecutive_failures = 0


def retry_call(
    func: Callable[[int], Any],
    policy: Optional[RetryPolicy] = None,
    seed: int = 0,
    path: Sequence[Any] = (),
    retryable: Tuple[Type[BaseException], ...] = (TransientTaskError,),
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Call ``func(attempt)`` under the policy's retry schedule.

    ``func`` receives the attempt number (0-based) so fault-injection
    decisions and telemetry can key off it.  Only ``retryable`` exceptions
    are retried — everything else propagates unchanged on the first raise,
    preserving the executor's contract that a task's own bug is never
    silently re-run.  The final attempt's transient failure propagates too.
    """
    active = policy or DEFAULT_POLICY
    attempt = 0
    while True:
        try:
            return func(attempt)
        except retryable:
            attempt += 1
            if attempt >= active.max_attempts:
                raise
            metrics.add("retry.attempts")
            delay = backoff_delay(active, attempt, seed=seed, path=path)
            if delay > 0.0:
                metrics.observe("retry.backoff_s", delay)
                sleep(delay)


__all__ = [
    "CircuitBreaker",
    "DEFAULT_POLICY",
    "RETRY_ENV_VAR",
    "RetryPolicy",
    "backoff_delay",
    "parse_retry_spec",
    "policy_from_env",
    "retry_call",
]
