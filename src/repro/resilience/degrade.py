"""Graceful degradation: fall down the ladder, never change the bytes.

Every rung trades performance for survival while preserving output
equivalence — each fallback is a mechanism the parity suites already prove
byte-identical to the preferred path:

1. **Kernel backend** — a NumPy kernel that fails to build falls back to the
   pure-Python :class:`~repro.kernels.pyint.PyIntKernel` (the two backends
   are bit-identical by the hypothesis parity suites);
2. **Parallel execution** — repeated process-pool loss degrades the executor
   to in-process serial execution (submission-order merging makes serial and
   sharded output byte-identical by construction);
3. **Workload outcomes** — a cell that exceeds its space/pass budget or draws
   an uncoverable hard instance records an outcome row instead of aborting
   the surrounding grid (PR 4's outcome-row discipline).

This module is the ladder's bookkeeping: :func:`record_degradation` stamps a
telemetry counter and event per rung so a chaos run's report shows exactly
which fallbacks fired, and :data:`DEGRADATION_LADDER` names the rungs for
docs and tests.

Example — degradations are counted under ``degrade.<rung>``::

    >>> from repro.telemetry import TelemetrySession
    >>> with TelemetrySession(label="doc") as session:
    ...     record_degradation("kernel_backend", reason="numpy import failed")
    >>> session.registry.snapshot()["counters"]["degrade.kernel_backend"]
    1
"""

from __future__ import annotations

from typing import Any

from repro.telemetry import metrics
from repro.telemetry.spans import event

#: The rungs of the degradation ladder, in preference order.
DEGRADATION_LADDER = (
    "kernel_backend",  # numpy kernel -> pure-python kernel
    "serial_execution",  # process pool -> in-process serial
    "outcome_row",  # grid cell failure -> recorded outcome, grid continues
)


def record_degradation(rung: str, reason: str = "", **attrs: Any) -> None:
    """Count and trace one degradation (no-op cost when telemetry is off).

    ``rung`` should be one of :data:`DEGRADATION_LADDER`; unknown rungs are
    still recorded (forward compatibility for downstream ladders) but tests
    pin the canonical names.
    """
    metrics.add("degrade.total")
    metrics.add(f"degrade.{rung}")
    event("degrade", rung=rung, reason=reason, **attrs)


__all__ = ["DEGRADATION_LADDER", "record_degradation"]
