"""repro — reproduction of Assadi's tight multi-pass streaming set cover tradeoff.

The package reproduces *"Tight Space-Approximation Tradeoff for the Multi-Pass
Streaming Set Cover Problem"* (Sepehr Assadi, PODS 2017): the (α+ε)-approximate
(2α+1)-pass streaming algorithm (Algorithm 1 / Theorem 2), the hard input
distributions behind the Ω̃(m·n^{1/α}) and Ω̃(m/ε²) lower bounds (Theorems 1,
3, 4, 5), the two-party communication and information-complexity machinery the
proofs use, and the prior streaming set cover / max coverage algorithms the
paper positions itself against.

Quickstart
----------
>>> from repro import plant_cover_instance, OptGuessingSetCover, run_streaming_algorithm
>>> instance = plant_cover_instance(universe_size=128, num_sets=40, cover_size=4, seed=7)
>>> algorithm = OptGuessingSetCover(alpha=2, epsilon=0.5, seed=7)
>>> result = run_streaming_algorithm(algorithm, instance.system)
>>> result.solution_size <= 3 * instance.planted_opt
True
"""

from repro.setcover import (
    SetSystem,
    SetCoverInstance,
    greedy_set_cover,
    exact_set_cover,
    exact_cover_value,
    greedy_max_coverage,
    exact_max_coverage,
    is_feasible_cover,
    verify_cover,
)
from repro.streaming import (
    SetStream,
    StreamOrder,
    SpaceMeter,
    StreamingAlgorithm,
    StreamingResult,
    MultiPassEngine,
    run_streaming_algorithm,
)
from repro.core import (
    StreamingSetCover,
    AlgorithmOneConfig,
    OptGuessingSetCover,
    StreamingMaxCoverage,
    element_sample,
    sampling_probability,
)
from repro.workloads import (
    random_set_system,
    plant_cover_instance,
    zipfian_instance,
    coverage_workload,
)
from repro.kernels import (
    HAS_NUMPY,
    PyIntKernel,
    available_backends,
    make_kernel,
    resolve_backend,
)

__version__ = "1.0.0"

__all__ = [
    "SetSystem",
    "SetCoverInstance",
    "greedy_set_cover",
    "exact_set_cover",
    "exact_cover_value",
    "greedy_max_coverage",
    "exact_max_coverage",
    "is_feasible_cover",
    "verify_cover",
    "SetStream",
    "StreamOrder",
    "SpaceMeter",
    "StreamingAlgorithm",
    "StreamingResult",
    "MultiPassEngine",
    "run_streaming_algorithm",
    "StreamingSetCover",
    "AlgorithmOneConfig",
    "OptGuessingSetCover",
    "StreamingMaxCoverage",
    "element_sample",
    "sampling_probability",
    "random_set_system",
    "plant_cover_instance",
    "zipfian_instance",
    "coverage_workload",
    "HAS_NUMPY",
    "PyIntKernel",
    "available_backends",
    "make_kernel",
    "resolve_backend",
    "__version__",
]
