"""Report assembly and rendering: one document, two output formats.

:func:`build_report` turns a loaded :class:`~repro.analysis.loader.StoreAnalysis`
(plus optional benchmark trajectories) into a :class:`ReportDocument` — a
flat list of heading / paragraph / table / figure / code blocks.  Two
renderers walk that list: :func:`render_markdown` emits GitHub-flavoured
markdown, :func:`render_html` emits one self-contained HTML page (PNG
figures are inlined as base64 data URIs, text figures as ``<pre>`` panels),
so the HTML file needs nothing next to it.  Missing grid cells render as an
explicit marked table — an empty or partially-resumed store produces a
report that says what is absent instead of raising.

Example — a minimal document renders in both formats::

    >>> doc = ReportDocument(title="demo", blocks=[
    ...     Heading(2, "Section"), Paragraph("hello")])
    >>> print(render_markdown(doc), end="")
    # demo
    <BLANKLINE>
    ## Section
    <BLANKLINE>
    hello
    >>> "<h2>Section</h2>" in render_html(doc)
    True
"""

from __future__ import annotations

import base64
import html as html_lib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.bench import BenchTrajectory
from repro.analysis.figures import (
    FigureArtifact,
    bench_trajectory_figure,
    passes_vs_space_figure,
    space_vs_approximation_figure,
)
from repro.analysis.loader import StoreAnalysis
from repro.analysis.records import (
    AnalysisRecord,
    OUTCOMES,
    outcome_counts,
)
from repro.analysis.tradeoff import (
    aggregate,
    space_approximation_points,
    theoretical_curve,
    typical_instance_shape,
)

PathLike = Union[str, Path]

#: Marker the report prints for a grid cell the store does not hold.
MISSING_MARKER = "∅ missing"


# --------------------------------------------------------------------------
# Block model
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Heading:
    level: int
    text: str


@dataclass(frozen=True)
class Paragraph:
    text: str


@dataclass(frozen=True)
class TableBlock:
    headers: Sequence[str]
    rows: Sequence[Sequence[Any]]
    caption: str = ""


@dataclass(frozen=True)
class CodeBlock:
    text: str


@dataclass(frozen=True)
class FigureBlock:
    artifact: FigureArtifact


Block = Union[Heading, Paragraph, TableBlock, CodeBlock, FigureBlock]


@dataclass
class ReportDocument:
    """An ordered list of renderable blocks plus document metadata."""

    title: str
    blocks: List[Block] = field(default_factory=list)

    @property
    def figures(self) -> List[FigureArtifact]:
        return [
            block.artifact for block in self.blocks if isinstance(block, FigureBlock)
        ]


# --------------------------------------------------------------------------
# Builders
# --------------------------------------------------------------------------
def _cell(value: Any) -> str:
    if value is None:
        return "–"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, ".3g")
    return str(value)


def _summary_paragraph(analysis: StoreAnalysis) -> Paragraph:
    bits = [
        f"{len(analysis.records)} result cell(s) loaded from `{analysis.root}`"
    ]
    if analysis.grids:
        bits.append(f"grid coverage checked against: {', '.join(analysis.grids)}")
    if analysis.missing:
        bits.append(f"**{len(analysis.missing)} cell(s) missing**")
    if analysis.unreadable:
        bits.append(f"{len(analysis.unreadable)} unreadable file(s) skipped")
    return Paragraph("; ".join(bits) + ".")


def _algorithm_summary_table(records: Sequence[AnalysisRecord]) -> TableBlock:
    headers = ["algorithm", "cells", *OUTCOMES, "approx ratio", "peak words", "passes"]
    members_by_algorithm: Dict[Any, List[AnalysisRecord]] = {}
    for record in records:
        if record.algorithm is not None:
            members_by_algorithm.setdefault(record.algorithm, []).append(record)
    rows: List[List[Any]] = []
    for point in aggregate(records, by=("algorithm",)):
        counts = outcome_counts(members_by_algorithm[point.group[0][1]])
        rows.append(
            [
                point.short_label,
                point.count,
                *[counts[outcome] for outcome in OUTCOMES],
                point.ratio.format() if point.ratio else "–",
                point.space.format() if point.space else "–",
                point.passes.format() if point.passes else "–",
            ]
        )
    return TableBlock(
        headers=headers,
        rows=rows,
        caption="Per-algorithm envelopes (min / median / max across cells).",
    )


def _workload_detail_blocks(records: Sequence[AnalysisRecord]) -> List[Block]:
    blocks: List[Block] = []
    algorithms = sorted({r.algorithm for r in records if r.algorithm})
    headers = [
        "workload", "order", "outcome", "solution", "opt bound", "ratio",
        "passes", "peak words", "final words", "dominant", "budget",
    ]
    for algorithm in algorithms:
        members = sorted(
            (r for r in records if r.algorithm == algorithm),
            key=lambda r: (r.workload or "", r.order or "", r.key),
        )
        rows = [
            [
                record.workload,
                record.order,
                record.outcome,
                record.solution_size,
                (
                    f"{record.opt_bound} (planted)"
                    if record.opt_is_planted
                    else record.opt_bound
                ),
                record.approx_ratio,
                record.passes,
                record.peak_space_words,
                record.final_space_words,
                record.dominant_category,
                record.space_budget,
            ]
            for record in members
        ]
        blocks.append(Heading(3, f"`{algorithm}`"))
        blocks.append(TableBlock(headers=headers, rows=rows))
    return blocks


def _missing_cells_blocks(analysis: StoreAnalysis) -> List[Block]:
    blocks: List[Block] = [Heading(2, "Missing cells")]
    if not analysis.records and not analysis.missing:
        blocks.append(
            Paragraph(
                "The store holds **no readable result cells** and no grid was "
                "named or detected — run `repro run <scenario> --store "
                f"{analysis.root}` first, or pass `--grid` to list what a "
                "grid would expect."
            )
        )
        return blocks
    if not analysis.missing:
        blocks.append(
            Paragraph("None — every expected grid cell is present in the store.")
        )
        return blocks
    blocks.append(
        Paragraph(
            f"{len(analysis.missing)} expected cell(s) are not in the store "
            "(interrupted or not-yet-run sweep). Re-running `repro run` with "
            "the same store resumes exactly these."
        )
    )
    blocks.append(
        TableBlock(
            headers=["cell", "fingerprint", "status"],
            rows=[
                [cell.key, cell.fingerprint[:16] + "…", MISSING_MARKER]
                for cell in analysis.missing
            ],
        )
    )
    return blocks


def _sum_prefixed(counters: Dict[str, Any], prefix: str) -> Optional[int]:
    """Sum every counter under ``prefix``; ``None`` when none exist."""
    total = 0
    seen = False
    for name, value in counters.items():
        if name.startswith(prefix):
            total += int(value)
            seen = True
    return total if seen else None


def _top_span(span_summary: Dict[str, Any]) -> Optional[str]:
    """The span name with the largest total time, formatted ``name (1.2s)``."""
    if not span_summary:
        return None
    name, info = max(
        span_summary.items(), key=lambda item: item[1].get("total_s", 0.0)
    )
    return f"`{name}` ({info.get('total_s', 0.0):.3g}s)"


def _telemetry_blocks(analysis: StoreAnalysis) -> List[Block]:
    """The ``## Telemetry`` section: store activity plus per-cell timing.

    Renders nothing when the store has neither persisted stats nor any
    entry carrying a ``telemetry`` block (a run without ``--trace`` /
    ``REPRO_TELEMETRY``), so reports over uncaptured stores are unchanged.
    """
    captured = [r for r in analysis.records if r.telemetry]
    if not captured and analysis.store_stats is None:
        return []
    blocks: List[Block] = [Heading(2, "Telemetry")]

    if analysis.store_stats is not None:
        stats = analysis.store_stats
        blocks.append(
            TableBlock(
                headers=["hits", "misses", "puts", "skips", "quarantined"],
                rows=[[
                    stats["hits"],
                    stats["misses"],
                    stats["puts"],
                    stats["skips"],
                    stats.get("quarantined", 0),
                ]],
                caption=(
                    "Cumulative result-store activity persisted in "
                    "`store_stats.json` and the per-writer stats journal "
                    "(all runs against this store); `quarantined` counts "
                    "corrupt entries moved aside and recomputed."
                ),
            )
        )

    if not captured:
        blocks.append(
            Paragraph(
                "No stored cell carries a telemetry block — run with "
                "`--trace DIR` (or `REPRO_TELEMETRY=1`) to capture per-cell "
                "timing and counters."
            )
        )
        return blocks

    rows: List[List[Any]] = []
    for record in captured:
        block = record.telemetry or {}
        counters: Dict[str, Any] = dict(block.get("counters") or {})
        rows.append(
            [
                record.key,
                block.get("elapsed_s"),
                _sum_prefixed(counters, "kernel.calls."),
                _sum_prefixed(counters, "kernel.words."),
                counters.get("rng.draws"),
                counters.get("stream.passes"),
                _top_span(dict(block.get("span_summary") or {})),
            ]
        )
    blocks.append(
        TableBlock(
            headers=[
                "cell", "elapsed (s)", "kernel calls", "kernel words",
                "rng draws", "stream passes", "top span",
            ],
            rows=rows,
            caption=(
                f"{len(captured)} cell(s) carry telemetry from their "
                "computing run (kernel words = 64-bit words touched by "
                "kernel primitives)."
            ),
        )
    )

    from repro.telemetry import merge_telemetry_blocks

    merged = merge_telemetry_blocks(r.telemetry for r in captured)
    if merged and merged.get("counters"):
        blocks.append(
            TableBlock(
                headers=["counter", "total"],
                rows=[
                    [f"`{name}`", merged["counters"][name]]
                    for name in sorted(merged["counters"])
                ],
                caption=(
                    f"Counters aggregated across {merged['entries']} captured "
                    f"cell(s), {merged.get('elapsed_s', 0.0):.3g}s total "
                    "compute time."
                ),
            )
        )
    return blocks


def _experiment_blocks(records: Sequence[AnalysisRecord]) -> List[Block]:
    blocks: List[Block] = []
    for record in records:
        blocks.append(Heading(3, f"{record.key} — {record.title}"))
        table = record.table
        if table.get("headers"):
            blocks.append(
                TableBlock(headers=table["headers"], rows=table.get("rows", ()))
            )
        if record.findings:
            rows = [[key, _cell(record.findings[key])] for key in sorted(record.findings)]
            blocks.append(TableBlock(headers=["finding", "value"], rows=rows))
    return blocks


def build_report(
    analysis: StoreAnalysis,
    bench: Sequence[BenchTrajectory] = (),
    title: str = "Streaming set cover — tradeoff report",
    figures_dir: Optional[PathLike] = None,
    use_mpl: Optional[bool] = None,
) -> ReportDocument:
    """Assemble the full report document from loaded store analysis.

    ``figures_dir``/``use_mpl`` forward to the figure layer: PNGs land in
    ``figures_dir`` when matplotlib is available, otherwise every figure is
    a deterministic text chart embedded in the document itself.
    """
    doc = ReportDocument(title=title)
    doc.blocks.append(_summary_paragraph(analysis))

    workload = analysis.workload_records
    points = space_approximation_points(workload)
    doc.blocks.append(Heading(2, "Space–approximation tradeoff"))
    if workload:
        doc.blocks.append(_algorithm_summary_table(workload))
    else:
        doc.blocks.append(
            Paragraph("No workload cells in the store — tradeoff curves need "
                      "`WL`-runner results (`repro run adversarial --store …`).")
        )
    doc.blocks.append(
        FigureBlock(
            space_vs_approximation_figure(
                points, outdir=figures_dir, use_mpl=use_mpl
            )
        )
    )

    shape = typical_instance_shape(workload)
    theory = theoretical_curve(*shape) if shape else ()
    doc.blocks.append(Heading(2, "Passes vs space"))
    if shape:
        doc.blocks.append(
            Paragraph(
                f"Reference bound evaluated at the grid's typical shape "
                f"n={shape[0]}, m={shape[1]}: the paper proves "
                f"Θ̃(m·n^(1/α)) space for α-pass O(α)-approximation."
            )
        )
    doc.blocks.append(
        FigureBlock(
            passes_vs_space_figure(
                aggregate(workload, by=("algorithm",)),
                theory=theory,
                outdir=figures_dir,
                use_mpl=use_mpl,
            )
        )
    )

    if workload:
        doc.blocks.append(Heading(2, "Workload detail"))
        doc.blocks.extend(_workload_detail_blocks(workload))

    doc.blocks.extend(_missing_cells_blocks(analysis))
    doc.blocks.extend(_telemetry_blocks(analysis))

    experiments = analysis.experiment_records
    if experiments:
        doc.blocks.append(Heading(2, "Other experiment results"))
        doc.blocks.extend(_experiment_blocks(experiments))

    if bench:
        doc.blocks.append(Heading(2, "Benchmark trajectory"))
        doc.blocks.append(
            FigureBlock(
                bench_trajectory_figure(bench, outdir=figures_dir, use_mpl=use_mpl)
            )
        )
        for trajectory in bench:
            doc.blocks.append(
                TableBlock(
                    headers=["entry", "speedup"],
                    rows=[[e.label, f"{e.speedup:.2f}x"] for e in trajectory.entries],
                    caption=f"BENCH_{trajectory.name}.json",
                )
            )
    return doc


# --------------------------------------------------------------------------
# Markdown renderer
# --------------------------------------------------------------------------
def _markdown_table(block: TableBlock) -> str:
    headers = [str(h) for h in block.headers]
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in block.rows:
        lines.append("| " + " | ".join(_cell(value) for value in row) + " |")
    if block.caption:
        lines.append("")
        lines.append(f"*{block.caption}*")
    return "\n".join(lines)


def _markdown_figure(block: FigureBlock, relative_to: Optional[Path]) -> str:
    artifact = block.artifact
    if artifact.is_png and artifact.path is not None:
        target = artifact.path
        if relative_to is not None:
            try:
                target = target.relative_to(relative_to)
            except ValueError:
                pass
        lines = [f"![{artifact.title}]({target.as_posix()})"]
    else:
        lines = [f"**{artifact.title}**", "", "```", artifact.text or "", "```"]
    if artifact.caption:
        lines.extend(["", f"*{artifact.caption}*"])
    return "\n".join(lines)


def render_markdown(
    doc: ReportDocument, relative_to: Optional[PathLike] = None
) -> str:
    """Render the document as markdown (figure paths relative to ``relative_to``)."""
    base = Path(relative_to) if relative_to is not None else None
    parts: List[str] = [f"# {doc.title}"]
    for block in doc.blocks:
        if isinstance(block, Heading):
            parts.append("#" * block.level + f" {block.text}")
        elif isinstance(block, Paragraph):
            parts.append(block.text)
        elif isinstance(block, TableBlock):
            parts.append(_markdown_table(block))
        elif isinstance(block, CodeBlock):
            parts.append(f"```\n{block.text}\n```")
        elif isinstance(block, FigureBlock):
            parts.append(_markdown_figure(block, base))
    return "\n\n".join(parts).rstrip() + "\n"


# --------------------------------------------------------------------------
# HTML renderer
# --------------------------------------------------------------------------
_HTML_STYLE = """
body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       max-width: 60rem; margin: 2rem auto; padding: 0 1rem; color: #1a202c; }
h1, h2, h3 { line-height: 1.25; }
table { border-collapse: collapse; margin: 0.75rem 0; font-size: 0.9rem; }
th, td { border: 1px solid #cbd5e0; padding: 0.3rem 0.6rem; text-align: left; }
th { background: #edf2f7; }
pre { background: #f7fafc; border: 1px solid #e2e8f0; padding: 0.75rem;
      overflow-x: auto; font-size: 0.85rem; line-height: 1.3; }
img { max-width: 100%; }
.caption { color: #4a5568; font-style: italic; font-size: 0.85rem; }
.missing { color: #c53030; font-weight: 600; }
"""


def _html_escape(value: Any) -> str:
    return html_lib.escape(_cell(value) if not isinstance(value, str) else value)


def _html_table(block: TableBlock) -> str:
    head = "".join(f"<th>{_html_escape(h)}</th>" for h in block.headers)
    body_rows = []
    for row in block.rows:
        cells = []
        for value in row:
            rendered = _html_escape(value)
            if rendered == MISSING_MARKER:
                rendered = f'<span class="missing">{rendered}</span>'
            cells.append(f"<td>{rendered}</td>")
        body_rows.append("<tr>" + "".join(cells) + "</tr>")
    parts = [f"<table><thead><tr>{head}</tr></thead><tbody>{''.join(body_rows)}</tbody></table>"]
    if block.caption:
        parts.append(f'<p class="caption">{_html_escape(block.caption)}</p>')
    return "\n".join(parts)


def _html_figure(block: FigureBlock) -> str:
    artifact = block.artifact
    if artifact.is_png and artifact.path is not None:
        data = base64.b64encode(artifact.path.read_bytes()).decode("ascii")
        body = (
            f'<img alt="{_html_escape(artifact.title)}" '
            f'src="data:image/png;base64,{data}">'
        )
    else:
        body = f"<pre>{_html_escape(artifact.text or '')}</pre>"
    parts = [f"<h4>{_html_escape(artifact.title)}</h4>", body]
    if artifact.caption:
        parts.append(f'<p class="caption">{_html_escape(artifact.caption)}</p>')
    return "\n".join(parts)


def render_html(doc: ReportDocument) -> str:
    """Render the document as one self-contained HTML page (figures embedded)."""
    parts: List[str] = [f"<h1>{_html_escape(doc.title)}</h1>"]
    for block in doc.blocks:
        if isinstance(block, Heading):
            parts.append(f"<h{block.level}>{_html_escape(block.text)}</h{block.level}>")
        elif isinstance(block, Paragraph):
            text = _html_escape(block.text)
            parts.append(f"<p>{text}</p>")
        elif isinstance(block, TableBlock):
            parts.append(_html_table(block))
        elif isinstance(block, CodeBlock):
            parts.append(f"<pre>{_html_escape(block.text)}</pre>")
        elif isinstance(block, FigureBlock):
            parts.append(_html_figure(block))
    body = "\n".join(parts)
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
        f"<title>{_html_escape(doc.title)}</title>\n"
        f"<style>{_HTML_STYLE}</style>\n</head>\n<body>\n{body}\n</body>\n</html>\n"
    )


def write_report(
    doc: ReportDocument,
    html_dir: Optional[PathLike] = None,
    markdown_path: Optional[PathLike] = None,
) -> Dict[str, Path]:
    """Persist the rendered report; returns ``{"html": ..., "markdown": ...}``."""
    written: Dict[str, Path] = {}
    if html_dir is not None:
        html_dir = Path(html_dir)
        html_dir.mkdir(parents=True, exist_ok=True)
        index = html_dir / "index.html"
        index.write_text(render_html(doc), encoding="utf-8")
        written["html"] = index
    if markdown_path is not None:
        markdown_path = Path(markdown_path)
        markdown_path.parent.mkdir(parents=True, exist_ok=True)
        markdown_path.write_text(
            render_markdown(doc, relative_to=markdown_path.parent), encoding="utf-8"
        )
        written["markdown"] = markdown_path
    return written


# --------------------------------------------------------------------------
# Legacy experiment-result rendering (the experiments/report.py contract)
# --------------------------------------------------------------------------
def experiment_results_markdown(results, title: Optional[str] = None) -> str:
    """Markdown for a list of :class:`ExperimentResult` (legacy report shape).

    This is the renderer behind
    :func:`repro.experiments.report.render_markdown_report`; the section
    format (``## <id> — <title>``, fenced ASCII table, findings bullets) is
    stable because downstream notebooks parse it.
    """
    lines: List[str] = []
    if title:
        lines.append(f"# {title}")
        lines.append("")
    for result in results:
        lines.append(f"## {result.experiment_id} — {result.title}")
        lines.append("")
        lines.append("```")
        lines.append(result.table.render())
        lines.append("```")
        if result.findings:
            lines.append("")
            lines.append("Findings:")
            for key in sorted(result.findings):
                lines.append(f"* `{key}` = {result.findings[key]}")
        lines.append("")
    return "\n".join(lines)
