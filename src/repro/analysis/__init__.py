"""Tradeoff analysis and report generation over stored experiment results.

The consumption layer of the pipeline: everything the runtime produces — a
content-addressed result store filled by ``repro run … --store DIR`` — turns
into the paper-style analysis here.  The subsystem is a straight pipeline:

* :mod:`repro.analysis.loader` — walk a store directory into tidy
  :class:`~repro.analysis.records.AnalysisRecord` rows plus explicit
  missing-cell accounting for partially-run grids;
* :mod:`repro.analysis.tradeoff` — min/median/max envelopes, per-group
  tradeoff points, and the paper's ``m·n^{1/α}`` reference curve;
* :mod:`repro.analysis.figures` — matplotlib figures when the ``repro[viz]``
  extra is installed, deterministic Unicode text charts otherwise;
* :mod:`repro.analysis.bench` — the committed ``BENCH_*.json`` perf
  baselines as chartable trajectories;
* :mod:`repro.analysis.render` — a block-structured report document rendered
  to markdown and one self-contained HTML page.

The CLI front end is ``repro report <store-dir> [--grid ADV] [--html out/]``.

Example — the whole pipeline on an empty store still renders::

    >>> import tempfile
    >>> doc = build_report(load_store(tempfile.mkdtemp()))
    >>> "Missing cells" in render_markdown(doc)
    True
"""

from repro.analysis.bench import (
    BenchEntry,
    BenchTrajectory,
    load_bench_trajectories,
)
from repro.analysis.figures import (
    HAVE_MATPLOTLIB,
    FigureArtifact,
    bench_trajectory_figure,
    hbar,
    passes_vs_space_figure,
    space_vs_approximation_figure,
    sparkline,
)
from repro.analysis.loader import (
    MissingCell,
    StoreAnalysis,
    detect_grids,
    load_store,
    resolve_grid,
)
from repro.analysis.records import (
    AnalysisRecord,
    OUTCOMES,
    experiment_records,
    outcome_counts,
    record_from_entry,
    workload_records,
)
from repro.analysis.render import (
    MISSING_MARKER,
    ReportDocument,
    build_report,
    experiment_results_markdown,
    render_html,
    render_markdown,
    write_report,
)
from repro.analysis.tradeoff import (
    Envelope,
    TradeoffPoint,
    aggregate,
    space_approximation_points,
    theoretical_curve,
    theoretical_space,
    typical_instance_shape,
)

__all__ = [
    "AnalysisRecord",
    "BenchEntry",
    "BenchTrajectory",
    "Envelope",
    "FigureArtifact",
    "HAVE_MATPLOTLIB",
    "MISSING_MARKER",
    "MissingCell",
    "OUTCOMES",
    "ReportDocument",
    "StoreAnalysis",
    "TradeoffPoint",
    "aggregate",
    "bench_trajectory_figure",
    "build_report",
    "detect_grids",
    "experiment_records",
    "experiment_results_markdown",
    "hbar",
    "load_bench_trajectories",
    "load_store",
    "outcome_counts",
    "passes_vs_space_figure",
    "record_from_entry",
    "render_html",
    "render_markdown",
    "resolve_grid",
    "space_approximation_points",
    "space_vs_approximation_figure",
    "sparkline",
    "theoretical_curve",
    "theoretical_space",
    "typical_instance_shape",
    "workload_records",
    "write_report",
]
