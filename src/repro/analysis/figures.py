"""Figure generation: matplotlib when available, text charts always.

Every figure function returns a :class:`FigureArtifact` that is either a PNG
written under an output directory (matplotlib installed — the ``repro[viz]``
extra — *and* the caller asked for files) or a deterministic Unicode text
chart.  The renderer embeds either kind, so reports are identical in
structure with and without matplotlib; only the figure fidelity changes.
Pass ``use_mpl=False`` to force the text path (that is also how the fallback
stays covered by tests on machines that do have matplotlib).

Example — a sparkline and a bar are plain strings::

    >>> sparkline([1, 2, 3, 8])
    '▁▂▃█'
    >>> hbar(3, 6, width=4)
    '██░░'
"""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.analysis.bench import BenchTrajectory
from repro.analysis.tradeoff import TradeoffPoint

PathLike = Union[str, Path]

#: Whether the optional plotting dependency is importable at all.
HAVE_MATPLOTLIB = importlib.util.find_spec("matplotlib") is not None

SPARK_LEVELS = "▁▂▃▄▅▆▇█"
BAR_FULL, BAR_EMPTY = "█", "░"


@dataclass(frozen=True)
class FigureArtifact:
    """One rendered figure: a PNG on disk or a text chart, plus metadata."""

    slug: str
    title: str
    kind: str  # "png" | "text"
    path: Optional[Path] = None
    text: Optional[str] = None
    caption: str = ""

    @property
    def is_png(self) -> bool:
        return self.kind == "png"


def sparkline(values: Sequence[float], lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """Render values as a block-character sparkline (empty input → '')."""
    data = [float(value) for value in values]
    if not data:
        return ""
    lo = min(data) if lo is None else lo
    hi = max(data) if hi is None else hi
    if hi <= lo:
        return SPARK_LEVELS[0] * len(data)
    span = hi - lo
    top = len(SPARK_LEVELS) - 1
    return "".join(
        SPARK_LEVELS[min(top, int((value - lo) / span * top + 0.5))] for value in data
    )


def hbar(value: float, maximum: float, width: int = 20) -> str:
    """A fixed-width horizontal bar, filled proportionally to ``value``."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if maximum <= 0:
        return BAR_EMPTY * width
    filled = min(width, max(0, round(value / maximum * width)))
    return BAR_FULL * filled + BAR_EMPTY * (width - filled)


def _use_matplotlib(outdir: Optional[PathLike], use_mpl: Optional[bool]) -> bool:
    if use_mpl is False or outdir is None:
        return False
    if use_mpl is True and not HAVE_MATPLOTLIB:
        raise RuntimeError(
            "matplotlib requested but not installed; pip install -e .[viz]"
        )
    return HAVE_MATPLOTLIB


def _pyplot():  # pragma: no cover - exercised only with matplotlib installed
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    return plt


def _save(fig, outdir: PathLike, slug: str) -> Path:  # pragma: no cover - mpl only
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / f"{slug}.png"
    fig.savefig(path, dpi=144, bbox_inches="tight")
    return path


def _errorbar_args(envelope) -> Tuple[List[float], List[List[float]]]:
    return [envelope.mid], [[envelope.mid - envelope.lo], [envelope.hi - envelope.mid]]


def space_vs_approximation_figure(
    points: Sequence[TradeoffPoint],
    outdir: Optional[PathLike] = None,
    use_mpl: Optional[bool] = None,
    slug: str = "space_vs_approximation",
) -> FigureArtifact:
    """The headline figure: peak space against approximation ratio per group.

    Each point is a group (typically one algorithm) at its median position
    with min–max envelope whiskers on both axes — the empirical face of the
    paper's space–approximation tradeoff.
    """
    title = "Peak space vs approximation ratio"
    caption = (
        "Median position per group; whiskers span the min–max envelope "
        "across workloads, arrival orders, and seeds."
    )
    usable = [p for p in points if p.ratio is not None and p.space is not None]
    if _use_matplotlib(outdir, use_mpl):  # pragma: no cover - mpl only
        plt = _pyplot()
        fig, ax = plt.subplots(figsize=(6.4, 4.2))
        for point in usable:
            x, xerr = _errorbar_args(point.ratio)
            y, yerr = _errorbar_args(point.space)
            ax.errorbar(
                x, y, xerr=xerr, yerr=yerr, marker="o", capsize=3,
                label=point.short_label,
            )
        ax.set_xlabel("approximation ratio (solution / opt bound)")
        ax.set_ylabel("peak space (words)")
        if usable and min(p.space.lo for p in usable) > 0:
            ax.set_yscale("log")
        ax.set_title(title)
        if usable:
            ax.legend(fontsize=8)
        path = _save(fig, outdir, slug)
        plt.close(fig)
        return FigureArtifact(slug=slug, title=title, kind="png", path=path, caption=caption)

    if not usable:
        return FigureArtifact(
            slug=slug, title=title, kind="text",
            text="(no cells with both a ratio and a space measurement)",
            caption=caption,
        )
    label_width = max(len(p.short_label) for p in usable)
    max_space = max(p.space.hi for p in usable)
    lines = [f"{'group'.ljust(label_width)} | ratio lo/mid/hi | peak words lo/mid/hi | space"]
    for point in sorted(usable, key=lambda p: p.space.mid):
        lines.append(
            f"{point.short_label.ljust(label_width)} | "
            f"{point.ratio.format():>15} | "
            f"{point.space.format():>20} | "
            f"{hbar(point.space.mid, max_space)}"
        )
    return FigureArtifact(
        slug=slug, title=title, kind="text", text="\n".join(lines), caption=caption
    )


def passes_vs_space_figure(
    points: Sequence[TradeoffPoint],
    theory: Sequence[Tuple[float, float]] = (),
    outdir: Optional[PathLike] = None,
    use_mpl: Optional[bool] = None,
    slug: str = "passes_vs_space",
) -> FigureArtifact:
    """Pass count against peak space, with the Θ̃(m·n^{1/α}) reference line."""
    title = "Passes vs peak space"
    caption = (
        "Each group at its median pass count and space envelope; the dashed "
        "reference is the paper's m·n^(1/α) bound at the grid's typical "
        "instance shape."
    )
    usable = [p for p in points if p.passes is not None and p.space is not None]
    if _use_matplotlib(outdir, use_mpl):  # pragma: no cover - mpl only
        plt = _pyplot()
        fig, ax = plt.subplots(figsize=(6.4, 4.2))
        for point in usable:
            y, yerr = _errorbar_args(point.space)
            ax.errorbar(
                [point.passes.mid], y, yerr=yerr, marker="s", capsize=3,
                label=point.short_label,
            )
        if theory:
            ax.plot(
                [alpha for alpha, _ in theory],
                [space for _, space in theory],
                linestyle="--", color="black", label="m·n^(1/α)",
            )
        ax.set_xlabel("passes (α)")
        ax.set_ylabel("peak space (words)")
        if usable and min(p.space.lo for p in usable) > 0:
            ax.set_yscale("log")
        ax.set_title(title)
        if usable or theory:
            ax.legend(fontsize=8)
        path = _save(fig, outdir, slug)
        plt.close(fig)
        return FigureArtifact(slug=slug, title=title, kind="png", path=path, caption=caption)

    lines: List[str] = []
    if usable:
        label_width = max(len(p.short_label) for p in usable)
        max_space = max(p.space.hi for p in usable)
        lines.append(f"{'group'.ljust(label_width)} | passes | peak words lo/mid/hi | space")
        for point in sorted(usable, key=lambda p: (p.passes.mid, p.space.mid)):
            lines.append(
                f"{point.short_label.ljust(label_width)} | "
                f"{point.passes.format():>6} | "
                f"{point.space.format():>20} | "
                f"{hbar(point.space.mid, max_space)}"
            )
    else:
        lines.append("(no cells with both a pass count and a space measurement)")
    if theory:
        samples = [space for _, space in theory]
        alphas = ", ".join(format(alpha, "g") for alpha, _ in theory)
        lines.append("")
        lines.append(f"theory m*n^(1/alpha) for alpha={alphas}: {sparkline(samples)}")
        lines.append(
            "            " + "  ".join(format(space, ".4g") for space in samples)
        )
    return FigureArtifact(
        slug=slug, title=title, kind="text", text="\n".join(lines), caption=caption
    )


def bench_trajectory_figure(
    trajectories: Sequence[BenchTrajectory],
    outdir: Optional[PathLike] = None,
    use_mpl: Optional[bool] = None,
    slug: str = "bench_trajectory",
) -> FigureArtifact:
    """Committed benchmark baselines as per-area speedup series."""
    title = "Benchmark speedups vs the frozen seed lineage"
    caption = "One series per committed BENCH_*.json baseline."
    if _use_matplotlib(outdir, use_mpl):  # pragma: no cover - mpl only
        plt = _pyplot()
        fig, ax = plt.subplots(figsize=(6.4, 4.2))
        for trajectory in trajectories:
            ax.plot(
                range(len(trajectory.entries)),
                [entry.speedup for entry in trajectory.entries],
                marker="o", label=trajectory.name,
            )
        ax.set_xlabel("grid entry")
        ax.set_ylabel("speedup (x)")
        ax.axhline(1.0, color="grey", linewidth=0.8)
        ax.set_title(title)
        if trajectories:
            ax.legend(fontsize=8)
        path = _save(fig, outdir, slug)
        plt.close(fig)
        return FigureArtifact(slug=slug, title=title, kind="png", path=path, caption=caption)

    if not trajectories:
        return FigureArtifact(
            slug=slug, title=title, kind="text",
            text="(no BENCH_*.json baselines found)", caption=caption,
        )
    name_width = max(len(t.name) for t in trajectories)
    lines = []
    for trajectory in trajectories:
        speedups = [entry.speedup for entry in trajectory.entries]
        lines.append(
            f"{trajectory.name.ljust(name_width)}  {sparkline(speedups, lo=0.0)}  "
            f"best {trajectory.best:.1f}x  "
            f"({', '.join(f'{s:.1f}' for s in speedups)})"
        )
    return FigureArtifact(
        slug=slug, title=title, kind="text", text="\n".join(lines), caption=caption
    )
