"""Space–approximation tradeoff math over flattened analysis records.

The paper's headline result is the tight bound Θ̃(m·n^{1/α}) on the space of
an α-pass O(α)-approximation streaming set cover algorithm.  This module
turns a bag of :class:`~repro.analysis.records.AnalysisRecord` into the
curves that exhibit it: records are grouped along chosen axes (by algorithm;
by algorithm × workload; ...), each group's approximation ratio / pass count
/ peak space collapse into min–median–max :class:`Envelope` summaries across
seeds and sibling cells, and :func:`theoretical_curve` evaluates the paper's
``m·n^{1/α}`` reference line on the same scale for overlay.

Example — one group, hand-checkable envelope arithmetic::

    >>> lo, mid, hi = Envelope.from_values([4.0, 1.0, 2.0])
    >>> (lo, mid, hi)
    (1.0, 2.0, 4.0)
    >>> theoretical_space(n=64, m=10, alpha=2)   # m * n^(1/2)
    80.0
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.records import AnalysisRecord

GroupKey = Tuple[Tuple[str, object], ...]


@dataclass(frozen=True)
class Envelope:
    """Min / median / max of a metric across a group of records."""

    lo: float
    mid: float
    hi: float

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Envelope":
        data = sorted(float(value) for value in values)
        if not data:
            raise ValueError("cannot build an envelope from no values")
        return cls(lo=data[0], mid=float(statistics.median(data)), hi=data[-1])

    def __iter__(self):
        yield self.lo
        yield self.mid
        yield self.hi

    def format(self, spec: str = ".3g") -> str:
        """Compact ``lo / mid / hi`` display (collapses constant envelopes)."""
        if self.lo == self.hi:
            return format(self.mid, spec)
        return " / ".join(format(value, spec) for value in self)


@dataclass(frozen=True)
class TradeoffPoint:
    """One group's aggregated position in the tradeoff space."""

    group: GroupKey
    count: int
    ratio: Optional[Envelope] = None
    space: Optional[Envelope] = None
    passes: Optional[Envelope] = None

    @property
    def label(self) -> str:
        """Human-readable group label (``algorithm=x, workload=y``)."""
        return ", ".join(f"{name}={value}" for name, value in self.group)

    @property
    def short_label(self) -> str:
        """Group values only — the usual series label (``x, y``)."""
        return ", ".join(str(value) for _, value in self.group)


def _envelope_of(
    records: Sequence[AnalysisRecord], attribute: str
) -> Optional[Envelope]:
    values = [
        value
        for value in (getattr(record, attribute) for record in records)
        if value is not None
    ]
    return Envelope.from_values(values) if values else None


def aggregate(
    records: Sequence[AnalysisRecord],
    by: Sequence[str] = ("algorithm",),
) -> List[TradeoffPoint]:
    """Group records by the given attributes and summarise each group.

    Records with a ``None`` value on any grouping attribute are excluded
    (they belong to runners that do not report that axis).  Groups come back
    sorted by their key, so output order is deterministic.
    """
    groups: Dict[GroupKey, List[AnalysisRecord]] = {}
    for record in records:
        values = [getattr(record, attribute) for attribute in by]
        if any(value is None for value in values):
            continue
        key: GroupKey = tuple(zip(by, values))
        groups.setdefault(key, []).append(record)
    return [
        TradeoffPoint(
            group=key,
            count=len(members),
            ratio=_envelope_of(members, "approx_ratio"),
            space=_envelope_of(members, "peak_space_words"),
            passes=_envelope_of(members, "passes"),
        )
        for key, members in sorted(groups.items(), key=lambda item: str(item[0]))
    ]


def space_approximation_points(
    records: Sequence[AnalysisRecord],
    by: Sequence[str] = ("algorithm",),
) -> List[TradeoffPoint]:
    """The groups that landed somewhere measurable in (ratio, space) space."""
    return [
        point
        for point in aggregate(records, by=by)
        if point.ratio is not None and point.space is not None
    ]


def theoretical_space(n: int, m: int, alpha: float) -> float:
    """The paper's space bound ``m · n^{1/α}`` (Theorem 1, up to polylog)."""
    if n < 1 or m < 1:
        raise ValueError(f"need n, m >= 1, got n={n} m={m}")
    if alpha <= 0:
        raise ValueError(f"need alpha > 0, got {alpha}")
    return m * n ** (1.0 / alpha)


def theoretical_curve(
    n: int, m: int, alphas: Sequence[float] = (1, 2, 3, 4, 5)
) -> List[Tuple[float, float]]:
    """``(α, m·n^{1/α})`` samples of the paper's tradeoff reference line."""
    return [(float(alpha), theoretical_space(n, m, alpha)) for alpha in alphas]


def typical_instance_shape(
    records: Sequence[AnalysisRecord],
) -> Optional[Tuple[int, int]]:
    """Median ``(n, m)`` across the records that report an instance shape."""
    shapes = [
        (record.universe_size, record.num_sets)
        for record in records
        if record.universe_size and record.num_sets
    ]
    if not shapes:
        return None
    n = int(statistics.median(sorted(shape[0] for shape in shapes)))
    m = int(statistics.median(sorted(shape[1] for shape in shapes)))
    return n, m
