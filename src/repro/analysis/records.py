"""Tidy row records: one store entry flattened into analysable fields.

The result store keeps whatever the experiment runner returned — a table
payload plus free-form findings.  Analysis wants *tidy data*: one flat record
per cell with the tradeoff-relevant fields (workload axes, pass count, space
used vs budget, solution quality) pulled into typed attributes, so the
tradeoff math and the report renderer never re-parse runner-specific payload
shapes.  :func:`record_from_entry` performs that flattening for any store
entry; ``WL`` workload cells get the full schema, other runners (the E1–E12
paper experiments) keep their table/findings accessible via
:attr:`AnalysisRecord.table` and :attr:`AnalysisRecord.findings`.

Example — flatten a stored workload cell and read its outcome::

    >>> entry = {
    ...     "fingerprint": "ab" * 32,
    ...     "key": "ADV[algorithm=greedy,order=random,workload=dsc]",
    ...     "task": {"runner": "WL", "seed": 7, "params": [["workload", "dsc"]]},
    ...     "result": {
    ...         "experiment_id": "WL", "title": "demo",
    ...         "table": {"headers": ["n", "m"], "rows": [[96, 24]], "title": None},
    ...         "findings": {"workload": "dsc", "algorithm": "greedy",
    ...                      "order": "random", "solution_size": 6, "opt_guess": 3,
    ...                      "feasible": True, "passes": 2, "peak_space_words": 40},
    ...     },
    ... }
    >>> record = record_from_entry(entry)
    >>> (record.algorithm, record.passes, record.approx_ratio, record.outcome)
    ('greedy', 2, 2.0, 'ok')
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Outcome labels, in report-display order.
OUTCOME_OK = "ok"
OUTCOME_INFEASIBLE = "infeasible"
OUTCOME_BUDGET_EXCEEDED = "budget_exceeded"
OUTCOME_UNCOVERABLE = "uncoverable"
OUTCOMES = (
    OUTCOME_OK,
    OUTCOME_INFEASIBLE,
    OUTCOME_BUDGET_EXCEEDED,
    OUTCOME_UNCOVERABLE,
)


@dataclass(frozen=True)
class AnalysisRecord:
    """One flattened result cell: task identity plus tradeoff metrics.

    Workload-axis attributes (``workload``, ``algorithm``, ``order``) and the
    metric attributes are ``None`` whenever the underlying runner did not
    report them — records from the paper experiments E1–E12 carry only
    identity, ``table``, and ``findings``.
    """

    key: str
    runner: str
    experiment_id: str
    title: str
    fingerprint: str
    seed: Optional[int] = None
    params: Tuple[Tuple[str, Any], ...] = ()
    # -- workload axes ----------------------------------------------------
    workload: Optional[str] = None
    algorithm: Optional[str] = None
    order: Optional[str] = None
    universe_size: Optional[int] = None
    num_sets: Optional[int] = None
    # -- solution quality -------------------------------------------------
    solution_size: Optional[int] = None
    opt_bound: Optional[int] = None
    opt_is_planted: bool = False
    feasible: Optional[bool] = None
    passes: Optional[int] = None
    # -- space accounting (the SpaceReport fields, per row) ----------------
    peak_space_words: Optional[int] = None
    final_space_words: Optional[int] = None
    stored_incidences_peak: Optional[int] = None
    dominant_category: Optional[str] = None
    space_budget: Optional[int] = None
    budget_exceeded: bool = False
    instance_uncoverable: bool = False
    # -- raw payload ------------------------------------------------------
    findings: Mapping[str, Any] = field(default_factory=dict)
    table: Mapping[str, Any] = field(default_factory=dict)
    #: The computing run's summarized telemetry block (counters / gauges /
    #: span summary), when the entry was written with capture on.
    telemetry: Optional[Mapping[str, Any]] = None

    @property
    def is_workload(self) -> bool:
        """Whether this record carries the workload-sweep schema."""
        return self.workload is not None and self.algorithm is not None

    @property
    def approx_ratio(self) -> Optional[float]:
        """``solution_size / opt_bound`` when both are known, else ``None``.

        A solution that is *known infeasible* has no meaningful ratio (it can
        undercut opt precisely because it covers too little), so it reports
        ``None`` rather than polluting the tradeoff envelopes.
        """
        if self.solution_size is None or not self.opt_bound:
            return None
        if self.feasible is False:
            return None
        return self.solution_size / self.opt_bound

    @property
    def space_fraction(self) -> Optional[float]:
        """Peak space as a fraction of the armed budget (``None`` unbudgeted)."""
        if self.peak_space_words is None or not self.space_budget:
            return None
        return self.peak_space_words / self.space_budget

    @property
    def outcome(self) -> str:
        """Row outcome: ``ok`` / ``infeasible`` / ``budget_exceeded`` / ``uncoverable``."""
        if self.budget_exceeded:
            return OUTCOME_BUDGET_EXCEEDED
        if self.instance_uncoverable:
            return OUTCOME_UNCOVERABLE
        if self.feasible is False:
            return OUTCOME_INFEASIBLE
        return OUTCOME_OK


def _as_optional_int(value: Any) -> Optional[int]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return int(value)


def _table_cell(table: Mapping[str, Any], column: str) -> Any:
    """First-row value of a named table column, or ``None``."""
    headers: Sequence[Any] = table.get("headers") or ()
    rows: Sequence[Sequence[Any]] = table.get("rows") or ()
    if column not in headers or not rows:
        return None
    return rows[0][list(headers).index(column)]


def record_from_entry(entry: Mapping[str, Any]) -> AnalysisRecord:
    """Flatten one store entry (the parsed JSON dict) into a record.

    Tolerant by construction: every metric falls back to ``None`` when the
    stored findings do not carry it, and fields that newer writers add
    (``dominant_category``, ``final_space_words``) are recovered from the
    stored table for entries written before they existed.
    """
    task: Mapping[str, Any] = entry.get("task") or {}
    result: Mapping[str, Any] = entry.get("result") or {}
    findings: Mapping[str, Any] = result.get("findings") or {}
    table: Mapping[str, Any] = result.get("table") or {}

    planted = _as_optional_int(findings.get("planted_opt"))
    opt_bound = planted if planted else _as_optional_int(findings.get("opt_guess"))

    def metric(name: str) -> Optional[int]:
        value = _as_optional_int(findings.get(name))
        return value if value is not None else _as_optional_int(_table_cell(table, name))

    dominant = findings.get("dominant_category")
    if dominant is None:
        dominant = _table_cell(table, "dominant_category")
    if dominant == "-":
        dominant = None

    feasible = findings.get("feasible")
    if not isinstance(feasible, bool):
        feasible = None

    return AnalysisRecord(
        key=str(entry.get("key", "")),
        runner=str(task.get("runner", "")),
        experiment_id=str(result.get("experiment_id", "")),
        title=str(result.get("title", "")),
        fingerprint=str(entry.get("fingerprint", "")),
        seed=_as_optional_int(task.get("seed")),
        params=tuple(
            (str(name), _thaw(value)) for name, value in (task.get("params") or ())
        ),
        workload=findings.get("workload"),
        algorithm=findings.get("algorithm"),
        order=findings.get("order"),
        universe_size=metric("n"),
        num_sets=metric("m"),
        solution_size=_as_optional_int(findings.get("solution_size")),
        opt_bound=opt_bound,
        opt_is_planted=bool(planted),
        feasible=feasible,
        passes=_as_optional_int(findings.get("passes")),
        peak_space_words=metric("peak_space_words"),
        final_space_words=metric("final_space_words"),
        stored_incidences_peak=_as_optional_int(findings.get("stored_incidences_peak")),
        dominant_category=dominant,
        space_budget=_as_optional_int(findings.get("space_budget")),
        budget_exceeded=bool(findings.get("budget_exceeded", False)),
        instance_uncoverable=bool(findings.get("instance_uncoverable", False)),
        findings=dict(findings),
        table=dict(table),
        telemetry=entry.get("telemetry"),
    )


def _thaw(value: Any) -> Any:
    """JSON lists stored for frozen param tuples come back as tuples."""
    if isinstance(value, list):
        return tuple(_thaw(item) for item in value)
    return value


def workload_records(records: Sequence[AnalysisRecord]) -> List[AnalysisRecord]:
    """The subset of records carrying the workload-sweep schema."""
    return [record for record in records if record.is_workload]


def experiment_records(records: Sequence[AnalysisRecord]) -> List[AnalysisRecord]:
    """The subset of records that are *not* workload cells (E1–E12 etc.)."""
    return [record for record in records if not record.is_workload]


def outcome_counts(records: Sequence[AnalysisRecord]) -> Dict[str, int]:
    """How many records landed in each outcome bucket (all buckets present)."""
    counts = {outcome: 0 for outcome in OUTCOMES}
    for record in records:
        counts[record.outcome] = counts.get(record.outcome, 0) + 1
    return counts
