"""Walk a result-store directory into records plus missing-cell accounting.

:func:`load_store` reads every entry a
:class:`~repro.runtime.store.ResultStore` directory holds (the same sharded
``<2-hex>/<fingerprint>.json`` layout ``repro run --store`` writes), flattens
each into an :class:`~repro.analysis.records.AnalysisRecord`, and — when a
scenario grid is named or detected — expands the grid through the scenario
registry to find the cells the store does *not* hold yet.  Missing cells are
first-class data (the report renders them as explicit markers), so a
partially-resumed or empty store analyses cleanly instead of raising.

Grid resolution mirrors the CLI's ``run`` argument: an exact scenario name,
a scenario *tag* (``adversarial``), or a grid prefix (``ADV``, matching every
``ADV[...]`` expansion).  With no explicit grid, grids whose cells appear in
the store are detected from the stored task keys, so ``repro report`` on a
half-finished ``repro run adversarial --store`` shows exactly the cells that
still need computing.

Example — an empty store loads to zero records and zero grids::

    >>> import tempfile
    >>> analysis = load_store(tempfile.mkdtemp())
    >>> (len(analysis.records), analysis.missing, analysis.grids)
    (0, [], ())
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.records import (
    AnalysisRecord,
    experiment_records,
    record_from_entry,
    workload_records,
)
from repro.runtime.scenarios import (
    SCENARIO_REGISTRY,
    ScenarioSpec,
    iter_scenarios,
    natural_sort_key,
)
from repro.runtime.store import (
    STORE_FORMAT_VERSION,
    read_store_stats,
    task_fingerprint,
)
from repro.runtime.tasks import tasks_from_scenario

PathLike = Union[str, Path]


@dataclass(frozen=True)
class MissingCell:
    """One grid cell the store does not hold (yet)."""

    key: str
    scenario: str
    fingerprint: str


@dataclass
class StoreAnalysis:
    """Everything the report needs: records, gaps, and read diagnostics."""

    root: Path
    records: List[AnalysisRecord] = field(default_factory=list)
    missing: List[MissingCell] = field(default_factory=list)
    unreadable: List[Path] = field(default_factory=list)
    grids: Tuple[str, ...] = ()
    #: Cells the checked grids expect in total (present + missing), counted
    #: at load time against the same seed override the gap check used.
    expected_cells: int = 0
    #: Persisted hit/miss/put/skip totals from ``store_stats.json`` at the
    #: store root, or ``None`` when no run has flushed stats there yet.
    store_stats: Optional[Dict[str, int]] = None

    @property
    def workload_records(self) -> List[AnalysisRecord]:
        return workload_records(self.records)

    @property
    def experiment_records(self) -> List[AnalysisRecord]:
        return experiment_records(self.records)


def resolve_grid(name: str) -> List[ScenarioSpec]:
    """Resolve a grid argument exactly like the CLI's ``run`` argument.

    Tries, in order: exact scenario name, scenario tag, grid prefix
    (``name[...]``).  Raises :class:`KeyError` when nothing matches.
    """
    if name in SCENARIO_REGISTRY:
        return [SCENARIO_REGISTRY[name]]
    tagged = iter_scenarios(tag=name)
    if tagged:
        return tagged
    prefix = f"{name}["
    members = [spec for key, spec in SCENARIO_REGISTRY.items() if key.startswith(prefix)]
    if members:
        return sorted(members, key=lambda spec: natural_sort_key(spec.name))
    raise KeyError(
        f"unknown grid {name!r}: not a scenario name, tag, or grid prefix"
    )


def detect_grids(records: Sequence[AnalysisRecord]) -> Tuple[str, ...]:
    """Grid names whose expanded cells appear among the stored task keys.

    A stored key ``"ADV[...]"`` nominates grid ``ADV`` when the registry
    holds scenarios under that prefix; plain scenario keys nominate nothing
    (a single scenario has no notion of a missing sibling).
    """
    names = set()
    for record in records:
        key = record.key
        bracket = key.find("[")
        if bracket <= 0 or not key.endswith("]"):
            continue
        prefix = key[:bracket]
        if any(existing.startswith(f"{prefix}[") for existing in SCENARIO_REGISTRY):
            names.add(prefix)
    return tuple(sorted(names))


def _read_entry(path: Path) -> Optional[dict]:
    """Parse one store file; ``None`` for corrupt or foreign-format entries."""
    try:
        entry = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(entry, dict) or entry.get("format") != STORE_FORMAT_VERSION:
        return None
    if "result" not in entry or "fingerprint" not in entry:
        return None
    return entry


def load_store(
    store_dir: PathLike,
    grids: Optional[Sequence[str]] = None,
    seed_override: Optional[int] = None,
) -> StoreAnalysis:
    """Load every readable entry under ``store_dir`` and account for gaps.

    ``grids`` names the scenario grids whose coverage should be checked
    (``None`` auto-detects from the stored keys; pass ``()`` to skip the
    check entirely).  ``seed_override`` mirrors ``repro run --seed``: cells
    are expected at the fingerprints a run with that seed override would
    write.  Never raises on store *content* — unreadable files are collected
    in :attr:`StoreAnalysis.unreadable`, absent cells in
    :attr:`StoreAnalysis.missing`; only an unknown ``grids`` name raises
    (:class:`KeyError`), since that is a caller error rather than store
    state.
    """
    root = Path(store_dir)
    records: List[AnalysisRecord] = []
    unreadable: List[Path] = []
    for path in sorted(root.glob("*/*.json")):
        entry = _read_entry(path)
        if entry is None:
            unreadable.append(path)
            continue
        records.append(record_from_entry(entry))
    records.sort(key=lambda record: natural_sort_key(record.key))

    grid_names = tuple(grids) if grids is not None else detect_grids(records)
    expected: Dict[str, Tuple[str, str]] = {}
    for grid in grid_names:
        for scenario in resolve_grid(grid):
            for task in tasks_from_scenario(scenario, seed_override=seed_override):
                expected[task_fingerprint(task)] = (task.key, scenario.name)
    held = {record.fingerprint for record in records}
    missing = [
        MissingCell(key=key, scenario=scenario, fingerprint=fingerprint)
        for fingerprint, (key, scenario) in sorted(
            expected.items(), key=lambda item: natural_sort_key(item[1][0])
        )
        if fingerprint not in held
    ]
    return StoreAnalysis(
        root=root,
        records=records,
        missing=missing,
        unreadable=unreadable,
        grids=grid_names,
        expected_cells=len(expected),
        store_stats=read_store_stats(root),
    )
