"""Benchmark-trajectory loading: the committed ``BENCH_*.json`` baselines.

Each perf PR commits a ``BENCH_<area>.json`` baseline (kernels, streaming,
lower-bound samplers) whose grid entries carry measured speedups against the
frozen seed lineage.  This module parses the three known schemas into a
uniform :class:`BenchTrajectory` — a labelled series of speedups — so the
report can chart the perf trajectory next to the tradeoff results without
re-running any benchmark.

Unknown files and unknown schemas are skipped silently: the report must
render from any checkout, including one where a future PR renamed a
baseline.

Example — parse a minimal kernels baseline from a dict::

    >>> payload = {"schema": "bench_kernels/v1", "grid": [
    ...     {"n": 256, "m": 512, "greedy": {"speedup_numpy": 4.9}}]}
    >>> trajectory = _trajectory_from_payload("BENCH_kernels.json", payload)
    >>> [(entry.label, entry.speedup) for entry in trajectory.entries]
    [('256x512', 4.9)]
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Mapping, Optional, Union

PathLike = Union[str, Path]


@dataclass(frozen=True)
class BenchEntry:
    """One grid point of a benchmark baseline: a label and its speedup."""

    label: str
    speedup: float


@dataclass(frozen=True)
class BenchTrajectory:
    """One ``BENCH_*.json`` file reduced to a labelled speedup series."""

    name: str
    schema: str
    entries: List[BenchEntry]

    @property
    def best(self) -> float:
        return max(entry.speedup for entry in self.entries)


def _speedup(cell: Mapping[str, Any], *keys: str) -> Optional[float]:
    for key in keys:
        value = cell.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return None


def _trajectory_from_payload(
    filename: str, payload: Mapping[str, Any]
) -> Optional[BenchTrajectory]:
    """Reduce one parsed baseline to a trajectory (``None`` when unknown)."""
    schema = str(payload.get("schema", ""))
    grid = payload.get("grid")
    if not isinstance(grid, list):
        return None
    entries: List[BenchEntry] = []
    for cell in grid:
        if not isinstance(cell, Mapping):
            continue
        if schema.startswith("bench_kernels/"):
            label = f"{cell.get('n')}x{cell.get('m')}"
            speedup = _speedup(
                cell.get("greedy", {}), "speedup_numpy", "speedup_python"
            )
        elif schema.startswith("bench_streaming/"):
            label = f"{cell.get('n')}x{cell.get('m')}"
            speedup = _speedup(
                cell.get("e11_sweep", {}), "speedup_numpy", "speedup_python"
            )
        elif schema.startswith("bench_lowerbound/"):
            label = str(cell.get("kind", "?"))
            if cell.get("t") is not None:
                label = f"{label} t={cell['t']}"
            speedup = _speedup(cell, "speedup_batched")
        else:
            return None
        if speedup is not None:
            entries.append(BenchEntry(label=label, speedup=speedup))
    if not entries:
        return None
    name = Path(filename).stem
    if name.startswith("BENCH_"):
        name = name[len("BENCH_") :]
    return BenchTrajectory(name=name, schema=schema, entries=entries)


def load_bench_trajectories(root: PathLike = ".") -> List[BenchTrajectory]:
    """Parse every readable ``BENCH_*.json`` directly under ``root``."""
    trajectories: List[BenchTrajectory] = []
    for path in sorted(Path(root).glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, Mapping):
            continue
        trajectory = _trajectory_from_payload(path.name, payload)
        if trajectory is not None:
            trajectories.append(trajectory)
    return trajectories
