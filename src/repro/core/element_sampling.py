"""Element sampling (Lemma 3.12 of the paper).

Lemma 3.12: let ``0 < ρ < 1`` and let S be m subsets of [n] with
``opt(S) ≤ k``.  If ``U_smpl`` keeps each element independently with
probability ``p ≥ 16 · k · log m / (ρ · n)``, then with probability
``1 − 1/m²`` every collection of k sets covering ``U_smpl`` entirely also
covers at least ``(1 − ρ) · n`` elements of [n].

This module provides the sampling-rate formula and the sampler itself; the
streaming algorithm applies it to the *currently uncovered* universe in each
of its α iterations with ``ρ = n^{-1/α}``.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable

from repro.utils.bitset import bitset_to_set
from repro.utils.rng import RandomSource, SeedLike, spawn_rng


def sampling_probability(
    universe_size: int,
    num_sets: int,
    cover_size_bound: int,
    rho: float,
    constant: float = 16.0,
) -> float:
    """The Lemma 3.12 sampling rate ``min(1, c · k · log m / (ρ · n))``.

    Parameters
    ----------
    universe_size:
        n, the size of the (sub)universe being sampled.
    num_sets:
        m, the number of sets in the stream (enters through the union bound).
    cover_size_bound:
        k, the assumed upper bound on the optimal cover size (``õpt``).
    rho:
        Target residual fraction: covers of the sample miss at most ρ·n
        elements of the full universe.
    constant:
        The constant 16 from the lemma; exposed so the E3 ablation can sweep it.
    """
    if universe_size <= 0:
        return 1.0
    if not 0 < rho < 1:
        raise ValueError(f"rho must lie in (0, 1), got {rho}")
    if cover_size_bound <= 0:
        raise ValueError(f"cover_size_bound must be positive, got {cover_size_bound}")
    if num_sets < 2:
        num_sets = 2  # log m must be positive for the bound to make sense
    probability = constant * cover_size_bound * math.log(num_sets) / (rho * universe_size)
    return min(1.0, probability)


def element_sample(
    elements: Iterable[int],
    probability: float,
    seed: SeedLike = None,
) -> FrozenSet[int]:
    """Keep each element independently with the given probability.

    The per-element Bernoulli draws come from ``seed``'s stream in iteration
    order of ``elements``, batched through
    :meth:`~repro.utils.rng.RandomSource.random_batch` — bit-identical to one
    sequential ``bernoulli`` call per element (same kept set, same stream
    advancement), just without the per-element Python dispatch.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {probability}")
    rng: RandomSource = spawn_rng(seed)
    if probability >= 1.0:
        # The sequential loop short-circuits the draw at p = 1, so the batch
        # path must not consume from the stream either.
        return frozenset(elements)
    order = list(elements)
    draws = rng.random_batch(len(order))
    return frozenset(
        element for element, draw in zip(order, draws) if draw < probability
    )


def element_sample_mask(
    mask: int,
    probability: float,
    seed: SeedLike = None,
) -> int:
    """Mask-in/mask-out variant of :func:`element_sample`.

    Takes the candidate universe as a bitset and returns the sampled subset
    as a bitset, skipping the frozenset round trip at the call site (this is
    the form Algorithm 1's per-round sampling uses).  Output and stream
    consumption are identical to
    ``element_sample(bitset_to_set(mask), probability, seed)`` — the draws
    are deliberately made in that set's iteration order, not ascending bit
    order, so existing seeded runs reproduce byte for byte.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {probability}")
    rng: RandomSource = spawn_rng(seed)
    if probability >= 1.0:
        return mask
    order = list(bitset_to_set(mask))
    draws = rng.random_batch(len(order))
    sampled = 0
    for element, draw in zip(order, draws):
        if draw < probability:
            sampled |= 1 << element
    return sampled
