"""Algorithm 1 of the paper: the (α + ε)-approximation streaming set cover.

The algorithm assumes a value ``õpt`` that (1+ε)-approximates the optimal
cover size (the :class:`~repro.core.guessing.OptGuessingSetCover` wrapper
removes this assumption by running guesses in parallel).  It makes:

* one *pruning pass* picking every set that still covers at least
  ``n / (ε · õpt)`` uncovered elements (at most ``ε · õpt`` such picks), then
* ``α`` iterations, each consisting of an *element sampling* step (Lemma 3.12
  with ``ρ = n^{-1/α}``), a pass storing the projection of every set onto the
  sampled universe, an offline cover of the sampled sub-instance (computation
  is free in the streaming model), and a pass shrinking the uncovered
  universe by the chosen sets.

Total passes: ``2α + 1``; total space: ``Õ(m·n^{1/α}/ε + n)`` for one guess of
``õpt`` (Lemma 3.8), and the solution has at most ``(α + ε)·õpt`` sets
(Lemma 3.10) while covering the universe w.h.p. (Lemma 3.11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.element_sampling import element_sample_mask, sampling_probability
from repro.exceptions import InfeasibleInstanceError
from repro.setcover.exact import exact_set_cover
from repro.setcover.greedy import greedy_set_cover
from repro.setcover.instance import SetSystem
from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream
from repro.telemetry import metrics
from repro.telemetry.spans import span
from repro.utils.bitset import bitset_size
from repro.utils.rng import RandomSource, SeedLike, spawn_rng


@dataclass
class AlgorithmOneConfig:
    """Parameters of one Algorithm 1 run (for a fixed guess of ``õpt``).

    Attributes
    ----------
    alpha:
        Target approximation factor α ≥ 1; also the number of sampling rounds.
    opt_guess:
        The assumed (1+ε)-approximation ``õpt`` of the optimal cover size.
    epsilon:
        The ε of the first-pass pruning threshold and the approximation slack.
    sampling_constant:
        The constant in the Lemma 3.12 sampling rate (16 in the paper);
        exposed for the E3 ablation.
    subinstance_solver:
        ``"exact"`` uses the branch-and-bound optimum (as the paper assumes —
        computation is free in the model); ``"greedy"`` trades the per-round
        guarantee for speed on large sampled sub-instances.
    ensure_feasible:
        When True, a final clean-up pass greedily covers any elements left
        uncovered after the α rounds (the failure event of Lemma 3.11), so the
        returned solution is always a feasible cover.
    """

    alpha: int = 2
    opt_guess: int = 1
    epsilon: float = 0.5
    sampling_constant: float = 16.0
    subinstance_solver: str = "exact"
    ensure_feasible: bool = True

    def __post_init__(self) -> None:
        if self.alpha < 1:
            raise ValueError(f"alpha must be >= 1, got {self.alpha}")
        if self.opt_guess < 1:
            raise ValueError(f"opt_guess must be >= 1, got {self.opt_guess}")
        if not 0 < self.epsilon <= 1:
            raise ValueError(f"epsilon must lie in (0, 1], got {self.epsilon}")
        if self.subinstance_solver not in ("exact", "greedy"):
            raise ValueError(
                f"subinstance_solver must be 'exact' or 'greedy', got {self.subinstance_solver!r}"
            )


class StreamingSetCover(StreamingAlgorithm):
    """Algorithm 1: (α + ε)-approximate set cover in 2α + 1 passes."""

    name = "assadi-algorithm1"

    def __init__(
        self,
        config: AlgorithmOneConfig,
        seed: SeedLike = None,
        space_budget: Optional[int] = None,
    ) -> None:
        super().__init__(space_budget=space_budget)
        self.config = config
        self._rng: RandomSource = spawn_rng(seed)

    # -- main entry point ----------------------------------------------------
    def run(self, stream: SetStream) -> StreamingResult:
        n = stream.universe_size
        m = stream.num_sets
        cfg = self.config
        metadata: Dict[str, object] = {
            "alpha": cfg.alpha,
            "opt_guess": cfg.opt_guess,
            "epsilon": cfg.epsilon,
            "sample_sizes": [],
            "stored_incidences_per_round": [],
            "cleanup_used": False,
        }

        solution: List[int] = []
        chosen = set()
        uncovered_mask = (1 << n) - 1
        # The uncovered universe and the solution are part of the retained
        # state: n words for U (the paper's +n term) and |SOL| words.
        self.space.set_usage("uncovered_universe", n)
        self.space.set_usage("solution", 0)

        # ------------------------------------------------------------------
        # Pass 1: pruning — pick every set covering >= n / (eps * opt_guess)
        # still-uncovered elements.  One batched kernel call computes every
        # gain against the pass-entry universe; gains only shrink as picks
        # land, so sets below the threshold up front can never cross it and
        # only the surviving candidates are re-checked in arrival order.
        # ------------------------------------------------------------------
        threshold = n / (cfg.epsilon * cfg.opt_guess)
        with span("alg1.prune", threshold=threshold) as prune_span:
            uncovered_at_entry = bitset_size(uncovered_mask)
            system = stream.batched_pass()
            entry_gains = system.kernel().gains(uncovered_mask)
            for set_index in stream.arrival_order:
                if set_index in chosen or entry_gains[set_index] < threshold:
                    continue
                mask = system.mask(set_index)
                gain = bitset_size(mask & uncovered_mask)
                if gain >= threshold:
                    chosen.add(set_index)
                    solution.append(set_index)
                    uncovered_mask &= ~mask
                    self.space.set_usage("solution", len(solution))
            covered = uncovered_at_entry - bitset_size(uncovered_mask)
            prune_span.set(sets_admitted=len(solution), elements_covered=covered)
            metrics.add("alg1.sets_admitted", len(solution))
            metrics.add("alg1.elements_covered", covered)
            metrics.observe("pass.sets_admitted", len(solution))
            metrics.observe("pass.elements_covered", covered)

        # ------------------------------------------------------------------
        # alpha iterations of element sampling.
        # ------------------------------------------------------------------
        rho = n ** (-1.0 / cfg.alpha) if n > 1 else 0.5
        for _round in range(cfg.alpha):
            if uncovered_mask == 0:
                break
            with span("alg1.round", round=_round) as round_span:
                uncovered_at_entry = bitset_size(uncovered_mask)
                probability = sampling_probability(
                    universe_size=n,
                    num_sets=m,
                    cover_size_bound=cfg.opt_guess,
                    rho=rho,
                    constant=cfg.sampling_constant,
                )
                with span("alg1.sample", probability=probability):
                    sampled_mask = element_sample_mask(
                        uncovered_mask, probability, seed=self._rng.spawn()
                    )
                sample_size = bitset_size(sampled_mask)
                metadata["sample_sizes"].append(sample_size)
                self.space.set_usage("sampled_universe", sample_size)

                # Pass: store the projection of every set onto the sampled
                # universe — one batched kernel call; the incidence count is the
                # popcount of the rows it already produced.
                system = stream.batched_pass()
                with span("alg1.project", sample_size=sample_size) as project_span:
                    projected_masks: List[int] = system.kernel().restrict(sampled_mask)
                    stored_incidences = sum(
                        bitset_size(mask) for mask in projected_masks
                    )
                    project_span.set(stored_incidences=stored_incidences)
                self.space.set_usage("stored_incidences", stored_incidences)
                metadata["stored_incidences_per_round"].append(stored_incidences)

                # Offline: cover the sampled universe optimally (computation free).
                with span(
                    "alg1.solve", solver=cfg.subinstance_solver
                ) as solve_span:
                    round_solution = self._solve_subinstance(
                        n, projected_masks, sampled_mask, chosen
                    )
                    solve_span.set(round_solution_size=len(round_solution))

                # Pass: shrink the uncovered universe by the chosen (full) sets.
                system = stream.batched_pass()
                with span("alg1.shrink"):
                    uncovered_mask &= ~system.coverage_mask(round_solution)
                admitted = 0
                for set_index in round_solution:
                    if set_index not in chosen:
                        chosen.add(set_index)
                        solution.append(set_index)
                        admitted += 1
                self.space.set_usage("solution", len(solution))
                # Projections are discarded between rounds (one-shot pruning keeps
                # only the solution and the uncovered universe).
                self.space.reset_category("stored_incidences")
                self.space.reset_category("sampled_universe")
                covered = uncovered_at_entry - bitset_size(uncovered_mask)
                round_span.set(sets_admitted=admitted, elements_covered=covered)
                metrics.add("alg1.sets_admitted", admitted)
                metrics.add("alg1.elements_covered", covered)
                metrics.observe("pass.sets_admitted", admitted)
                metrics.observe("pass.elements_covered", covered)

        # ------------------------------------------------------------------
        # Optional clean-up pass: guarantee feasibility even when the
        # low-probability failure event of Lemma 3.11 occurs.
        # ------------------------------------------------------------------
        if cfg.ensure_feasible and uncovered_mask != 0:
            metadata["cleanup_used"] = True
            with span("alg1.cleanup") as cleanup_span:
                uncovered_at_entry = bitset_size(uncovered_mask)
                picks_before = len(solution)
                uncovered_mask = self._cleanup_pass(
                    stream, uncovered_mask, chosen, solution
                )
                admitted = len(solution) - picks_before
                covered = uncovered_at_entry - bitset_size(uncovered_mask)
                cleanup_span.set(sets_admitted=admitted, elements_covered=covered)
                metrics.add("alg1.sets_admitted", admitted)
                metrics.add("alg1.elements_covered", covered)
                metrics.observe("pass.sets_admitted", admitted)
                metrics.observe("pass.elements_covered", covered)

        metadata["uncovered_after_run"] = bitset_size(uncovered_mask)
        return self._finalize(stream, solution, metadata=metadata)

    # -- internals ----------------------------------------------------------
    def _solve_subinstance(
        self,
        n: int,
        projected_masks: List[int],
        target_mask: int,
        already_chosen: set,
    ) -> List[int]:
        """Cover the sampled universe using the stored projections."""
        if target_mask == 0:
            return []
        system = SetSystem.from_masks(n, projected_masks)
        # Elements of the sample already covered by previously chosen sets do
        # not need to be covered again.
        residual = target_mask
        for index in already_chosen:
            residual &= ~projected_masks[index]
        if residual == 0:
            return []
        try:
            if self.config.subinstance_solver == "exact":
                return exact_set_cover(system, target_mask=residual)
            return greedy_set_cover(system, required_mask=residual)
        except InfeasibleInstanceError:
            # The sampled elements not present in any set cannot be covered by
            # anyone; drop them (they are also uncoverable in the original
            # instance, or the guess õpt was wrong — the guessing wrapper
            # handles the latter by preferring feasible runs).
            coverable = 0
            for mask in projected_masks:
                coverable |= mask
            residual &= coverable
            if residual == 0:
                return []
            if self.config.subinstance_solver == "exact":
                return exact_set_cover(system, target_mask=residual)
            return greedy_set_cover(system, required_mask=residual)

    def _cleanup_pass(
        self,
        stream: SetStream,
        uncovered_mask: int,
        chosen: set,
        solution: List[int],
    ) -> int:
        """Greedily cover whatever is left in one extra pass.

        Batched like the pruning pass: sets disjoint from the pass-entry
        uncovered universe stay disjoint as it shrinks, so one kernel call
        prunes them and only live candidates are re-checked in arrival order.
        """
        system = stream.batched_pass()
        entry_gains = system.kernel().gains(uncovered_mask)
        for set_index in stream.arrival_order:
            if uncovered_mask == 0:
                break
            if set_index in chosen or entry_gains[set_index] == 0:
                continue
            mask = system.mask(set_index)
            if mask & uncovered_mask:
                chosen.add(set_index)
                solution.append(set_index)
                uncovered_mask &= ~mask
                self.space.set_usage("solution", len(solution))
        return uncovered_mask


def expected_pass_count(alpha: int, cleanup: bool = False) -> int:
    """The paper's pass count 2α + 1 (plus one optional clean-up pass)."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    return 2 * alpha + 1 + (1 if cleanup else 0)


def solution_size_bound(alpha: int, epsilon: float, opt_guess: int) -> float:
    """Lemma 3.10: the solution has at most (α + ε) · õpt sets."""
    return (alpha + epsilon) * opt_guess


def space_bound_words(
    universe_size: int,
    num_sets: int,
    alpha: int,
    epsilon: float,
    constant: float = 16.0,
) -> float:
    """Lemma 3.8 shape: Õ(m·n^{1/α}/ε + n) expected stored words.

    Returns the explicit expression ``constant · m · n^{1/α} · ln(m) / ε + n``
    used by E1 as the predicted curve against measured peak space.
    """
    if universe_size <= 1:
        return float(universe_size)
    log_m = math.log(max(num_sets, 2))
    return constant * num_sets * universe_size ** (1.0 / alpha) * log_m / epsilon + universe_size
