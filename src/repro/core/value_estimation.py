"""Streaming estimation of the optimal set cover *value*.

Theorem 1 emphasises that the Ω̃(m·n^{1/α}) lower bound applies "even for the
weaker goal of estimating the optimal value of the set cover instance (as
opposed to finding the actual sets)".  This module provides the corresponding
upper-bound object: a streaming algorithm that outputs only a number — an
(α+ε)-approximation of opt — by running Algorithm 1's sampling machinery and
discarding the witness sets.  Its space profile matches Algorithm 1's (it is
the same machinery), which is exactly what the paper says cannot be improved.

It also provides a cheap single-pass *lower-bound estimator* (the counting
bound n / max|S_i|) used by the experiments as a sanity baseline: it needs
only O(1) words but its estimate can be off by an unbounded factor, so it
does not contradict the lower bound.
"""

from __future__ import annotations

from typing import Optional

from repro.core.algorithm1 import AlgorithmOneConfig, StreamingSetCover
from repro.core.guessing import OptGuessingSetCover
from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream
from repro.utils.rng import SeedLike


class SetCoverValueEstimator(StreamingAlgorithm):
    """(α+ε)-approximate estimator of opt that reports only the value.

    Internally runs :class:`OptGuessingSetCover` (or a single
    :class:`StreamingSetCover` when ``opt_guess`` is provided) and returns the
    size of the found cover as the value estimate, with an empty solution
    list — mirroring the "estimate only" formulation of Theorem 1.
    """

    name = "setcover-value-estimator"

    def __init__(
        self,
        alpha: int,
        epsilon: float = 0.5,
        opt_guess: Optional[int] = None,
        sampling_constant: float = 16.0,
        subinstance_solver: str = "exact",
        seed: SeedLike = None,
        space_budget: Optional[int] = None,
    ) -> None:
        super().__init__(space_budget=space_budget)
        if alpha < 1:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        self.alpha = alpha
        self.epsilon = epsilon
        self.opt_guess = opt_guess
        self.sampling_constant = sampling_constant
        self.subinstance_solver = subinstance_solver
        self._seed = seed

    def run(self, stream: SetStream) -> StreamingResult:
        if self.opt_guess is not None:
            inner: StreamingAlgorithm = StreamingSetCover(
                AlgorithmOneConfig(
                    alpha=self.alpha,
                    opt_guess=self.opt_guess,
                    epsilon=self.epsilon,
                    sampling_constant=self.sampling_constant,
                    subinstance_solver=self.subinstance_solver,
                ),
                seed=self._seed,
            )
        else:
            inner = OptGuessingSetCover(
                alpha=self.alpha,
                epsilon=self.epsilon,
                sampling_constant=self.sampling_constant,
                subinstance_solver=self.subinstance_solver,
                seed=self._seed,
            )
        inner_result = inner.run(stream)
        # Mirror the inner algorithm's space usage on our own meter so the
        # engine-level accounting sees the true footprint.
        for category, words in inner_result.space.peak_by_category.items():
            self.space.set_usage(category, words)
            self.space.set_usage(category, 0)
        return StreamingResult(
            solution=[],
            estimated_value=float(inner_result.solution_size),
            passes=inner_result.passes,
            space=inner_result.space,
            metadata={
                "inner_algorithm": inner.name,
                "witness_size": inner_result.solution_size,
            },
        )


class CountingBoundEstimator(StreamingAlgorithm):
    """One-pass O(1)-word lower-bound estimator: ceil(n / max set size).

    Always a valid *lower bound* on opt, never an α-approximation for any
    fixed α — included as the "cheap but uninformative" end of the estimation
    spectrum that Theorem 1's lower bound does not (and need not) exclude.
    """

    name = "counting-bound-estimator"

    def __init__(self, space_budget: Optional[int] = None) -> None:
        super().__init__(space_budget=space_budget)

    def run(self, stream: SetStream) -> StreamingResult:
        n = stream.universe_size
        self.space.set_usage("counters", 2)
        # One batched kernel call replaces the per-set popcount loop.
        sizes = stream.batched_pass().kernel().set_sizes()
        largest = max(sizes, default=0)
        if largest == 0:
            estimate = float("inf") if n > 0 else 0.0
        else:
            estimate = float(-(-n // largest))
        return self._finalize(stream, [], estimated_value=estimate)
