"""The paper's space-approximation tradeoff bounds as explicit formulas.

These functions encode the statements of Theorems 1–5 (and the prior-work
bounds the paper compares against) so the experiment harness can plot measured
space against the predicted curves and fit scaling exponents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


def dsc_parameter_t(universe_size: int, num_sets: int, alpha: int) -> int:
    """The parameter ``t = 2^{-15} · (n / log m)^{1/α}`` of distribution D_SC.

    Result is clamped to at least 1 so small-scale experiments remain
    meaningful (the constant 2^{-15} is an artifact of the asymptotic proof).
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    if universe_size < 1 or num_sets < 2:
        return 1
    value = (universe_size / math.log(num_sets)) ** (1.0 / alpha) / 2 ** 15
    return max(1, int(value))


def dsc_parameter_t_unscaled(universe_size: int, num_sets: int, alpha: int) -> float:
    """``(n / log m)^{1/α}`` without the 2^{-15} constant (used at small n)."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    if universe_size < 1 or num_sets < 2:
        return 1.0
    return (universe_size / math.log(num_sets)) ** (1.0 / alpha)


def theorem1_space_lower_bound(
    universe_size: int, num_sets: int, alpha: int, passes: int = 1
) -> float:
    """Theorem 1: Ω̃(m · n^{1/α} / p) space for α-approximation in p passes."""
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    return num_sets * universe_size ** (1.0 / alpha) / passes


def theorem2_space_upper_bound(
    universe_size: int, num_sets: int, alpha: int, epsilon: float
) -> float:
    """Theorem 2: Õ(m·n^{1/α}/ε² + n/ε) space for an (α+ε)-approximation."""
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must lie in (0, 1], got {epsilon}")
    log_factor = math.log(max(universe_size, 2)) * math.log(max(num_sets, 2))
    return (
        log_factor * num_sets * universe_size ** (1.0 / alpha) / epsilon ** 2
        + universe_size / epsilon
    )


def theorem2_pass_count(alpha: int) -> int:
    """Theorem 2: 2α + 1 passes."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    return 2 * alpha + 1


def theorem4_maxcover_space_lower_bound(
    num_sets: int, epsilon: float, passes: int = 1
) -> float:
    """Theorem 4: Ω̃(m / (ε² · p)) space for (1−ε)-approximate max coverage."""
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    return num_sets / (epsilon ** 2 * passes)


def har_peled_space_bound(
    universe_size: int, num_sets: int, alpha: int, exponent_constant: float = 2.0
) -> float:
    """Har-Peled et al. (PODS 2016): Õ(m·n^{Θ(1/α)}) with a constant > 2
    in the exponent — the bound Algorithm 1 improves to exactly 1/α."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    return num_sets * universe_size ** (min(1.0, exponent_constant / alpha))


def demaine_space_bound(universe_size: int, num_sets: int, alpha: int) -> float:
    """Demaine et al. (DISC 2014): Õ(m·n^{Θ(1/log α)}) space in O(α) passes."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    exponent = 1.0 / max(math.log(alpha, 2), 1.0) if alpha > 1 else 1.0
    return num_sets * universe_size ** min(1.0, exponent)


def nisan_lower_bound(num_sets: int, passes: int) -> float:
    """Nisan (ICALP 2002): Ω(m/p) space for better than (log n)/2 approximation."""
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    return num_sets / passes


def exact_solution_lower_bound(universe_size: int, num_sets: int, passes: int) -> float:
    """Paper's improvement for exact answers: Ω̃(m·n/p) (footnote 1)."""
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    return num_sets * universe_size / passes


@dataclass
class PowerLawFit:
    """Result of fitting measured values to ``C · x^exponent`` in log-log space."""

    exponent: float
    log_constant: float
    r_squared: float

    @property
    def constant(self) -> float:
        """The multiplicative constant C of the fitted power law."""
        return math.exp(self.log_constant)

    def predict(self, x: float) -> float:
        """Evaluate the fitted power law at x."""
        return self.constant * x ** self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``y = C·x^e`` via linear regression in log space.

    Used by E1/E10 to extract the empirical scaling exponent of measured space
    against n (set cover) or 1/ε (max coverage) and compare it to the
    theoretical exponents 1/α and 2.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a power law")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fitting requires strictly positive data")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(log_x)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    ss_xx = sum((lx - mean_x) ** 2 for lx in log_x)
    ss_xy = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    if ss_xx == 0:
        raise ValueError("cannot fit: all x values are identical")
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (ly - (slope * lx + intercept)) ** 2 for lx, ly in zip(log_x, log_y)
    )
    ss_tot = sum((ly - mean_y) ** 2 for ly in log_y)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(exponent=slope, log_constant=intercept, r_squared=r_squared)


def tradeoff_table(
    universe_size: int, num_sets: int, alphas: Sequence[int], epsilon: float = 0.5
) -> Sequence[Tuple[int, float, float, int]]:
    """Rows (alpha, lower bound, upper bound, passes) for the headline tradeoff."""
    rows = []
    for alpha in alphas:
        rows.append(
            (
                alpha,
                theorem1_space_lower_bound(universe_size, num_sets, alpha),
                theorem2_space_upper_bound(universe_size, num_sets, alpha, epsilon),
                theorem2_pass_count(alpha),
            )
        )
    return rows
