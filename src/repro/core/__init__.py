"""The paper's primary contribution: the tight-tradeoff streaming algorithm.

* :class:`StreamingSetCover` — Algorithm 1 of the paper: one pruning pass plus
  α rounds of element sampling, giving an ``(α + ε)``-approximation in
  ``2α + 1`` passes and ``Õ(m n^{1/α}/ε² + n/ε)`` space.
* :func:`element_sample` — the Lemma 3.12 element-sampling primitive.
* :class:`OptGuessingSetCover` — the parallel-guessing wrapper that removes
  the assumption that ``õpt`` is known (Section 3.4, first paragraph).
* :mod:`repro.core.tradeoff` — the paper's bound formulas (Theorems 1–5) as
  plain functions used by the experiment harness.
* :class:`StreamingMaxCoverage` — streaming (1-ε)-approximate k-cover used for
  comparison in the maximum coverage experiments.
"""

from repro.core.element_sampling import element_sample, sampling_probability
from repro.core.algorithm1 import StreamingSetCover, AlgorithmOneConfig
from repro.core.guessing import OptGuessingSetCover
from repro.core.maxcover_stream import StreamingMaxCoverage
from repro.core.value_estimation import SetCoverValueEstimator, CountingBoundEstimator
from repro.core.tradeoff import (
    theorem1_space_lower_bound,
    theorem2_space_upper_bound,
    theorem2_pass_count,
    theorem4_maxcover_space_lower_bound,
    dsc_parameter_t,
    har_peled_space_bound,
    demaine_space_bound,
    fit_power_law,
)

__all__ = [
    "element_sample",
    "sampling_probability",
    "StreamingSetCover",
    "AlgorithmOneConfig",
    "OptGuessingSetCover",
    "StreamingMaxCoverage",
    "SetCoverValueEstimator",
    "CountingBoundEstimator",
    "theorem1_space_lower_bound",
    "theorem2_space_upper_bound",
    "theorem2_pass_count",
    "theorem4_maxcover_space_lower_bound",
    "dsc_parameter_t",
    "har_peled_space_bound",
    "demaine_space_bound",
    "fit_power_law",
]
