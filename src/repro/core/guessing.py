"""Parallel guessing of ``õpt`` (Section 3.4, first paragraph).

Algorithm 1 assumes a (1+ε)-approximation ``õpt`` of the optimal cover size.
The paper removes the assumption by running the algorithm "in parallel" for
``O(log n / ε)`` geometric guesses ``õpt ∈ {1, (1+ε), (1+ε)², ...}`` and
returning the smallest feasible cover among all runs.

In the reproduction the parallel runs share the stream (each run makes its own
passes, exactly as parallel copies would share a single physical pass), and
space is accounted as the sum over guesses — matching the extra ``Õ(1/ε)``
factor in Theorem 2's space bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.algorithm1 import AlgorithmOneConfig, StreamingSetCover
from repro.setcover.verify import is_feasible_cover
from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream
from repro.utils.rng import SeedLike, spawn_rng


def geometric_guesses(universe_size: int, epsilon: float) -> List[int]:
    """The O(log n / ε) geometric guesses for õpt in [1, n]."""
    if universe_size < 1:
        return [1]
    guesses: List[int] = []
    value = 1.0
    while value <= universe_size:
        guess = int(math.ceil(value))
        if not guesses or guess != guesses[-1]:
            guesses.append(guess)
        value *= 1.0 + epsilon
    if guesses[-1] < universe_size:
        guesses.append(universe_size)
    return guesses


@dataclass
class GuessOutcome:
    """Result of one guessed-õpt run, kept for diagnostics."""

    opt_guess: int
    solution_size: int
    feasible: bool
    passes: int
    peak_space: int


class OptGuessingSetCover(StreamingAlgorithm):
    """Runs Algorithm 1 for every geometric guess of õpt and keeps the best."""

    name = "assadi-algorithm1-guessing"

    def __init__(
        self,
        alpha: int,
        epsilon: float = 0.5,
        sampling_constant: float = 16.0,
        subinstance_solver: str = "exact",
        seed: SeedLike = None,
        space_budget: Optional[int] = None,
        guesses: Optional[List[int]] = None,
    ) -> None:
        super().__init__(space_budget=space_budget)
        self.alpha = alpha
        self.epsilon = epsilon
        self.sampling_constant = sampling_constant
        self.subinstance_solver = subinstance_solver
        self._rng = spawn_rng(seed)
        self._explicit_guesses = guesses

    def run(self, stream: SetStream) -> StreamingResult:
        n = stream.universe_size
        guesses = self._explicit_guesses or geometric_guesses(n, self.epsilon)
        best_solution: Optional[List[int]] = None
        best_metadata: dict = {}
        outcomes: List[GuessOutcome] = []
        total_passes = 0

        for guess in guesses:
            config = AlgorithmOneConfig(
                alpha=self.alpha,
                opt_guess=guess,
                epsilon=self.epsilon,
                sampling_constant=self.sampling_constant,
                subinstance_solver=self.subinstance_solver,
                ensure_feasible=True,
            )
            inner = StreamingSetCover(config, seed=self._rng.spawn())
            # Each guess runs over its own view of the stream; physical passes
            # are shared by parallel copies, so the pass count reported is the
            # maximum over guesses, while space adds up.
            inner_stream = SetStream(
                stream.system,
                order=stream.order,
                permutation=stream.arrival_order,
            )
            result = inner.run(inner_stream)
            feasible = is_feasible_cover(stream.system, result.solution)
            outcomes.append(
                GuessOutcome(
                    opt_guess=guess,
                    solution_size=result.solution_size,
                    feasible=feasible,
                    passes=result.passes,
                    peak_space=result.space.peak_words,
                )
            )
            total_passes = max(total_passes, result.passes)
            self.space.charge("per_guess_peak", result.space.peak_words)
            if feasible and (
                best_solution is None or result.solution_size < len(best_solution)
            ):
                best_solution = result.solution
                best_metadata = result.metadata

        # Record the shared passes on the outer stream object so the engine's
        # pass accounting reflects the parallel-run model.
        for _ in range(total_passes):
            iterator = stream.iterate_pass()
            # Drain lazily-created iterator without touching items: parallel
            # copies observed the same items; we only need the pass counter.
            for _item in iterator:
                break

        if best_solution is None:
            # No guess produced a feasible cover — the instance itself is
            # uncoverable; surface the empty solution and let the caller's
            # verification raise.
            best_solution = []
        metadata = {
            "guesses": [o.opt_guess for o in outcomes],
            "outcomes": [o.__dict__ for o in outcomes],
            "winning_guess": next(
                (
                    o.opt_guess
                    for o in outcomes
                    if o.feasible and o.solution_size == len(best_solution)
                ),
                None,
            ),
            "inner_metadata": best_metadata,
        }
        return self._finalize(stream, best_solution, metadata=metadata)
