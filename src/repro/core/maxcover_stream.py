"""Streaming (1 − ε)-approximate maximum k-coverage.

The paper's Section 3.4 discusses using streaming maximum coverage as a
subroutine for set cover and notes that generic (1−ε)-approximation algorithms
(Bateni et al., McGregor–Vu) need Ω(m/ε²) space — which is exactly what
Result 2 shows is necessary.  This module implements the element-sampling
flavour of those algorithms: sample the universe at rate Θ(k log m / (ε² ·
OPT̃)) — here simplified to a rate controlled by ε — store every set's
projection, and solve max coverage on the samples offline.

It is used by the E10 benchmark to exhibit the m/ε² space growth and by the
example applications (blog-watch) as the coverage-maximisation primitive.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.element_sampling import element_sample
from repro.setcover.instance import SetSystem
from repro.setcover.maxcover import exact_max_coverage, greedy_max_coverage
from repro.streaming.algorithm_base import StreamingAlgorithm, StreamingResult
from repro.streaming.stream import SetStream
from repro.utils.bitset import bitset_from_iterable
from repro.utils.rng import SeedLike, spawn_rng


class StreamingMaxCoverage(StreamingAlgorithm):
    """Single-pass (1 − ε)-approximate maximum k-coverage via element sampling.

    Parameters
    ----------
    k:
        Number of sets to pick.
    epsilon:
        Target approximation slack; the sampled-universe size (and hence the
        space) grows as 1/ε².
    solver:
        ``"exact"`` enumerates k-subsets of the stored projections (fine for
        the paper's k = O(1) regime); ``"greedy"`` uses the (1−1/e) greedy.
    sampling_constant:
        Leading constant of the sampling rate.
    """

    name = "streaming-max-coverage"

    def __init__(
        self,
        k: int,
        epsilon: float = 0.2,
        solver: str = "exact",
        sampling_constant: float = 4.0,
        seed: SeedLike = None,
        space_budget: Optional[int] = None,
    ) -> None:
        super().__init__(space_budget=space_budget)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
        if solver not in ("exact", "greedy"):
            raise ValueError(f"solver must be 'exact' or 'greedy', got {solver!r}")
        self.k = k
        self.epsilon = epsilon
        self.solver = solver
        self.sampling_constant = sampling_constant
        self._rng = spawn_rng(seed)

    def sampling_rate(self, universe_size: int, num_sets: int) -> float:
        """Per-element keep probability Θ(k·log m / (ε²·n))."""
        if universe_size <= 0:
            return 1.0
        log_m = math.log(max(num_sets, 2))
        rate = (
            self.sampling_constant * self.k * log_m / (self.epsilon ** 2 * universe_size)
        )
        return min(1.0, rate)

    def run(self, stream: SetStream) -> StreamingResult:
        n = stream.universe_size
        m = stream.num_sets
        rate = self.sampling_rate(n, m)
        sampled_universe = element_sample(range(n), rate, seed=self._rng.spawn())
        sampled_mask = bitset_from_iterable(sampled_universe)
        self.space.set_usage("sampled_universe", len(sampled_universe))

        # Pass: one batched kernel call for every set's projection size; the
        # arrival-order accounting walk keeps the space meter's trajectory
        # identical to the per-set loop.
        streamed = stream.batched_pass()
        kernel = streamed.kernel()
        projection_sizes = kernel.gains(sampled_mask)
        stored = 0
        for set_index in stream.arrival_order:
            stored += projection_sizes[set_index]
            self.space.set_usage("stored_incidences", stored)

        if self.solver == "exact":
            projected = SetSystem.from_masks(n, kernel.restrict(sampled_mask))
            chosen, sampled_value = exact_max_coverage(projected, self.k)
        else:
            # Restricting the objective to the sample on the original system
            # is pick-identical to solving the projected system, and reuses
            # the streamed system's cached kernel.
            chosen, sampled_value = greedy_max_coverage(
                streamed, self.k, within_mask=sampled_mask
            )

        # Estimate the true coverage by rescaling the sampled coverage.
        scale = 1.0 / rate if rate > 0 else 0.0
        estimate = sampled_value * scale
        metadata: Dict[str, object] = {
            "k": self.k,
            "epsilon": self.epsilon,
            "sampling_rate": rate,
            "sampled_universe_size": len(sampled_universe),
            "sampled_coverage": sampled_value,
        }
        return self._finalize(
            stream, chosen, estimated_value=estimate, metadata=metadata
        )


def maxcover_space_bound_words(
    num_sets: int, k: int, epsilon: float, constant: float = 4.0
) -> float:
    """Predicted stored-words curve Θ(m·k·log m/ε²) used by the E10 benchmark."""
    log_m = math.log(max(num_sets, 2))
    return constant * num_sets * k * log_m / (epsilon ** 2)
