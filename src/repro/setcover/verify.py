"""Verification helpers for set cover solutions.

Every algorithm in the library returns set indices; these helpers confirm
feasibility against the instance so tests and the experiment harness never
trust an algorithm's own claim of correctness.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Sequence, Set

from repro.setcover.instance import SetSystem
from repro.utils.bitset import bitset_size, bitset_to_set, iter_bits


def uncovered_elements(system: SetSystem, indices: Iterable[int]) -> Set[int]:
    """Return the set of universe elements not covered by ``indices``."""
    return bitset_to_set(system.uncovered_mask(list(indices)))


def is_feasible_cover(system: SetSystem, indices: Iterable[int]) -> bool:
    """Return True iff the sets at ``indices`` cover the whole universe."""
    return system.covers_universe(list(indices))


def verify_cover(system: SetSystem, indices: Sequence[int]) -> None:
    """Raise ``ValueError`` (with the missing elements) unless feasible.

    Also rejects out-of-range or duplicate indices, which would silently
    inflate/deflate solution sizes in the experiment tables.  Works on the
    missing-elements bitset directly (count by popcount, examples straight
    off ``iter_bits``) — verification of a large feasible cover never
    materialises a per-element set.
    """
    seen = set()
    for index in indices:
        if not 0 <= index < system.num_sets:
            raise ValueError(f"set index {index} out of range [0, {system.num_sets})")
        if index in seen:
            raise ValueError(f"duplicate set index {index} in solution")
        seen.add(index)
    missing_mask = system.uncovered_mask(list(indices))
    if missing_mask:
        sample = list(islice(iter_bits(missing_mask), 10))
        raise ValueError(
            f"solution does not cover the universe; {bitset_size(missing_mask)} "
            f"elements missing (e.g. {sample})"
        )
