"""Offline maximum coverage solvers.

Maximum coverage asks for ``k`` sets covering as many elements as possible.
The paper's Result 2 / Theorem 4 concerns its streaming variant; here we
provide the offline greedy ``(1 - 1/e)``-approximation and an exact solver
(used as ground truth for the ``D_MC`` gap experiments, where ``k = 2``).

The greedy solver runs on the shared lazy picker, so its picks flow through
the same batched kernel primitives as set cover — any registered backend
(python / numpy / compiled) yields the identical ``(chosen, covered)``
answer, a parity the conformance and property suites pin down.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Tuple

from repro.setcover.greedy import LazyGreedyPicker
from repro.setcover.instance import SetSystem
from repro.utils.bitset import bitset_size


def coverage_of(system: SetSystem, indices: Iterable[int]) -> int:
    """Number of universe elements covered by the union of ``indices``."""
    return system.coverage(list(indices))


def greedy_max_coverage(
    system: SetSystem, k: int, within_mask: Optional[int] = None
) -> Tuple[List[int], int]:
    """Greedy ``(1 - 1/e)``-approximate maximum coverage.

    Returns the chosen indices (in pick order) and the number of covered
    elements.  Uses CELF-style lazy evaluation (see
    :mod:`repro.setcover.greedy`): stale heap gains are upper bounds by
    submodularity, and the ``(-gain, index)`` heap key reproduces the eager
    tie-break (smallest index among the maximum-gain sets) exactly.

    ``within_mask`` restricts the objective to an element subset: picks and
    value are exactly those of running on ``system.restrict_to_elements
    (within_mask)`` — every gain is ``|S_i ∩ within ∩ uncovered|`` — without
    materialising the projected system.  This is how the streaming
    max-coverage algorithms solve their sampled sub-instances on the
    original system's already-built kernel.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    chosen: List[int] = []
    covered = 0
    limit = min(k, system.num_sets)
    if limit == 0:
        return [], 0
    universe = system.uncovered_mask([]) if within_mask is None else within_mask
    picker = LazyGreedyPicker(system.kernel(), universe)
    for _ in range(limit):
        uncovered = universe & ~covered
        best_index, best_gain = picker.best(uncovered)
        if best_gain <= 0:
            break
        chosen.append(best_index)
        chosen_mask = system.mask(best_index)
        picker.cover(chosen_mask & uncovered)
        covered |= chosen_mask
    return chosen, bitset_size(covered & universe)


def exact_max_coverage(
    system: SetSystem, k: int, candidate_indices: Optional[List[int]] = None
) -> Tuple[List[int], int]:
    """Exact maximum coverage by enumeration over k-subsets.

    Feasible for the small ``k`` used throughout the paper's hard instances
    (``k = 2`` in `D_MC`, ``k ≤ 2α`` in `D_SC` checks).  ``candidate_indices``
    restricts the search to a subset of the sets.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    candidates = list(candidate_indices) if candidate_indices is not None else list(
        range(system.num_sets)
    )
    k = min(k, len(candidates))
    if k == 0:
        return [], 0
    best_combo: List[int] = []
    best_value = -1
    for combo in combinations(candidates, k):
        value = system.coverage(list(combo))
        if value > best_value:
            best_value = value
            best_combo = list(combo)
            if best_value == system.universe_size:
                break
    return best_combo, best_value
