"""Offline set cover / maximum coverage substrate.

This package provides the classical (non-streaming) machinery the paper builds
on: the instance representation, the greedy ``ln n``-approximation, an exact
branch-and-bound solver used as ground truth in tests and experiments, and the
offline maximum coverage solvers.
"""

from repro.setcover.instance import (
    PackedSetSystem,
    SetCoverInstance,
    SetSystem,
    packed_row_bytes,
)
from repro.setcover.source import (
    ContainerWriter,
    HeapSource,
    InstanceSource,
    MmapSource,
    SharedMemorySource,
    SourceBackedSetSystem,
    SourceDescriptor,
    open_source,
    read_container_header,
    write_container,
)
from repro.setcover.greedy import greedy_set_cover, greedy_cover_trace
from repro.setcover.exact import exact_set_cover, exact_cover_value, brute_force_set_cover
from repro.setcover.maxcover import (
    greedy_max_coverage,
    exact_max_coverage,
    coverage_of,
)
from repro.setcover.fractional import fractional_greedy_lower_bound, lp_relaxation_value
from repro.setcover.preprocess import PreprocessResult, preprocess
from repro.setcover.verify import is_feasible_cover, verify_cover, uncovered_elements

__all__ = [
    "PackedSetSystem",
    "SetSystem",
    "SetCoverInstance",
    "packed_row_bytes",
    "ContainerWriter",
    "HeapSource",
    "InstanceSource",
    "MmapSource",
    "SharedMemorySource",
    "SourceBackedSetSystem",
    "SourceDescriptor",
    "open_source",
    "read_container_header",
    "write_container",
    "greedy_set_cover",
    "greedy_cover_trace",
    "exact_set_cover",
    "exact_cover_value",
    "brute_force_set_cover",
    "greedy_max_coverage",
    "exact_max_coverage",
    "coverage_of",
    "fractional_greedy_lower_bound",
    "lp_relaxation_value",
    "preprocess",
    "PreprocessResult",
    "is_feasible_cover",
    "verify_cover",
    "uncovered_elements",
]
