"""Fractional relaxations and lower bounds for set cover.

These are not used by the paper's algorithms directly, but the experiment
harness uses them to certify lower bounds on ``opt`` for instances too large
for the exact solver, so approximation ratios reported in the benchmark tables
are honest even at scale.
"""

from __future__ import annotations

from typing import List, Optional

from repro.setcover.instance import SetSystem
from repro.utils.bitset import bitset_size


def fractional_greedy_lower_bound(system: SetSystem) -> float:
    """Dual-fitting lower bound on opt: n / (max set size).

    Every cover needs at least ``ceil(n / max_i |S_i|)`` sets; returned as a
    float so callers can combine it with other bounds.
    """
    if system.universe_size == 0:
        return 0.0
    largest = max(
        (system.set_size(i) for i in range(system.num_sets)), default=0
    )
    if largest == 0:
        return float("inf")
    return system.universe_size / largest


def lp_relaxation_value(
    system: SetSystem, max_iterations: int = 2000, tolerance: float = 1e-9
) -> float:
    """Approximate the LP relaxation optimum via multiplicative weights.

    Solves ``min sum_i x_i  s.t.  sum_{i: e in S_i} x_i >= 1`` approximately by
    the classic width-independent greedy/MWU scheme: repeatedly add a small
    fractional amount of the set that covers the currently "most demanding"
    elements.  The returned value is a valid *lower bound estimate* of opt up
    to the convergence tolerance of the scheme; tests compare it against exact
    opt on small instances.
    """
    n = system.universe_size
    if n == 0:
        return 0.0
    # Element "demands" start at 1 and decay as fractional coverage accrues.
    coverage = [0.0] * n
    x_total = 0.0
    step = 1.0 / max(1, max(system.set_size(i) for i in range(system.num_sets)) or 1)
    element_to_sets: List[List[int]] = [[] for _ in range(n)]
    for index in range(system.num_sets):
        for element in system.elements(index):
            element_to_sets[element].append(index)
    for element in range(n):
        if not element_to_sets[element]:
            return float("inf")
    for _ in range(max_iterations):
        deficient = [e for e in range(n) if coverage[e] < 1.0 - tolerance]
        if not deficient:
            break
        # Pick the set covering the most deficient elements.
        best_index = -1
        best_gain = -1
        for index in range(system.num_sets):
            gain = sum(1 for e in deficient if system.mask(index) >> e & 1)
            if gain > best_gain:
                best_gain = gain
                best_index = index
        if best_gain <= 0:
            break
        x_total += step
        for element in range(n):
            if system.mask(best_index) >> element & 1:
                coverage[element] += step
    return x_total


def counting_lower_bound(system: SetSystem, target_mask: Optional[int] = None) -> int:
    """Integer lower bound ceil(|target| / max set size) on the cover size."""
    target = system.uncovered_mask([]) if target_mask is None else target_mask
    remaining = bitset_size(target)
    if remaining == 0:
        return 0
    union = 0
    largest = 0
    for index in range(system.num_sets):
        restricted = system.mask(index) & target
        union |= restricted
        largest = max(largest, bitset_size(restricted))
    if union != target:
        raise ValueError("target contains elements appearing in no set")
    return -(-remaining // largest)
