"""The classical greedy set cover algorithm.

Greedy repeatedly picks the set covering the most uncovered elements and
achieves a ``ln n`` approximation [Johnson 1974, Slavik 1997] — the offline
baseline the paper's introduction positions streaming algorithms against, and
the solver Algorithm 1 uses on its (small) sampled sub-instances when an exact
answer is not required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import InfeasibleInstanceError
from repro.setcover.instance import SetSystem
from repro.utils.bitset import bitset_size


@dataclass
class GreedyStep:
    """One iteration of the greedy algorithm (for tracing / teaching)."""

    chosen_set: int
    newly_covered: int
    remaining_uncovered: int


@dataclass
class GreedyTrace:
    """Full record of a greedy run: chosen sets plus per-step statistics."""

    solution: List[int] = field(default_factory=list)
    steps: List[GreedyStep] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of sets in the greedy solution."""
        return len(self.solution)


def greedy_cover_trace(
    system: SetSystem,
    required_mask: Optional[int] = None,
    max_sets: Optional[int] = None,
) -> GreedyTrace:
    """Run greedy set cover and return the full trace.

    Parameters
    ----------
    system:
        The set system to cover.
    required_mask:
        Optional bitset of elements that must be covered (defaults to the whole
        universe).  Used by streaming algorithms that only need to cover the
        still-uncovered portion of the universe.
    max_sets:
        Optional cap on the number of sets greedy may pick; if the cap is hit
        before full coverage an :class:`InfeasibleInstanceError` is raised.
    """
    universe = required_mask
    if universe is None:
        universe = system.uncovered_mask([])  # full universe mask
    uncovered = universe
    trace = GreedyTrace()
    available = set(range(system.num_sets))
    while uncovered:
        best_index = -1
        best_gain = 0
        for index in available:
            gain = bitset_size(system.mask(index) & uncovered)
            if gain > best_gain or (gain == best_gain and gain > 0 and index < best_index):
                best_gain = gain
                best_index = index
        if best_gain == 0:
            raise InfeasibleInstanceError(
                "greedy cannot make progress: remaining elements are uncoverable"
            )
        available.remove(best_index)
        uncovered &= ~system.mask(best_index)
        trace.solution.append(best_index)
        trace.steps.append(
            GreedyStep(
                chosen_set=best_index,
                newly_covered=best_gain,
                remaining_uncovered=bitset_size(uncovered),
            )
        )
        if max_sets is not None and len(trace.solution) >= max_sets and uncovered:
            raise InfeasibleInstanceError(
                f"greedy exceeded the cap of {max_sets} sets before covering the target"
            )
    return trace


def greedy_set_cover(
    system: SetSystem,
    required_mask: Optional[int] = None,
) -> List[int]:
    """Return the list of set indices chosen by greedy (in pick order)."""
    return greedy_cover_trace(system, required_mask=required_mask).solution
