"""The classical greedy set cover algorithm (lazy / CELF evaluation).

Greedy repeatedly picks the set covering the most uncovered elements and
achieves a ``ln n`` approximation [Johnson 1974, Slavik 1997] — the offline
baseline the paper's introduction positions streaming algorithms against, and
the solver Algorithm 1 uses on its (small) sampled sub-instances when an exact
answer is not required.

The implementation is the CELF-style *lazy* greedy [Minoux 1978; Leskovec et
al. 2007]: marginal gains are submodular (they only shrink as the cover
grows), so stale gains in a max-heap are upper bounds and the top of the heap
can be certified optimal by a single re-evaluation instead of rescanning all
``m`` sets per pick.  The heap is keyed ``(-gain, index)``, which reproduces
the eager implementation's tie-break (smallest index among the maximum-gain
sets) exactly — traces are byte-identical to the seed rescan loop on every
instance, for every compute backend.

Lazy evaluation has one pathological regime: near-uniform gains that all
shrink together (dense i.i.d. instances), where certifying the top can pop
most of the heap every pick.  When a pick burns through the stale-pop budget
(:data:`_STALE_POP_ESCAPE`), the run switches permanently to the kernel's
:meth:`~repro.kernels.base.Kernel.gain_tracker` — exact gains maintained by
per-incidence decrements through an inverted element→sets index on the
packed-matrix backends (jit-compiled on the ``compiled`` tier), a
seed-equivalent rescan per pick on the pure-Python one.  The pick
rule (max gain, lowest index, already-chosen sets sit at gain 0) is
identical in every regime, so switching never changes the trace, only the
wall-clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.exceptions import InfeasibleInstanceError
from repro.setcover.instance import SetSystem
from repro.utils.bitset import bitset_size

#: Stale pops tolerated within one pick before abandoning lazy evaluation:
#: past ``this + len(heap)/32`` pops, batched gain maintenance wins.
_STALE_POP_ESCAPE = 64


class LazyGreedyPicker:
    """The greedy pick rule with adaptive evaluation strategy.

    Starts as a CELF max-heap over stale gains (one batched kernel call
    seeds it; zero-gain sets — including fully-covered ones — are dropped up
    front and whenever a refresh hits 0).  If a single pick exceeds the
    stale-pop budget, the run has degenerated into mass staleness and the
    picker hands over to the kernel's :class:`~repro.kernels.base.GainTracker`
    for the rest of the run.  Both strategies implement exactly the seed
    pick rule: maximum gain, smallest index, gain 0 meaning "nothing left".
    """

    def __init__(self, kernel, uncovered: int) -> None:
        self._kernel = kernel
        self._heap: List[Tuple[int, int]] = []
        if kernel.prefers_tracker():
            self._tracker = kernel.gain_tracker(uncovered)
            return
        self._tracker = None
        self._heap = [
            (-gain, index)
            for index, gain in enumerate(kernel.gains(uncovered))
            if gain > 0
        ]
        heapq.heapify(self._heap)

    def best(self, uncovered: int) -> Tuple[int, int]:
        """Return ``(best_index, best_gain)`` against ``uncovered``.

        A gain of 0 means no remaining set intersects ``uncovered``; the
        index is then meaningless.
        """
        if self._tracker is not None:
            return self._tracker.best()
        heap = self._heap
        budget = _STALE_POP_ESCAPE + (len(heap) >> 5)
        while heap:
            neg_stale, index = heapq.heappop(heap)
            gain = self._kernel.gain(index, uncovered)
            if gain == -neg_stale:
                # Stale value was current: every other entry's true gain is
                # bounded by its larger heap key, so this is the
                # smallest-index argmax.
                return index, gain
            if gain:
                heapq.heappush(heap, (-gain, index))
            budget -= 1
            if budget <= 0:
                break  # mass staleness: switch strategies for good
        else:
            return -1, 0  # heap exhausted: no set intersects uncovered
        self._tracker = self._kernel.gain_tracker(uncovered)
        return self._tracker.best()

    def cover(self, newly: int) -> None:
        """Report the elements the chosen set just covered."""
        if self._tracker is not None:
            self._tracker.cover(newly)


@dataclass
class GreedyStep:
    """One iteration of the greedy algorithm (for tracing / teaching)."""

    chosen_set: int
    newly_covered: int
    remaining_uncovered: int


@dataclass
class GreedyTrace:
    """Full record of a greedy run: chosen sets plus per-step statistics."""

    solution: List[int] = field(default_factory=list)
    steps: List[GreedyStep] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of sets in the greedy solution."""
        return len(self.solution)


def greedy_cover_trace(
    system: SetSystem,
    required_mask: Optional[int] = None,
    max_sets: Optional[int] = None,
) -> GreedyTrace:
    """Run greedy set cover and return the full trace.

    Parameters
    ----------
    system:
        The set system to cover.
    required_mask:
        Optional bitset of elements that must be covered (defaults to the whole
        universe).  Used by streaming algorithms that only need to cover the
        still-uncovered portion of the universe.
    max_sets:
        Optional cap on the number of sets greedy may pick; if the cap is hit
        before full coverage an :class:`InfeasibleInstanceError` is raised.
    """
    universe = required_mask
    if universe is None:
        universe = system.uncovered_mask([])  # full universe mask
    uncovered = universe
    trace = GreedyTrace()
    if not uncovered:
        return trace
    picker = LazyGreedyPicker(system.kernel(), uncovered)
    while uncovered:
        best_index, best_gain = picker.best(uncovered)
        if best_gain == 0:
            raise InfeasibleInstanceError(
                "greedy cannot make progress: remaining elements are uncoverable"
            )
        chosen_mask = system.mask(best_index)
        picker.cover(chosen_mask & uncovered)
        uncovered &= ~chosen_mask
        trace.solution.append(best_index)
        trace.steps.append(
            GreedyStep(
                chosen_set=best_index,
                newly_covered=best_gain,
                remaining_uncovered=bitset_size(uncovered),
            )
        )
        if max_sets is not None and len(trace.solution) >= max_sets and uncovered:
            raise InfeasibleInstanceError(
                f"greedy exceeded the cap of {max_sets} sets before covering the target"
            )
    return trace


def greedy_set_cover(
    system: SetSystem,
    required_mask: Optional[int] = None,
) -> List[int]:
    """Return the list of set indices chosen by greedy (in pick order)."""
    return greedy_cover_trace(system, required_mask=required_mask).solution
