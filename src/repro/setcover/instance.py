"""Set system / set cover instance representation.

A :class:`SetSystem` is a collection of ``m`` subsets of a universe
``{0, ..., n-1}``.  Internally each set is stored as a bitset (Python integer)
which makes unions and uncovered-element counts cheap; the public API accepts
and returns ordinary iterables and frozensets so callers never need to touch
the bitset representation.

Batched coverage arithmetic (per-set marginal gains, projections, element
frequencies) is delegated to a pluggable compute kernel from
:mod:`repro.kernels`: pure-Python int bitsets by default, climbing to a
packed ``uint64`` NumPy matrix and numba-jitted parallel sweeps on large
systems as those tiers are installed.  The ``backend=`` parameter controls
the choice per system (``"auto"``/``"python"``/``"numpy"``/``"compiled"``);
all backends are output-identical bit for bit.

This is the shared substrate for the offline solvers, the streaming
algorithms, the workload generators, and the lower-bound distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import InfeasibleInstanceError
from repro.utils.bitset import (
    bitset_from_iterable,
    bitset_size,
    bitset_to_set,
    bitset_union,
    universe_mask,
)


def packed_row_bytes(universe_size: int) -> int:
    """Bytes per set row in the packed incidence buffer (uint64-aligned).

    Matches the NumPy kernel's row layout exactly, so a packed buffer can be
    adopted by :class:`~repro.kernels.numpy_backend.NumpyKernel` without any
    repacking.
    """
    return max(1, (universe_size + 63) // 64) * 8


@dataclass(frozen=True)
class PackedSetSystem:
    """The compact wire form of a :class:`SetSystem`.

    One contiguous little-endian incidence buffer (``num_sets`` rows of
    :func:`packed_row_bytes` bytes each) plus the scalars needed to rebuild —
    what crosses process boundaries and shared-memory segments instead of
    per-set Python objects.  ``names`` is None when the system uses the
    default ``S0, S1, ...`` naming, so the common case ships no strings.
    """

    universe_size: int
    num_sets: int
    buffer: bytes
    names: Optional[Tuple[str, ...]] = None
    backend: str = "auto"

    def __post_init__(self) -> None:
        expected = self.num_sets * packed_row_bytes(self.universe_size)
        if len(self.buffer) != expected:
            raise ValueError(
                f"packed buffer holds {len(self.buffer)} bytes, expected {expected} "
                f"for {self.num_sets} sets over a universe of {self.universe_size}"
            )


class SetSystem:
    """An indexed collection of subsets of the universe ``[n]``.

    Parameters
    ----------
    universe_size:
        Number of elements in the universe; elements are ``0..n-1``.
    sets:
        Iterable of element iterables, one per set, in stream order.
    names:
        Optional human-readable names per set (defaults to ``S0, S1, ...``).
    backend:
        Compute-kernel request (``"auto"``, ``"python"``, ``"numpy"`` or
        ``"compiled"``; see :func:`repro.kernels.resolve_backend`).  Resolved
        lazily on the first batched query, so constructing a system never
        requires NumPy.
    """

    def __init__(
        self,
        universe_size: int,
        sets: Iterable[Iterable[int]],
        names: Optional[Sequence[str]] = None,
        backend: str = "auto",
    ) -> None:
        if universe_size < 0:
            raise ValueError(f"universe size must be non-negative, got {universe_size}")
        self._n = universe_size
        self._backend = backend
        self._kernel = None
        self._packed: Optional[bytes] = None
        self._universe_mask = universe_mask(universe_size)
        self._masks: List[int] = []
        for index, elements in enumerate(sets):
            mask = elements if isinstance(elements, int) else bitset_from_iterable(elements)
            if mask & ~self._universe_mask:
                raise ValueError(
                    f"set {index} contains elements outside the universe [0, {universe_size})"
                )
            self._masks.append(mask)
        if names is not None:
            if len(names) != len(self._masks):
                raise ValueError("names must have one entry per set")
            self._names = list(names)
        else:
            self._names = [f"S{i}" for i in range(len(self._masks))]

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_masks(
        cls,
        universe_size: int,
        masks: Sequence[int],
        names: Optional[Sequence[str]] = None,
        backend: str = "auto",
    ) -> "SetSystem":
        """Build a system directly from bitset masks (no per-element copying)."""
        system = cls(universe_size, [], backend=backend)
        full = universe_mask(universe_size)
        for index, mask in enumerate(masks):
            if mask & ~full:
                raise ValueError(
                    f"mask {index} contains elements outside the universe [0, {universe_size})"
                )
            system._masks.append(mask)
        if names is not None:
            if len(names) != len(masks):
                raise ValueError("names must have one entry per set")
            system._names = list(names)
        else:
            system._names = [f"S{i}" for i in range(len(masks))]
        return system

    # -- basic accessors ------------------------------------------------
    @property
    def universe_size(self) -> int:
        """Size n of the universe."""
        return self._n

    @property
    def num_sets(self) -> int:
        """Number m of sets in the system."""
        return len(self._masks)

    @property
    def names(self) -> List[str]:
        """Per-set human readable names (copy)."""
        return list(self._names)

    @property
    def requested_backend(self) -> str:
        """The backend request this system was constructed with."""
        return self._backend

    @property
    def backend(self) -> str:
        """The concrete kernel backend this system resolves to."""
        return self.kernel().backend

    def kernel(self):
        """The compute kernel for this system (built lazily, then cached)."""
        if self._kernel is None:
            from repro.kernels import make_kernel

            self._kernel = make_kernel(
                self._n, self._masks, self._backend, packed=self._packed
            )
        return self._kernel

    def mask(self, index: int) -> int:
        """Return the bitset mask of the set at ``index``."""
        return self._masks[index]

    def masks(self) -> List[int]:
        """Return all masks in stream order (copy)."""
        return list(self._masks)

    def elements(self, index: int) -> FrozenSet[int]:
        """Return the set at ``index`` as a frozenset of element indices."""
        return frozenset(bitset_to_set(self._masks[index]))

    def set_size(self, index: int) -> int:
        """Return the cardinality of the set at ``index``."""
        return bitset_size(self._masks[index])

    def name(self, index: int) -> str:
        """Return the name of the set at ``index``."""
        return self._names[index]

    def __len__(self) -> int:
        return len(self._masks)

    def __iter__(self) -> Iterator[FrozenSet[int]]:
        for index in range(len(self._masks)):
            yield self.elements(index)

    def __getitem__(self, index: int) -> FrozenSet[int]:
        return self.elements(index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetSystem):
            return NotImplemented
        return self._n == other._n and self._masks == other._masks

    def __hash__(self) -> int:
        return hash((self._n, tuple(self._masks)))

    # -- packed transport -------------------------------------------------
    def _default_names(self) -> bool:
        return all(
            name == f"S{index}" for index, name in enumerate(self._names)
        )

    def to_packed(self) -> PackedSetSystem:
        """Serialise into the compact packed form (see :class:`PackedSetSystem`).

        A system built :meth:`from_packed` keeps its transported buffer and
        returns it here unchanged (masks are immutable after construction,
        so the cached bytes can never go stale) — round-tripping through the
        packed form costs zero copies.  Otherwise the already-built NumPy
        kernel exports its matrix, or each mask is written as one
        fixed-width little-endian row.  The inverse is :meth:`from_packed`.
        """
        if self._packed is not None:
            buffer = self._packed
        elif self._kernel is not None and hasattr(self._kernel, "packed_bytes"):
            buffer = self._kernel.packed_bytes()
        else:
            stride = packed_row_bytes(self._n)
            buffer = b"".join(mask.to_bytes(stride, "little") for mask in self._masks)
        return PackedSetSystem(
            universe_size=self._n,
            num_sets=len(self._masks),
            buffer=buffer,
            names=None if self._default_names() else tuple(self._names),
            backend=self._backend,
        )

    @classmethod
    def from_packed(cls, packed: PackedSetSystem) -> "SetSystem":
        """Rebuild a system from its packed form.

        The packed buffer is retained so a NumPy kernel can adopt it without
        repacking (one ``frombuffer`` over the transported bytes).
        """
        stride = packed_row_bytes(packed.universe_size)
        buffer = packed.buffer
        masks = [
            int.from_bytes(buffer[row * stride : (row + 1) * stride], "little")
            for row in range(packed.num_sets)
        ]
        system = cls.from_masks(
            packed.universe_size,
            masks,
            list(packed.names) if packed.names is not None else None,
            backend=packed.backend,
        )
        # Adopt the transported bytes without copying (memoryviews and
        # bytearrays still get one defensive copy); the NumPy kernel later
        # adopts the same object via frombuffer, so unpickle → kernel is
        # zero-copy end to end.
        system._packed = buffer if isinstance(buffer, bytes) else bytes(buffer)
        return system

    @classmethod
    def from_source(cls, source, backend: Optional[str] = None) -> "SetSystem":
        """Build a system over an :class:`~repro.setcover.source.InstanceSource`.

        Heap sources rebuild through the ordinary :meth:`from_packed` path
        (the buffer is already resident bytes); windowed sources (shared
        memory, mmap) come back as a
        :class:`~repro.setcover.source.SourceBackedSetSystem` whose masks
        decode lazily and whose batched queries run on the chunked kernel,
        so no single query materialises more than a bounded window.
        """
        if getattr(source, "windowed", False):
            from repro.setcover.source import SourceBackedSetSystem

            return SourceBackedSetSystem(source, backend=backend)
        packed = source.to_packed()
        if backend is not None and backend != packed.backend:
            from dataclasses import replace

            packed = replace(packed, backend=backend)
        return cls.from_packed(packed)

    def to_file(self, path: str):
        """Write this system to an on-disk container file.

        Returns the :class:`~repro.setcover.source.SourceDescriptor` that
        reopens it (``open_source`` / ``repro run --instance-file``).
        """
        from repro.setcover.source import write_container

        return write_container(path, self.to_packed())

    def content_digest(self) -> str:
        """SHA-256 of the packed incidence buffer — the system's identity.

        The exact digest task fingerprinting uses, stable across processes,
        compute backends, and source backings (file-backed systems answer
        from their header without rescanning the buffer).
        """
        import hashlib

        return hashlib.sha256(self.to_packed().buffer).hexdigest()

    @property
    def backing(self) -> str:
        """Which backing holds the incidence buffer (``heap`` here)."""
        return "heap"

    def __getstate__(self) -> Dict[str, object]:
        # Ship the packed incidence buffer, not the per-set Python integers:
        # one bytes object crosses the process boundary (pickle cost O(m·n/8)
        # in a single memcpy-friendly blob) and the receiving side's NumPy
        # kernel adopts it zero-copy.  Kernels are always rebuilt lazily on
        # the other side.
        packed = self.to_packed()
        return {
            "universe_size": packed.universe_size,
            "num_sets": packed.num_sets,
            "buffer": packed.buffer,
            "names": packed.names,
            "backend": packed.backend,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        if "source" in state:
            # A source-backed system pickled as its descriptor: reattach to
            # the same segment/file on this side instead of shipping bytes.
            from repro.setcover.source import open_source

            rebuilt = SetSystem.from_source(
                open_source(state["source"]),  # type: ignore[arg-type]
                backend=state.get("backend"),  # type: ignore[arg-type]
            )
            self.__dict__.update(rebuilt.__dict__)
            return
        rebuilt = SetSystem.from_packed(
            PackedSetSystem(
                universe_size=state["universe_size"],  # type: ignore[arg-type]
                num_sets=state["num_sets"],  # type: ignore[arg-type]
                buffer=state["buffer"],  # type: ignore[arg-type]
                names=state["names"],  # type: ignore[arg-type]
                backend=state["backend"],  # type: ignore[arg-type]
            )
        )
        self.__dict__.update(rebuilt.__dict__)

    def __repr__(self) -> str:
        return f"SetSystem(n={self._n}, m={self.num_sets})"

    # -- coverage queries -----------------------------------------------
    def coverage_mask(self, indices: Iterable[int]) -> int:
        """Return the bitset covered by the union of the sets at ``indices``."""
        return bitset_union(*(self._masks[i] for i in indices)) if indices else 0

    def coverage(self, indices: Iterable[int]) -> int:
        """Return the number of universe elements covered by ``indices``."""
        index_list = list(indices)
        if not index_list:
            return 0
        return bitset_size(self.coverage_mask(index_list))

    def covers_universe(self, indices: Iterable[int]) -> bool:
        """Return True iff the sets at ``indices`` cover the whole universe."""
        index_list = list(indices)
        if not index_list:
            return self._n == 0
        return self.coverage_mask(index_list) == self._universe_mask

    def uncovered_mask(self, indices: Iterable[int]) -> int:
        """Return the bitset of elements NOT covered by ``indices``."""
        index_list = list(indices)
        covered = self.coverage_mask(index_list) if index_list else 0
        return self._universe_mask & ~covered

    def element_frequencies(self) -> List[int]:
        """Return, for each element, the number of sets containing it."""
        return self.kernel().element_frequencies()

    def is_coverable(self) -> bool:
        """Return True iff the union of all sets is the whole universe."""
        return self.covers_universe(range(self.num_sets))

    # -- transformations -------------------------------------------------
    def restrict_to_elements(self, elements: Iterable[int]) -> "SetSystem":
        """Project every set onto the given element subset (same universe).

        Used by the element-sampling step of Algorithm 1: the projected system
        keeps the original element indices so covers translate back directly.
        ``elements`` may be an iterable of indices or an already-built bitset.
        """
        keep_mask = elements if isinstance(elements, int) else bitset_from_iterable(elements)
        return SetSystem.from_masks(
            self._n,
            self.kernel().restrict(keep_mask),
            self._names,
            backend=self._backend,
        )

    def with_patched_mask(self, index: int, extra_mask: int) -> "SetSystem":
        """Return a new system with ``extra_mask`` OR-ed into one set.

        The explicit constructor for the generators' coverability patches
        ("union the missing elements into some set"): it never mutates this
        system or any list derived from it, so the patch stays correct even
        if :meth:`masks` ever returns a shared view instead of a copy.
        """
        if not 0 <= index < self.num_sets:
            raise ValueError(f"set index {index} out of range [0, {self.num_sets})")
        if extra_mask & ~self._universe_mask:
            raise ValueError(
                f"extra mask contains elements outside the universe [0, {self._n})"
            )
        patched = list(self._masks)
        patched[index] |= extra_mask
        return SetSystem.from_masks(self._n, patched, self._names, backend=self._backend)

    def subsystem(self, indices: Sequence[int]) -> "SetSystem":
        """Return a new system containing only the sets at ``indices``."""
        return SetSystem.from_masks(
            self._n,
            [self._masks[i] for i in indices],
            [self._names[i] for i in indices],
            backend=self._backend,
        )

    def permuted(self, order: Sequence[int]) -> "SetSystem":
        """Return a new system with sets re-ordered according to ``order``."""
        if sorted(order) != list(range(self.num_sets)):
            raise ValueError("order must be a permutation of the set indices")
        return self.subsystem(list(order))

    def incidence_count(self) -> int:
        """Total number of (set, element) incidences — the input size ``O(mn)``."""
        return sum(bitset_size(mask) for mask in self._masks)

    def to_dict(self) -> Dict[str, object]:
        """Serialise into plain Python data (for logging / fixtures)."""
        return {
            "universe_size": self._n,
            "sets": [sorted(self.elements(i)) for i in range(self.num_sets)],
            "names": list(self._names),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SetSystem":
        """Inverse of :meth:`to_dict`."""
        return cls(
            int(payload["universe_size"]),
            payload["sets"],  # type: ignore[arg-type]
            payload.get("names"),  # type: ignore[arg-type]
        )


class SetCoverInstance:
    """A set cover instance: a :class:`SetSystem` plus solution bookkeeping.

    Keeps an optional record of the planted optimal value (for synthetic
    workloads where the generator knows ``opt``), which the experiment harness
    uses to report approximation ratios without invoking the exact solver on
    large instances.
    """

    def __init__(
        self,
        system: SetSystem,
        planted_opt: Optional[int] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        if planted_opt is not None and planted_opt <= 0:
            raise ValueError("planted_opt must be a positive integer when provided")
        self.system = system
        self.planted_opt = planted_opt
        self.metadata: Dict[str, object] = dict(metadata or {})

    @property
    def universe_size(self) -> int:
        """Universe size n."""
        return self.system.universe_size

    @property
    def num_sets(self) -> int:
        """Number of sets m."""
        return self.system.num_sets

    def require_coverable(self) -> None:
        """Raise :class:`InfeasibleInstanceError` unless the instance is coverable."""
        if not self.system.is_coverable():
            raise InfeasibleInstanceError(
                "the union of all sets does not cover the universe"
            )

    def approximation_ratio(self, solution_size: int) -> Optional[float]:
        """Return ``solution_size / opt`` when the planted optimum is known."""
        if self.planted_opt is None:
            return None
        return solution_size / self.planted_opt

    def __repr__(self) -> str:
        return (
            f"SetCoverInstance(n={self.universe_size}, m={self.num_sets}, "
            f"planted_opt={self.planted_opt})"
        )
