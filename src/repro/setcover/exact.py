"""Exact set cover solvers.

The exact solvers serve two roles in the reproduction:

* ground truth for approximation ratios in tests and small experiments, and
* the "unbounded computation" step of Algorithm 1 (the paper's streaming model
  only restricts space, not time — step 3(c) of Algorithm 1 finds an *optimal*
  cover of the sampled sub-instance).

The main solver is a branch-and-bound search with greedy upper bounds and a
simple counting lower bound; :func:`brute_force_set_cover` enumerates all
subsets and is used only to validate the branch-and-bound solver on tiny
instances in the test suite.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence

from repro.exceptions import InfeasibleInstanceError
from repro.setcover.instance import SetSystem
from repro.setcover.greedy import greedy_set_cover
from repro.utils.bitset import bitset_size


def _check_coverable(system: SetSystem, target_mask: int) -> None:
    union = 0
    for index in range(system.num_sets):
        union |= system.mask(index)
    if target_mask & ~union:
        raise InfeasibleInstanceError(
            "no feasible cover: some target elements appear in no set"
        )


def brute_force_set_cover(
    system: SetSystem, target_mask: Optional[int] = None
) -> List[int]:
    """Exhaustively find a minimum cover (exponential; tiny instances only)."""
    target = system.uncovered_mask([]) if target_mask is None else target_mask
    if target == 0:
        return []
    _check_coverable(system, target)
    indices = range(system.num_sets)
    for size in range(1, system.num_sets + 1):
        for combo in combinations(indices, size):
            covered = 0
            for index in combo:
                covered |= system.mask(index)
            if target & ~covered == 0:
                return list(combo)
    raise InfeasibleInstanceError("no feasible cover exists")  # pragma: no cover


class _BranchAndBound:
    """Branch-and-bound minimum set cover over bitset masks."""

    def __init__(self, system: SetSystem, target_mask: int) -> None:
        self.system = system
        self.target = target_mask
        # Pre-sort candidate sets by size (descending) so greedy-like branches
        # are explored first and the upper bound tightens quickly.
        self.order = sorted(
            range(system.num_sets),
            key=lambda i: bitset_size(system.mask(i) & target_mask),
            reverse=True,
        )
        self.best_solution: Optional[List[int]] = None
        self.best_size = system.num_sets + 1
        # Maximum coverage of any single set, used for the lower bound.
        self.max_set_size = max(
            (bitset_size(system.mask(i) & target_mask) for i in range(system.num_sets)),
            default=0,
        )

    def _lower_bound(self, uncovered: int) -> int:
        remaining = bitset_size(uncovered)
        if remaining == 0:
            return 0
        if self.max_set_size == 0:
            return self.best_size + 1
        return -(-remaining // self.max_set_size)  # ceil division

    def solve(self) -> List[int]:
        # Seed the upper bound with greedy.
        try:
            greedy = greedy_set_cover(self.system, required_mask=self.target)
            self.best_solution = list(greedy)
            self.best_size = len(greedy)
        except InfeasibleInstanceError:
            raise
        self._search(self.target, [], 0)
        assert self.best_solution is not None
        return self.best_solution

    def _search(self, uncovered: int, chosen: List[int], start: int) -> None:
        if uncovered == 0:
            if len(chosen) < self.best_size:
                self.best_size = len(chosen)
                self.best_solution = list(chosen)
            return
        if len(chosen) + self._lower_bound(uncovered) >= self.best_size:
            return
        # Branch on an uncovered element with the fewest candidate sets
        # (classic "most constrained element" rule) to keep the tree small.
        pivot = self._most_constrained_element(uncovered)
        if pivot is None:
            return
        candidates = [
            index
            for index in self.order
            if self.system.mask(index) & (1 << pivot)
        ]
        for index in candidates:
            gain = self.system.mask(index) & uncovered
            if gain == 0:
                continue
            chosen.append(index)
            self._search(uncovered & ~self.system.mask(index), chosen, start)
            chosen.pop()

    def _most_constrained_element(self, uncovered: int) -> Optional[int]:
        best_element = None
        best_count = None
        mask = uncovered
        element = 0
        while mask:
            if mask & 1:
                count = sum(
                    1
                    for index in range(self.system.num_sets)
                    if self.system.mask(index) & (1 << element)
                )
                if count == 0:
                    return element  # forces immediate pruning via empty candidates
                if best_count is None or count < best_count:
                    best_count = count
                    best_element = element
                    if count == 1:
                        break
            mask >>= 1
            element += 1
        return best_element


def exact_set_cover(
    system: SetSystem, target_mask: Optional[int] = None
) -> List[int]:
    """Return a minimum-cardinality cover of the target (default: universe).

    Raises :class:`InfeasibleInstanceError` when no cover exists.
    """
    target = system.uncovered_mask([]) if target_mask is None else target_mask
    if target == 0:
        return []
    _check_coverable(system, target)
    solver = _BranchAndBound(system, target)
    return solver.solve()


def exact_cover_value(
    system: SetSystem, target_mask: Optional[int] = None
) -> int:
    """Return the size of a minimum cover (``opt`` in the paper's notation)."""
    return len(exact_set_cover(system, target_mask))


def exact_cover_of_elements(system: SetSystem, elements: Sequence[int]) -> List[int]:
    """Convenience wrapper: minimum cover of an explicit element list."""
    mask = 0
    for element in elements:
        mask |= 1 << element
    return exact_set_cover(system, target_mask=mask)
