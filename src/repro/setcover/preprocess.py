"""Classical preprocessing reductions for set cover instances.

These are the standard polynomial-time simplifications applied before any
solver (offline or streaming) and used by the workload generators' tests to
sanity-check instance structure:

* **dominated-set removal** — a set contained in another set never needs to
  be picked;
* **forced picks** — if some element appears in exactly one set, that set is
  in every feasible cover;
* **empty-set removal** — empty sets can never help.

The reductions preserve at least one optimal solution; :func:`preprocess`
returns both the reduced instance and the bookkeeping needed to translate a
cover of the reduced instance back to the original indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.setcover.instance import SetSystem
from repro.utils.bitset import bitset_size


@dataclass
class PreprocessResult:
    """Outcome of preprocessing a set system.

    Attributes
    ----------
    system:
        The reduced system (same universe; possibly fewer sets; the elements
        covered by forced picks are removed from every remaining set).
    kept_indices:
        For each set in the reduced system, its index in the original system.
    forced_picks:
        Original indices of sets that every feasible cover must contain
        (already "applied": their elements are removed from the target).
    removed_dominated:
        Original indices of sets dropped because another set contains them.
    residual_target_mask:
        Bitset of original-universe elements still to be covered after the
        forced picks.
    """

    system: SetSystem
    kept_indices: List[int]
    forced_picks: List[int] = field(default_factory=list)
    removed_dominated: List[int] = field(default_factory=list)
    residual_target_mask: int = 0

    def lift_solution(self, reduced_solution: List[int]) -> List[int]:
        """Translate a cover of the reduced system back to original indices."""
        lifted = [self.kept_indices[i] for i in reduced_solution]
        return sorted(set(self.forced_picks) | set(lifted))


def remove_empty_sets(system: SetSystem) -> List[int]:
    """Return the indices of non-empty sets (in original order)."""
    return [i for i in range(system.num_sets) if system.mask(i) != 0]


def find_dominated_sets(system: SetSystem, candidates: Optional[List[int]] = None) -> Set[int]:
    """Indices of sets strictly contained in (or equal to, keeping the first) another set."""
    indices = list(candidates) if candidates is not None else list(range(system.num_sets))
    dominated: Set[int] = set()
    # Sort by size descending so potential dominators come first.
    by_size = sorted(indices, key=lambda i: bitset_size(system.mask(i)), reverse=True)
    for position, index in enumerate(by_size):
        mask = system.mask(index)
        for dominator in by_size[:position]:
            if dominator in dominated:
                continue
            if mask & ~system.mask(dominator) == 0:
                dominated.add(index)
                break
    return dominated


def find_forced_picks(system: SetSystem, candidates: List[int], target_mask: int) -> Set[int]:
    """Sets that are the unique coverer of some still-uncovered element."""
    forced: Set[int] = set()
    element = 0
    mask = target_mask
    while mask:
        if mask & 1:
            holders = [i for i in candidates if system.mask(i) >> element & 1]
            if len(holders) == 1:
                forced.add(holders[0])
        mask >>= 1
        element += 1
    return forced


def preprocess(system: SetSystem) -> PreprocessResult:
    """Apply empty-set removal, forced picks, and dominated-set removal.

    Forced picks are applied iteratively (covering elements with a forced set
    can make further elements uniquely covered); dominated-set removal runs
    once at the end on the residual sets.
    """
    target = system.uncovered_mask([])  # full universe
    candidates = remove_empty_sets(system)
    forced: List[int] = []

    while True:
        newly_forced = find_forced_picks(system, candidates, target)
        newly_forced -= set(forced)
        if not newly_forced:
            break
        for index in sorted(newly_forced):
            forced.append(index)
            target &= ~system.mask(index)
        candidates = [i for i in candidates if i not in newly_forced]
        if target == 0:
            break

    # Restrict remaining sets to the residual target before dominance checks:
    # containment is only meaningful on elements still to be covered.
    residual_masks = {i: system.mask(i) & target for i in candidates}
    residual_system = SetSystem.from_masks(
        system.universe_size, [residual_masks[i] for i in candidates]
    )
    dominated_local = find_dominated_sets(residual_system)
    dominated = [candidates[i] for i in sorted(dominated_local)]
    kept = [i for pos, i in enumerate(candidates) if pos not in dominated_local]

    reduced = SetSystem.from_masks(
        system.universe_size,
        [system.mask(i) & target for i in kept],
        [system.name(i) for i in kept],
    )
    return PreprocessResult(
        system=reduced,
        kept_indices=kept,
        forced_picks=forced,
        removed_dominated=dominated,
        residual_target_mask=target,
    )
