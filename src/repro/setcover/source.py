"""Instance sources: pluggable backings for the packed incidence buffer.

An :class:`InstanceSource` owns the packed ``uint64`` incidence buffer of a
set system (the :class:`~repro.setcover.instance.PackedSetSystem` wire
layout) plus the scalars needed to interpret it, behind one small read-only
windowed interface.  Three interchangeable backings:

* :class:`HeapSource` — today's in-memory path: the buffer is a ``bytes``
  object in this process's heap.
* :class:`SharedMemorySource` — the buffer lives in a named
  :mod:`multiprocessing.shared_memory` segment, published once and attached
  by many workers (this is what :mod:`repro.runtime.transport` builds on).
* :class:`MmapSource` — the buffer lives in a versioned on-disk container
  file (see `Container format`_) adopted zero-copy via :mod:`mmap`, so a
  process touches only the pages a query actually reads.

Every source serialises to a tiny picklable :class:`SourceDescriptor`
(kind + scalars + location + content digest) and reopens on the other side
via :func:`open_source`.  The digest is the same SHA-256 over the packed
buffer that task fingerprinting uses, so the content-addressed store's
skip/resume works identically across backings.

Container format
----------------
``REPROSC1`` magic (8 bytes), a little-endian ``uint64`` header length,
a space-padded UTF-8 JSON header (length a multiple of 8, so the data
section stays 8-byte aligned), then the packed incidence buffer exactly as
``PackedSetSystem.buffer`` lays it out.  The header records
``{version, universe_size, num_sets, backend, names, digest}`` where
``digest`` is the SHA-256 of the data section — written as a placeholder by
:class:`ContainerWriter` and patched in place on close, so the writer never
needs the whole buffer in memory.

Example — write a system to a container file and adopt it back zero-copy::

    >>> import tempfile, os
    >>> from repro.setcover.instance import SetSystem
    >>> system = SetSystem(4, [{0, 1}, {2, 3}])
    >>> path = os.path.join(tempfile.mkdtemp(), "tiny.repro")
    >>> descriptor = write_container(path, system.to_packed())
    >>> source = open_source(descriptor)
    >>> reloaded = SetSystem.from_source(source)
    >>> reloaded == system, reloaded.backing
    (True, 'mmap')
    >>> reloaded.content_digest() == system.content_digest()
    True
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.exceptions import InstanceSourceLostError, SharedSegmentLostError
from repro.setcover.instance import PackedSetSystem, SetSystem, packed_row_bytes
from repro.utils.bitset import universe_mask

#: Magic prefix of the on-disk container format (8 bytes, version in name).
CONTAINER_MAGIC = b"REPROSC1"

#: Current container header version.
CONTAINER_VERSION = 1

#: Default number of rows an out-of-core consumer materialises at once.
#: Matches the generators' Bernoulli chunking so one window is ~8·n·1024 bits.
DEFAULT_CHUNK_ROWS = 1024

#: The recognised source kinds, in degrade order (heap always works).
SOURCE_KINDS = ("heap", "shared", "mmap")

_DIGEST_PLACEHOLDER = "0" * 64

_T = TypeVar("_T")


# ---------------------------------------------------------------------------
# descriptors
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SourceDescriptor:
    """A picklable reference to an instance source.

    Only scalars (and, for the heap kind, the buffer itself) cross process
    boundaries; :func:`open_source` turns a descriptor back into a live
    source.  ``digest`` is the SHA-256 of the packed buffer — the identity
    task fingerprints hash, carried so reopening never has to rescan the
    data to fingerprint it.
    """

    kind: str
    universe_size: int
    num_sets: int
    backend: str = "auto"
    names: Optional[Tuple[str, ...]] = None
    path: Optional[str] = None
    segment: Optional[str] = None
    digest: Optional[str] = None
    buffer: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.kind not in SOURCE_KINDS:
            raise ValueError(
                f"unknown source kind {self.kind!r}; expected one of {SOURCE_KINDS}"
            )

    def location(self) -> str:
        """A human-readable location string for headers and traces."""
        if self.kind == "mmap":
            return str(self.path)
        if self.kind == "shared":
            return str(self.segment)
        return "<heap>"


def _with_attach_faults(key: str, attach: Callable[[], _T]) -> _T:
    """Run one source attach under the ``transport.attach`` injection point.

    The same fault/retry semantics :meth:`SharedSystemHandle.load` always
    had, now shared by every backing: no plan active → one direct call;
    under an active plan each attempt evaluates the injection point and
    transient failures (including :class:`InstanceSourceLostError` and
    :class:`SharedSegmentLostError`) retry under the ambient policy.
    Attaching never mutates anything, so retrying is free of side effects.
    """
    from repro.resilience.faults import current_attempt, faults_enabled, inject

    if not faults_enabled():
        return attach()

    from repro.resilience.policy import policy_from_env, retry_call

    def attach_once(relative: int) -> _T:
        inject("transport.attach", key=key, attempt=current_attempt() + relative)
        return attach()

    return retry_call(attach_once, policy=policy_from_env(), path=("attach", key))


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------
class InstanceSource:
    """Read-only windowed access to one packed incidence buffer.

    Subclasses provide :meth:`view` (the full buffer as a read-only
    memoryview) and :meth:`descriptor`; everything else — row windows,
    chunk iteration, mask decoding, digesting — is shared.  ``windowed``
    distinguishes backings whose buffer should *not* be assumed resident
    (shared memory, mmap): consumers route those through the chunked kernel
    so no query materialises more than a bounded window.
    """

    kind: str = "heap"
    windowed: bool = False

    def __init__(
        self,
        universe_size: int,
        num_sets: int,
        names: Optional[Tuple[str, ...]] = None,
        backend: str = "auto",
        digest: Optional[str] = None,
    ) -> None:
        if universe_size < 0 or num_sets < 0:
            raise ValueError("universe_size and num_sets must be non-negative")
        self._universe_size = universe_size
        self._num_sets = num_sets
        self._names = tuple(names) if names is not None else None
        self._backend = backend
        self._digest = digest

    # -- metadata ----------------------------------------------------------
    @property
    def universe_size(self) -> int:
        """Universe size n."""
        return self._universe_size

    @property
    def num_sets(self) -> int:
        """Number of sets m."""
        return self._num_sets

    @property
    def names(self) -> Optional[Tuple[str, ...]]:
        """Per-set names, or None for the default ``S0, S1, ...`` naming."""
        return self._names

    @property
    def backend(self) -> str:
        """The compute-kernel request carried with the buffer."""
        return self._backend

    @property
    def row_bytes(self) -> int:
        """Bytes per set row (uint64-aligned, see :func:`packed_row_bytes`)."""
        return packed_row_bytes(self._universe_size)

    @property
    def buffer_bytes(self) -> int:
        """Total size of the packed incidence buffer."""
        return self._num_sets * self.row_bytes

    # -- data access -------------------------------------------------------
    def view(self) -> memoryview:
        """The full packed buffer as a read-only memoryview."""
        raise NotImplementedError

    def row_view(self, start: int, stop: int) -> memoryview:
        """Rows ``[start, stop)`` of the packed buffer (read-only, no copy)."""
        if not 0 <= start <= stop <= self._num_sets:
            raise ValueError(
                f"row window [{start}, {stop}) out of range [0, {self._num_sets}]"
            )
        stride = self.row_bytes
        return self.view()[start * stride : stop * stride]

    def iter_chunks(
        self, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[Tuple[int, int, memoryview]]:
        """Yield ``(start_row, rows, view)`` windows covering the buffer."""
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        for start in range(0, self._num_sets, chunk_rows):
            stop = min(start + chunk_rows, self._num_sets)
            yield start, stop - start, self.row_view(start, stop)

    def mask_at(self, index: int) -> int:
        """Decode the bitset mask of one set row."""
        if not 0 <= index < self._num_sets:
            raise IndexError(f"set index {index} out of range [0, {self._num_sets})")
        return int.from_bytes(self.row_view(index, index + 1), "little")

    def digest(self) -> str:
        """SHA-256 of the packed buffer (chunked scan; cached)."""
        if self._digest is None:
            digest = hashlib.sha256()
            for _, _, view in self.iter_chunks():
                digest.update(view)
            self._digest = digest.hexdigest()
        return self._digest

    # -- conversion --------------------------------------------------------
    def to_packed(self) -> PackedSetSystem:
        """Materialise the full buffer as a :class:`PackedSetSystem`.

        Deliberately the *only* way to get the whole buffer into one bytes
        object — out-of-core callers should use :meth:`iter_chunks` instead.
        """
        return PackedSetSystem(
            universe_size=self._universe_size,
            num_sets=self._num_sets,
            buffer=bytes(self.view()),
            names=self._names,
            backend=self._backend,
        )

    def system(self, backend: Optional[str] = None) -> SetSystem:
        """Build a :class:`SetSystem` over this source (see ``from_source``)."""
        return SetSystem.from_source(self, backend=backend)

    def descriptor(self) -> SourceDescriptor:
        """The picklable reference that reopens this source elsewhere."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any OS resources (idempotent; heap sources are a no-op)."""

    def __enter__(self) -> "InstanceSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self._universe_size}, m={self._num_sets}, "
            f"kind={self.kind!r})"
        )


class HeapSource(InstanceSource):
    """The in-memory backing: the packed buffer is a ``bytes`` in this heap."""

    kind = "heap"
    windowed = False

    def __init__(
        self,
        universe_size: int,
        num_sets: int,
        buffer: bytes,
        names: Optional[Tuple[str, ...]] = None,
        backend: str = "auto",
        digest: Optional[str] = None,
    ) -> None:
        super().__init__(universe_size, num_sets, names, backend, digest)
        if not isinstance(buffer, bytes):
            buffer = bytes(buffer)
        if len(buffer) != self.buffer_bytes:
            raise ValueError(
                f"heap buffer holds {len(buffer)} bytes, expected {self.buffer_bytes}"
            )
        self._buffer = buffer

    @classmethod
    def from_packed(cls, packed: PackedSetSystem, digest: Optional[str] = None) -> "HeapSource":
        """Adopt a packed system's buffer without copying."""
        return cls(
            packed.universe_size,
            packed.num_sets,
            packed.buffer,
            names=packed.names,
            backend=packed.backend,
            digest=digest,
        )

    def view(self) -> memoryview:
        return memoryview(self._buffer)

    def to_packed(self) -> PackedSetSystem:
        # The buffer is already resident bytes — adopt it, never copy.
        return PackedSetSystem(
            universe_size=self._universe_size,
            num_sets=self._num_sets,
            buffer=self._buffer,
            names=self._names,
            backend=self._backend,
        )

    def descriptor(self) -> SourceDescriptor:
        return SourceDescriptor(
            kind="heap",
            universe_size=self._universe_size,
            num_sets=self._num_sets,
            backend=self._backend,
            names=self._names,
            digest=self.digest(),
            buffer=self._buffer,
        )


class SharedMemorySource(InstanceSource):
    """The shared-memory backing: one segment published once, attached by many.

    Create the owner side with :meth:`publish` (which copies the packed
    buffer into a fresh segment and will unlink it on :meth:`close`); the
    worker side reopens the descriptor with :meth:`attach` (attach-only —
    its :meth:`close` detaches without unlinking).
    """

    kind = "shared"
    windowed = True

    def __init__(
        self,
        shm,
        universe_size: int,
        num_sets: int,
        names: Optional[Tuple[str, ...]] = None,
        backend: str = "auto",
        digest: Optional[str] = None,
        owner: bool = False,
    ) -> None:
        super().__init__(universe_size, num_sets, names, backend, digest)
        self._shm = shm
        self._owner = owner
        self._view: Optional[memoryview] = None
        self._closed = False

    @property
    def segment(self) -> str:
        """The shared-memory segment name."""
        return self._shm.name

    @classmethod
    def publish(cls, packed: PackedSetSystem) -> "SharedMemorySource":
        """Copy ``packed``'s buffer into a fresh segment and own it."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(1, len(packed.buffer)))
        shm.buf[: len(packed.buffer)] = packed.buffer
        return cls(
            shm,
            packed.universe_size,
            packed.num_sets,
            names=packed.names,
            backend=packed.backend,
            digest=hashlib.sha256(packed.buffer).hexdigest(),
            owner=True,
        )

    @classmethod
    def attach(cls, descriptor: SourceDescriptor) -> "SharedMemorySource":
        """Attach to a published segment (fault-aware, never mutates).

        A segment that is already gone — the publisher closed first, or died
        and republished under a new name — raises the typed, retryable
        :class:`~repro.exceptions.SharedSegmentLostError`.
        """
        if descriptor.segment is None:
            raise ValueError("shared descriptor is missing its segment name")

        def attach_once() -> "SharedMemorySource":
            return cls._attach_segment(descriptor)

        return _with_attach_faults(descriptor.segment, attach_once)

    @classmethod
    def _attach_segment(cls, descriptor: SourceDescriptor) -> "SharedMemorySource":
        from multiprocessing import shared_memory

        # Attaching must not register the segment with multiprocessing's
        # resource tracker (cpython #82300: close() never unregisters on
        # Python < 3.13).  A registration here either leaks "leaked
        # shared_memory" shutdown noise (spawned worker, own tracker) or —
        # under fork, where every worker shares the parent's tracker —
        # races unregister messages against other attachers and the
        # publisher's unlink, crashing the tracker loop with a KeyError.
        # Only the publisher owns the segment, so the attach side suppresses
        # registration outright instead of unregistering after the fact.
        try:
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda name, rtype: None
        except Exception:  # pragma: no cover - tracker-less platforms
            original_register = None
        try:
            shm = shared_memory.SharedMemory(name=descriptor.segment)
        except FileNotFoundError:
            raise SharedSegmentLostError(str(descriptor.segment)) from None
        finally:
            if original_register is not None:
                resource_tracker.register = original_register
        return cls(
            shm,
            descriptor.universe_size,
            descriptor.num_sets,
            names=descriptor.names,
            backend=descriptor.backend,
            digest=descriptor.digest,
            owner=False,
        )

    def view(self) -> memoryview:
        if self._closed:
            raise ValueError("shared-memory source is closed")
        if self._view is None:
            self._view = memoryview(self._shm.buf)[: self.buffer_bytes].toreadonly()
        return self._view

    def descriptor(self) -> SourceDescriptor:
        return SourceDescriptor(
            kind="shared",
            universe_size=self._universe_size,
            num_sets=self._num_sets,
            backend=self._backend,
            names=self._names,
            digest=self.digest(),
            segment=self.segment,
        )

    def close(self) -> None:
        """Detach (and unlink, when this side published) — idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._view is not None:
            self._view.release()
            self._view = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


class MmapSource(InstanceSource):
    """The file backing: a container file adopted zero-copy via ``mmap``.

    The OS pages rows in on demand, so many processes can solve against the
    same multi-gigabyte instance while each keeps only its working window
    resident.  The header digest is trusted (the writer computed it over the
    data section), so fingerprinting a file-backed instance never rescans
    the buffer.
    """

    kind = "mmap"
    windowed = True

    def __init__(
        self,
        path: str,
        file,
        mapped: Optional[mmap.mmap],
        data_offset: int,
        universe_size: int,
        num_sets: int,
        names: Optional[Tuple[str, ...]] = None,
        backend: str = "auto",
        digest: Optional[str] = None,
    ) -> None:
        super().__init__(universe_size, num_sets, names, backend, digest)
        self._path = path
        self._file = file
        self._mapped = mapped
        self._data_offset = data_offset
        self._view: Optional[memoryview] = None
        self._closed = False

    @property
    def path(self) -> str:
        """Filesystem path of the container file."""
        return self._path

    @classmethod
    def open(cls, path: str) -> "MmapSource":
        """Open a container file (fault-aware; see `transport.attach`).

        A path that is gone (or torn mid-write) raises the typed, retryable
        :class:`~repro.exceptions.InstanceSourceLostError` — opening never
        mutates anything, so the ambient retry policy can simply try again.
        """
        return _with_attach_faults(str(path), lambda: cls._open_path(str(path)))

    @classmethod
    def _open_path(cls, path: str) -> "MmapSource":
        try:
            header, data_offset = read_container_header(path)
            file = open(path, "rb")
        except FileNotFoundError:
            raise InstanceSourceLostError(path) from None
        try:
            expected = header["num_sets"] * packed_row_bytes(header["universe_size"])
            actual = os.fstat(file.fileno()).st_size - data_offset
            if actual != expected:
                raise InstanceSourceLostError(
                    path, f"holds {actual} data bytes, expected {expected} (torn write?)"
                )
            # mmap refuses zero-length maps; an empty data section (m == 0
            # or n·m == 0) needs no mapping at all.
            mapped = (
                mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
                if expected
                else None
            )
        except Exception:
            file.close()
            raise
        names = header.get("names")
        return cls(
            path,
            file,
            mapped,
            data_offset,
            header["universe_size"],
            header["num_sets"],
            names=tuple(names) if names is not None else None,
            backend=header.get("backend", "auto"),
            digest=header.get("digest"),
        )

    def view(self) -> memoryview:
        if self._closed:
            raise ValueError(f"mmap source {self._path!r} is closed")
        if self._view is None:
            if self._mapped is None:
                self._view = memoryview(b"")
            else:
                self._view = memoryview(self._mapped)[
                    self._data_offset : self._data_offset + self.buffer_bytes
                ]
        return self._view

    def descriptor(self) -> SourceDescriptor:
        return SourceDescriptor(
            kind="mmap",
            universe_size=self._universe_size,
            num_sets=self._num_sets,
            backend=self._backend,
            names=self._names,
            digest=self.digest(),
            path=self._path,
        )

    def close(self) -> None:
        """Release the mapping and close the file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mapped is not None:
            try:
                self._mapped.close()
            except BufferError:  # pragma: no cover - exported view still alive
                pass
            self._mapped = None
        self._file.close()


def open_source(descriptor: SourceDescriptor) -> InstanceSource:
    """Reopen a :class:`SourceDescriptor` as a live source.

    The inverse of :meth:`InstanceSource.descriptor` — what pickled systems
    and dispatched shards call on the far side of a process boundary.
    """
    if descriptor.kind == "heap":
        if descriptor.buffer is None:
            raise ValueError("heap descriptor is missing its inline buffer")
        return HeapSource(
            descriptor.universe_size,
            descriptor.num_sets,
            descriptor.buffer,
            names=descriptor.names,
            backend=descriptor.backend,
            digest=descriptor.digest,
        )
    if descriptor.kind == "shared":
        return SharedMemorySource.attach(descriptor)
    if descriptor.kind == "mmap":
        if descriptor.path is None:
            raise ValueError("mmap descriptor is missing its path")
        return MmapSource.open(descriptor.path)
    raise ValueError(f"unknown source kind {descriptor.kind!r}")


# ---------------------------------------------------------------------------
# container file format
# ---------------------------------------------------------------------------
def _encode_header(
    universe_size: int,
    num_sets: int,
    backend: str,
    names: Optional[Tuple[str, ...]],
    digest: str,
) -> bytes:
    header = {
        "version": CONTAINER_VERSION,
        "universe_size": universe_size,
        "num_sets": num_sets,
        "backend": backend,
        "names": list(names) if names is not None else None,
        "digest": digest,
    }
    encoded = json.dumps(header, sort_keys=True).encode("utf-8")
    # Pad to an 8-byte boundary so the data section stays uint64-aligned.
    padding = (-len(encoded)) % 8
    return encoded + b" " * padding


def read_container_header(path: str) -> Tuple[dict, int]:
    """Parse a container file's header; return ``(header, data_offset)``."""
    with open(path, "rb") as handle:
        magic = _read_exact(handle, len(CONTAINER_MAGIC))
        if magic != CONTAINER_MAGIC:
            raise ValueError(
                f"{path!r} is not a repro instance container "
                f"(bad magic {magic!r}, expected {CONTAINER_MAGIC!r})"
            )
        header_len = int.from_bytes(_read_exact(handle, 8), "little")
        if header_len <= 0 or header_len > 1 << 24:
            raise ValueError(f"{path!r} has an implausible header length {header_len}")
        try:
            header = json.loads(_read_exact(handle, header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"{path!r} has a corrupt container header: {exc}") from None
    version = header.get("version")
    if version != CONTAINER_VERSION:
        raise ValueError(
            f"{path!r} has container version {version!r}; "
            f"this build reads version {CONTAINER_VERSION}"
        )
    for key in ("universe_size", "num_sets"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            raise ValueError(f"{path!r} header is missing a valid {key!r}")
    return header, len(CONTAINER_MAGIC) + 8 + header_len


def _read_exact(handle, count: int) -> bytes:
    data = handle.read(count)
    if len(data) != count:
        raise ValueError("truncated container header")
    return data


class ContainerWriter:
    """Incremental writer for the container format (bounded peak memory).

    Rows are appended in packed wire form; the digest accumulates as they
    stream through, and :meth:`close` patches it into the header and
    atomically publishes the file (write-to-temp + ``os.replace``), so a
    reader never observes a half-written container under the final name.
    """

    def __init__(
        self,
        path: str,
        universe_size: int,
        num_sets: int,
        names: Optional[Sequence[str]] = None,
        backend: str = "auto",
    ) -> None:
        if universe_size < 0 or num_sets < 0:
            raise ValueError("universe_size and num_sets must be non-negative")
        if names is not None and len(names) != num_sets:
            raise ValueError("names must have one entry per set")
        self._path = str(path)
        self._tmp_path = self._path + ".tmp"
        self._universe_size = universe_size
        self._num_sets = num_sets
        self._names = tuple(names) if names is not None else None
        self._backend = backend
        self._row_bytes = packed_row_bytes(universe_size)
        self._rows_written = 0
        self._hash = hashlib.sha256()
        self._digest: Optional[str] = None
        self._closed = False

        header = _encode_header(
            universe_size, num_sets, backend, self._names, _DIGEST_PLACEHOLDER
        )
        token = '"digest": "' + _DIGEST_PLACEHOLDER
        # magic + length word + offset of the hex digits inside the header.
        self._digest_offset = (
            len(CONTAINER_MAGIC) + 8 + header.index(token.encode("utf-8")) + len('"digest": "')
        )
        self._file = open(self._tmp_path, "wb")
        try:
            self._file.write(CONTAINER_MAGIC)
            self._file.write(len(header).to_bytes(8, "little"))
            self._file.write(header)
        except Exception:
            self.abort()
            raise

    @property
    def row_bytes(self) -> int:
        """Bytes per packed set row."""
        return self._row_bytes

    @property
    def rows_written(self) -> int:
        """Rows appended so far."""
        return self._rows_written

    def append_rows(self, data: bytes) -> None:
        """Append one or more packed rows (length multiple of ``row_bytes``)."""
        if self._closed:
            raise ValueError("container writer is closed")
        if len(data) % self._row_bytes:
            raise ValueError(
                f"row data of {len(data)} bytes is not a multiple of the "
                f"{self._row_bytes}-byte row stride"
            )
        rows = len(data) // self._row_bytes
        if self._rows_written + rows > self._num_sets:
            raise ValueError(
                f"appending {rows} rows would exceed the declared {self._num_sets}"
            )
        self._hash.update(data)
        self._file.write(data)
        self._rows_written += rows

    def append_masks(self, masks: Iterable[int]) -> None:
        """Append rows from bitset masks, packing each to the wire stride."""
        full = universe_mask(self._universe_size)
        stride = self._row_bytes
        for mask in masks:
            if mask & ~full:
                raise ValueError(
                    f"mask contains elements outside the universe [0, {self._universe_size})"
                )
            self.append_rows(mask.to_bytes(stride, "little"))

    def close(self) -> SourceDescriptor:
        """Finish: validate row count, patch the digest, publish atomically."""
        if self._closed:
            if self._digest is None:
                raise ValueError("container writer was aborted")
            return self._descriptor()
        if self._rows_written != self._num_sets:
            self.abort()
            raise ValueError(
                f"container declared {self._num_sets} sets but "
                f"{self._rows_written} rows were written"
            )
        self._closed = True
        self._digest = self._hash.hexdigest()
        self._file.seek(self._digest_offset)
        self._file.write(self._digest.encode("ascii"))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        os.replace(self._tmp_path, self._path)
        return self._descriptor()

    def abort(self) -> None:
        """Discard the partial temp file (idempotent; close() then fails)."""
        if self._closed and self._digest is not None:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            try:
                os.remove(self._tmp_path)
            except FileNotFoundError:
                pass

    def _descriptor(self) -> SourceDescriptor:
        return SourceDescriptor(
            kind="mmap",
            universe_size=self._universe_size,
            num_sets=self._num_sets,
            backend=self._backend,
            names=self._names,
            digest=self._digest,
            path=self._path,
        )

    def __enter__(self) -> "ContainerWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def write_container(path: str, packed: PackedSetSystem) -> SourceDescriptor:
    """Write an in-memory packed system to a container file in one call."""
    writer = ContainerWriter(
        path,
        packed.universe_size,
        packed.num_sets,
        names=packed.names,
        backend=packed.backend,
    )
    with writer:
        writer.append_rows(packed.buffer)
    return writer.close()


# ---------------------------------------------------------------------------
# lazy system facade
# ---------------------------------------------------------------------------
class LazyMaskRows(Sequence):
    """A read-only ``Sequence[int]`` of set masks decoded on demand.

    Stands in for ``SetSystem._masks`` on source-backed systems: random
    access decodes one row; iteration decodes a bounded chunk at a time and
    keeps only the current window cached, so walking all m masks never
    materialises the full buffer as Python integers.
    """

    def __init__(self, source: InstanceSource, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        self._source = source
        self._chunk_rows = max(1, chunk_rows)
        self._cache_start = -1
        self._cache: List[int] = []

    def __len__(self) -> int:
        return self._source.num_sets

    def _chunk_for(self, index: int) -> List[int]:
        start = (index // self._chunk_rows) * self._chunk_rows
        if start != self._cache_start:
            stop = min(start + self._chunk_rows, self._source.num_sets)
            self._cache = _decode_rows(
                self._source.row_view(start, stop), self._source.row_bytes
            )
            self._cache_start = start
        return self._cache

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"set index out of range [0, {length})")
        return self._chunk_for(index)[index % self._chunk_rows]

    def __iter__(self) -> Iterator[int]:
        stride = self._source.row_bytes
        for _, _, view in self._source.iter_chunks(self._chunk_rows):
            yield from _decode_rows(view, stride)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence) or isinstance(other, (str, bytes)):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(a == b for a, b in zip(self, other))

    __hash__ = None  # type: ignore[assignment]


def _decode_rows(view: memoryview, stride: int) -> List[int]:
    data = bytes(view)
    return [
        int.from_bytes(data[offset : offset + stride], "little")
        for offset in range(0, len(data), stride)
    ]


class _DefaultNames(Sequence):
    """The ``S0, S1, ...`` naming as a constant-space sequence."""

    def __init__(self, count: int) -> None:
        self._count = count

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"name index out of range [0, {self._count})")
        return f"S{index}"


class SourceBackedSetSystem(SetSystem):
    """A :class:`SetSystem` whose buffer stays in its (windowed) source.

    Behaviourally identical to an ordinary system — every query answers the
    same bits — but masks decode lazily through :class:`LazyMaskRows`,
    batched queries run on the chunked kernel, and pickling ships the tiny
    :class:`SourceDescriptor` instead of the buffer.  Built by
    ``SetSystem.from_source`` for windowed sources (shared memory, mmap).
    """

    def __init__(self, source: InstanceSource, backend: Optional[str] = None) -> None:
        self._n = source.universe_size
        self._backend = backend if backend is not None else source.backend
        self._kernel = None
        self._packed = None
        self._universe_mask = universe_mask(source.universe_size)
        self._source = source
        self._masks = LazyMaskRows(source)
        self._names = (
            list(source.names)
            if source.names is not None
            else _DefaultNames(source.num_sets)
        )

    @property
    def source(self) -> InstanceSource:
        """The backing source this system reads through."""
        return self._source

    @property
    def backing(self) -> str:
        """Which backing holds the buffer (``shared`` or ``mmap``)."""
        return self._source.kind

    def kernel(self):
        """The chunked compute kernel over the source (lazy, then cached)."""
        if self._kernel is None:
            from repro.kernels.chunked import make_source_kernel

            self._kernel = make_source_kernel(self._source, self._backend)
        return self._kernel

    def _default_names(self) -> bool:
        return self._source.names is None

    def coverage_mask(self, indices: Iterable[int]) -> int:
        # The base implementation splats one decoded mask per index into a
        # call tuple — O(len(indices)) resident ints, exactly what a
        # windowed system must avoid.  The full-range case (feasibility
        # checks, preprocessing) is one chunked kernel union; any other
        # selection folds through the row cache one mask at a time.
        if isinstance(indices, range) and indices == range(self._source.num_sets):
            return self.kernel().union()
        result = 0
        for index in indices:
            result |= self._masks[index]
        return result

    def content_digest(self) -> str:
        """The source digest — no buffer scan when the backing carries one."""
        return self._source.digest()

    def to_packed(self) -> PackedSetSystem:
        """Materialise the full buffer (documented escape hatch, not free)."""
        return PackedSetSystem(
            universe_size=self._n,
            num_sets=self._source.num_sets,
            buffer=bytes(self._source.view()),
            names=self._source.names,
            backend=self._backend,
        )

    def close(self) -> None:
        """Close the backing source (idempotent)."""
        self._source.close()

    def __getstate__(self):
        # Ship the descriptor, not the buffer: the far side reattaches to
        # the same segment/file, which is the whole point of the backing.
        return {"source": self._source.descriptor(), "backend": self._backend}

    def __repr__(self) -> str:
        return (
            f"SourceBackedSetSystem(n={self._n}, m={self._source.num_sets}, "
            f"backing={self._source.kind!r})"
        )


__all__ = [
    "CONTAINER_MAGIC",
    "CONTAINER_VERSION",
    "DEFAULT_CHUNK_ROWS",
    "SOURCE_KINDS",
    "ContainerWriter",
    "HeapSource",
    "InstanceSource",
    "LazyMaskRows",
    "MmapSource",
    "SharedMemorySource",
    "SourceBackedSetSystem",
    "SourceDescriptor",
    "open_source",
    "read_container_header",
    "write_container",
]
