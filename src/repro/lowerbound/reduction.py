"""The reduction protocols of Lemma 3.4 and Lemma 4.5.

* :class:`DisjViaSetCoverProtocol` — solves ``Disj_t`` by embedding the input
  pair at a random position of a freshly sampled D_SC instance and running any
  two-party set cover protocol on it; the Disj answer is read off from whether
  the estimated optimum is ≤ 2α.
* :class:`GHDViaMaxCoverProtocol` — the analogous embedding of a ``GHD_{t1}``
  input into a D_MC instance, answered by comparing the estimated maximum
  2-coverage against the threshold τ of Lemma 4.3.

These are the constructive halves of the paper's direct-sum arguments; the E7
and E10 benchmarks run them against exact/approximate inner protocols and
report the empirical error rates (which the lemmas bound by δ + o(1)).

Note on answer polarity: the paper's Protocol π_Disj (Section 3.2) says
"output No iff π_SC estimates opt ≤ 2α"; with the paper's own conventions
(Yes ⇔ A ∩ B = ∅ ⇔ the embedded pair behaves like θ = 1 ⇔ opt = 2) the
estimate ≤ 2α case corresponds to the *Yes* answer, so we output Yes in that
case — the paper's sentence has the two labels swapped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.communication.model import Message, Protocol, Transcript
from repro.communication.protocols.setcover_protocol import SetCoverInput
from repro.lowerbound.dmc import DMCInstance, DMCParameters, lemma_4_3_tau, sample_dmc
from repro.lowerbound.dsc import DSCInstance, DSCParameters, sample_dsc
from repro.lowerbound.mapping_extension import random_mapping_extension
from repro.problems.disjointness import DisjointnessInstance, sample_ddisj_no
from repro.problems.ghd import GHDInstance, sample_dghd_no
from repro.utils.bitset import bitset_from_iterable, universe_mask
from repro.utils.rng import SeedLike, spawn_rng


@dataclass
class EmbeddingRecord:
    """Bookkeeping of one embedding run (exposed through transcript metadata)."""

    special_index: int
    estimate: float
    threshold: float
    answer: str


class DisjViaSetCoverProtocol(Protocol):
    """Lemma 3.4: a protocol for Disj_t built from a SetCover protocol.

    The players publicly sample the index ``i*``, the mapping-extensions, and
    the other ``m − 1`` disjointness pairs from ``D_Disj^N``; the real input
    ``(A, B)`` is embedded at position ``i*``; they run the inner set cover
    protocol on the resulting (exactly D_SC-distributed) instance and answer
    "Yes" (disjoint) iff the estimated optimum is at most ``2α``.
    """

    name = "disj-via-setcover"

    def __init__(
        self,
        inner_protocol: Protocol,
        parameters: DSCParameters,
        seed: SeedLike = None,
        decision_threshold: Optional[float] = None,
    ) -> None:
        self.inner_protocol = inner_protocol
        self.parameters = parameters
        self._rng = spawn_rng(seed)
        # The paper's threshold is 2α (valid in the asymptotic regime where
        # Lemma 3.2 gives opt > 2α for intersecting pairs).  At reproduction
        # scale an exact inner oracle justifies the sharper threshold 2, so
        # experiments may override it.
        self.decision_threshold = (
            decision_threshold
            if decision_threshold is not None
            else 2.0 * parameters.alpha
        )

    def execute(
        self, alice_input: FrozenSet[int], bob_input: FrozenSet[int]
    ) -> Transcript:
        rng = self._rng.spawn()
        n = self.parameters.universe_size
        m = self.parameters.num_pairs
        t = self.parameters.resolved_t()
        full = universe_mask(n)

        # Public randomness: the embedding position, all mapping-extensions,
        # and the other pairs (sampled publicly here; the paper splits them
        # between public and private randomness only to make the
        # information-cost bookkeeping work, which does not affect the
        # constructed instance's distribution or the protocol's correctness).
        special_index = rng.randrange(m)
        alice_sets: List[int] = []
        bob_sets: List[int] = []
        for index in range(m):
            mapping = random_mapping_extension(n, t, seed=rng.spawn())
            if index == special_index:
                pair_alice, pair_bob = alice_input, bob_input
            else:
                filler = sample_ddisj_no(t, seed=rng.spawn())
                pair_alice, pair_bob = filler.alice, filler.bob
            alice_sets.append(full & ~mapping.extend_mask(pair_alice))
            bob_sets.append(full & ~mapping.extend_mask(pair_bob))

        sc_alice = SetCoverInput(n, {i: mask for i, mask in enumerate(alice_sets)})
        sc_bob = SetCoverInput(n, {m + i: mask for i, mask in enumerate(bob_sets)})
        inner_transcript = self.inner_protocol.execute(sc_alice, sc_bob)
        estimate = float(inner_transcript.output)
        threshold = self.decision_threshold
        answer = "Yes" if estimate <= threshold else "No"

        transcript = Transcript()
        transcript.messages = list(inner_transcript.messages)
        transcript.messages.append(Message(sender="bob", payload=answer))
        transcript.output = answer
        transcript.public_randomness = {"special_index": special_index}
        transcript.metadata = {
            "embedding": EmbeddingRecord(
                special_index=special_index,
                estimate=estimate,
                threshold=threshold,
                answer=answer,
            ),
            "inner_protocol": self.inner_protocol.name,
        }
        return transcript


class GHDViaMaxCoverProtocol(Protocol):
    """Lemma 4.5: a protocol for GHD_{t1} built from a MaxCover protocol.

    The players embed the input pair at a random position of a D_MC instance
    (the other pairs drawn from ``D_GHD^N``, the U2 halves split by public
    randomness), run the inner maximum-coverage protocol (k = 2), and answer
    "Yes" iff the estimated optimal coverage exceeds the Lemma 4.3 threshold τ.
    """

    name = "ghd-via-maxcover"

    def __init__(
        self,
        inner_protocol: Protocol,
        parameters: DMCParameters,
        seed: SeedLike = None,
    ) -> None:
        self.inner_protocol = inner_protocol
        self.parameters = parameters
        self._rng = spawn_rng(seed)

    def execute(
        self, alice_input: FrozenSet[int], bob_input: FrozenSet[int]
    ) -> Transcript:
        rng = self._rng.spawn()
        params = self.parameters
        m = params.num_pairs
        t1, t2 = params.t1, params.t2
        a, b = params.resolved_set_sizes()
        u2_elements = list(range(t1, t1 + t2))

        special_index = rng.randrange(m)
        alice_sets: List[int] = []
        bob_sets: List[int] = []
        for index in range(m):
            if index == special_index:
                pair_alice, pair_bob = alice_input, bob_input
            else:
                filler = sample_dghd_no(t1, a, b, seed=rng.spawn())
                pair_alice, pair_bob = filler.alice, filler.bob
            c_part: List[int] = []
            d_part: List[int] = []
            for element in u2_elements:
                if rng.bernoulli(0.5):
                    c_part.append(element)
                else:
                    d_part.append(element)
            alice_sets.append(bitset_from_iterable(list(pair_alice) + c_part))
            bob_sets.append(bitset_from_iterable(list(pair_bob) + d_part))

        n = params.universe_size
        mc_alice = SetCoverInput(n, {i: mask for i, mask in enumerate(alice_sets)})
        mc_bob = SetCoverInput(n, {m + i: mask for i, mask in enumerate(bob_sets)})
        inner_transcript = self.inner_protocol.execute(mc_alice, mc_bob)
        estimate = float(inner_transcript.output)
        tau = lemma_4_3_tau(params)
        answer = "Yes" if estimate > tau else "No"

        transcript = Transcript()
        transcript.messages = list(inner_transcript.messages)
        transcript.messages.append(Message(sender="bob", payload=answer))
        transcript.output = answer
        transcript.public_randomness = {"special_index": special_index}
        transcript.metadata = {
            "embedding": EmbeddingRecord(
                special_index=special_index,
                estimate=estimate,
                threshold=tau,
                answer=answer,
            ),
            "inner_protocol": self.inner_protocol.name,
        }
        return transcript


def evaluate_disj_reduction(
    reduction: DisjViaSetCoverProtocol,
    instances: List[DisjointnessInstance],
) -> Tuple[float, float]:
    """Run the Lemma 3.4 reduction over Disj instances.

    Returns ``(error_rate, average_bits)``.
    """
    if not instances:
        raise ValueError("need at least one instance")
    errors = 0
    total_bits = 0
    for instance in instances:
        transcript = reduction.execute(instance.alice, instance.bob)
        expected = "Yes" if instance.is_disjoint else "No"
        if transcript.output != expected:
            errors += 1
        total_bits += transcript.total_bits
    return errors / len(instances), total_bits / len(instances)


def evaluate_ghd_reduction(
    reduction: GHDViaMaxCoverProtocol,
    instances: List[GHDInstance],
) -> Tuple[float, float]:
    """Run the Lemma 4.5 reduction over GHD instances (gap answers are free)."""
    if not instances:
        raise ValueError("need at least one instance")
    errors = 0
    total_bits = 0
    for instance in instances:
        transcript = reduction.execute(instance.alice, instance.bob)
        if instance.label in ("Yes", "No") and transcript.output != instance.label:
            errors += 1
        total_bits += transcript.total_bits
    return errors / len(instances), total_bits / len(instances)
