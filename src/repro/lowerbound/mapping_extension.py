"""Mapping-extensions (Definition 3 of the paper).

A mapping-extension of ``[t]`` to ``[n]`` is a function ``f : [t] → 2^[n]``
assigning each ``i ∈ [t]`` a block of ``n/t`` *unique* elements of ``[n]``
(so the blocks partition a size-``t·(n/t)`` subset of ``[n]``; the paper takes
``t | n`` so the blocks partition all of ``[n]``).  For ``A ⊆ [t]``,
``f(A) := ∪_{i∈A} f(i)``.

The hard distribution ``D_SC`` uses a uniformly random mapping-extension per
embedded disjointness instance to blow the ``[t]`` gadget up to the ``[n]``
universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.exceptions import DistributionError
from repro.utils.bitset import bitset_from_iterable
from repro.utils.rng import SeedLike, argsort_floats, batching_numpy, spawn_rng


@dataclass(frozen=True)
class MappingExtension:
    """An explicit mapping-extension ``f : [t] → 2^[n]`` with disjoint blocks."""

    universe_size: int
    blocks: Tuple[FrozenSet[int], ...]

    def __post_init__(self) -> None:
        seen: set = set()
        for index, block in enumerate(self.blocks):
            if not block:
                raise DistributionError(f"block {index} of a mapping-extension is empty")
            overlap = seen & block
            if overlap:
                raise DistributionError(
                    f"blocks are not disjoint: element(s) {sorted(overlap)[:5]} repeat"
                )
            for element in block:
                if not 0 <= element < self.universe_size:
                    raise DistributionError(
                        f"element {element} outside the universe [0, {self.universe_size})"
                    )
            seen |= block

    @property
    def t(self) -> int:
        """Domain size t of the mapping."""
        return len(self.blocks)

    @property
    def block_size(self) -> int:
        """Number of elements per block (n/t in the paper)."""
        return len(self.blocks[0]) if self.blocks else 0

    def image(self, i: int) -> FrozenSet[int]:
        """The block f(i)."""
        return self.blocks[i]

    def extend(self, subset: Iterable[int]) -> FrozenSet[int]:
        """f(A) = union of the blocks of the indices in A."""
        result: set = set()
        for i in subset:
            result |= self.blocks[i]
        return frozenset(result)

    def extend_mask(self, subset: Iterable[int]) -> int:
        """f(A) as a bitset mask over the universe."""
        return bitset_from_iterable(self.extend(subset))

    def preimage_table(self) -> Dict[int, int]:
        """Map each covered universe element back to its block index."""
        table: Dict[int, int] = {}
        for block_index, block in enumerate(self.blocks):
            for element in block:
                table[element] = block_index
        return table


def block_sizes(universe_size: int, t: int) -> List[int]:
    """Block sizes of a mapping-extension of [t] to [n].

    When ``t`` does not divide ``n`` the first ``n mod t`` blocks receive one
    extra element, so the blocks always partition the whole universe (the
    paper's asymptotic setting has t | n).
    """
    base_size = universe_size // t
    remainder = universe_size % t
    return [base_size + (1 if index < remainder else 0) for index in range(t)]


def blocks_from_permutation(
    permutation, universe_size: int, t: int
) -> Tuple[FrozenSet[int], ...]:
    """Cut a universe permutation into the t consecutive mapping blocks."""
    blocks: List[FrozenSet[int]] = []
    cursor = 0
    for size in block_sizes(universe_size, t):
        chunk = permutation[cursor : cursor + size]
        blocks.append(frozenset(chunk.tolist() if hasattr(chunk, "tolist") else chunk))
        cursor += size
    return tuple(blocks)


def blocks_from_block_ids(block_ids, t: int) -> Tuple[FrozenSet[int], ...]:
    """Group universe elements by their block id into the t mapping blocks."""
    members: List[List[int]] = [[] for _ in range(t)]
    sequence = block_ids.tolist() if hasattr(block_ids, "tolist") else block_ids
    for element, block_index in enumerate(sequence):
        members[block_index].append(element)
    return tuple(frozenset(block) for block in members)


def mapping_permutation(universe_size: int, rng) -> "list":
    """The mapping-extension draw protocol: argsort of ``n`` uniforms.

    Consumes exactly ``universe_size`` floats from ``rng``; the stable
    argsort of i.i.d. uniforms is a uniformly random permutation, and the
    fixed budget is what lets the D_SC sampler draw every pair's mapping
    through one bulk :meth:`~repro.utils.rng.RandomSource.random_array` call,
    bit-identical to this sequential path.
    """
    draws = rng.random_batch(universe_size)
    numpy = batching_numpy()
    if numpy is not None and universe_size >= 64:
        return numpy.argsort(numpy.asarray(draws), kind="stable").tolist()
    return argsort_floats(draws)


def random_mapping_extension(
    universe_size: int, t: int, seed: SeedLike = None
) -> MappingExtension:
    """Sample a uniformly random mapping-extension of [t] to [n].

    Requires ``t ≤ n``.  Consumes ``n`` uniforms (see
    :func:`mapping_permutation`); block sizes follow :func:`block_sizes`.
    """
    if t < 1:
        raise DistributionError(f"t must be >= 1, got {t}")
    if t > universe_size:
        raise DistributionError(
            f"t={t} cannot exceed the universe size {universe_size}"
        )
    rng = spawn_rng(seed)
    permutation = mapping_permutation(universe_size, rng)
    return MappingExtension(
        universe_size=universe_size,
        blocks=blocks_from_permutation(permutation, universe_size, t),
    )
