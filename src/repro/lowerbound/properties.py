"""Empirical verifiers for the structural properties of D_SC and D_MC.

These functions check, on sampled instances, the facts the lower-bound proofs
rely on:

* Remark 3.1 — set sizes, the pair-union structure ``S_i ∪ T_i = [n] \\
  f_i(A_i ∩ B_i)``, and independence across indices.
* Lemma 3.2 — when θ = 0 the optimum exceeds 2α w.h.p.; when θ = 1 it is 2.
* Claim 3.3-style singleton-coverage bounds.
* Lemma 4.3 / Claim 4.4 — the (1 ± Θ(ε)) maximum-coverage gap in D_MC and the
  matched-pair structure of near-optimal 2-covers.
* Lemma 3.7 — the number of "good" indices under the random partitioning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import InfeasibleInstanceError
from repro.lowerbound.dmc import DMCInstance, lemma_4_3_tau
from repro.lowerbound.dsc import DSCInstance
from repro.setcover.exact import exact_set_cover
from repro.setcover.maxcover import exact_max_coverage
from repro.utils.bitset import bitset_size, universe_mask


@dataclass
class RemarkCheck:
    """Result of checking one item of Remark 3.1 on a sampled instance."""

    name: str
    holds: bool
    detail: str = ""


def check_remark_3_1(instance: DSCInstance) -> List[RemarkCheck]:
    """Check the verifiable items of Remark 3.1 on a D_SC instance."""
    checks: List[RemarkCheck] = []
    n = instance.universe_size
    t = instance.parameters.resolved_t()
    block = -(-n // t) if t else n  # ceil(n / t)

    # (i) set sizes concentrate around 2n/3.  At reproduction scale t is small,
    # so individual sizes fluctuate by Θ(block·√t); we therefore check the
    # *average* size over the 2m sets against 2n/3 with a 4-standard-error
    # tolerance (plus one block of slack for the special θ=1 pair).
    sizes = [bitset_size(mask) for mask in instance.alice_sets + instance.bob_sets]
    average_size = sum(sizes) / len(sizes)
    per_set_std = block * (t * (1.0 / 3.0) * (2.0 / 3.0)) ** 0.5
    tolerance = 4.0 * per_set_std / (len(sizes) ** 0.5) + block
    sizes_ok = abs(average_size - 2 * n / 3) <= tolerance
    checks.append(
        RemarkCheck(
            name="(i) average set size ≈ 2n/3",
            holds=sizes_ok,
            detail=f"avg={average_size:.1f}, target={2 * n / 3:.1f}, tol={tolerance:.1f}",
        )
    )

    # (iii) S_i ∪ T_i = [n] \ f_i(A_i ∩ B_i).
    full = universe_mask(n)
    unions_ok = True
    detail = ""
    for index in range(instance.num_pairs):
        pair = instance.disjointness[index]
        mapping = instance.mappings[index]
        expected = full & ~mapping.extend_mask(pair.intersection)
        if instance.pair_union_mask(index) != expected:
            unions_ok = False
            detail = f"pair {index} union mismatch"
            break
    checks.append(
        RemarkCheck(name="(iii) S_i ∪ T_i = [n] \\ f_i(A_i ∩ B_i)", holds=unions_ok, detail=detail)
    )

    # Special-pair structure: when θ = 1 the special pair covers [n].
    if instance.theta == 1 and instance.special_index is not None:
        covers = instance.pair_union_mask(instance.special_index) == full
        checks.append(
            RemarkCheck(
                name="θ=1 special pair covers the universe",
                holds=covers,
                detail=f"special index {instance.special_index}",
            )
        )
    else:
        none_cover = all(
            instance.pair_union_mask(i) != full for i in range(instance.num_pairs)
        )
        checks.append(
            RemarkCheck(
                name="θ=0 no pair covers the universe",
                holds=none_cover,
            )
        )
    return checks


def dsc_opt_gap(instance: DSCInstance, alpha: Optional[int] = None) -> Dict[str, object]:
    """Compute the exact optimum of a D_SC instance and the Lemma 3.2 verdict.

    Returns a dict with the optimum value, θ, and whether the instance
    respects the gap the lower bound needs (opt == 2 when θ = 1, opt > 2α
    when θ = 0).  Exact solving is exponential in the worst case, so this is
    meant for the small instances used in tests and the E5 benchmark.
    """
    if alpha is None:
        alpha = instance.parameters.alpha
    system = instance.set_system()
    try:
        solution = exact_set_cover(system)
        opt: float = len(solution)
    except InfeasibleInstanceError:
        # At finite scale a θ=0 sample can be entirely uncoverable (every set
        # misses some common element); that trivially respects every gap.
        solution = []
        opt = math.inf
    if instance.theta == 1:
        respects_gap = opt <= 2
        respects_weak_gap = respects_gap
    else:
        respects_gap = opt > 2 * alpha
        # The weak gap (opt > 2) is what the exact-oracle reduction of E7
        # relies on; it holds at any scale because no non-special pair (or
        # concentrated mixed pair) covers the universe.
        respects_weak_gap = opt > 2
    return {
        "theta": instance.theta,
        "opt": opt,
        "alpha": alpha,
        "respects_gap": respects_gap,
        "respects_weak_gap": respects_weak_gap,
        "solution": solution,
    }


def singleton_collection_coverage(instance: DSCInstance, size: int, seed_order: Optional[List[int]] = None) -> int:
    """Coverage of the first ``size`` singleton sets (one of each pair).

    A crude empirical counterpart of Claim 3.3: singleton collections (never
    containing both S_i and T_i) leave many elements uncovered.
    """
    indices = seed_order if seed_order is not None else list(range(instance.num_pairs))
    chosen = indices[:size]
    system = instance.set_system()
    return system.coverage(chosen)


def dmc_value_gap(instance: DMCInstance) -> Dict[str, object]:
    """Compute the exact 2-coverage optimum of a D_MC instance (Lemma 4.3).

    Returns the optimal value, the threshold τ, θ, whether the best 2-cover is
    a matched pair, and whether the value lands on the θ-appropriate side of τ.
    """
    system = instance.set_system()
    chosen, value = exact_max_coverage(system, 2)
    tau = lemma_4_3_tau(instance.parameters)
    m = instance.num_pairs
    is_matched_pair = (
        len(chosen) == 2
        and abs(chosen[0] - chosen[1]) == m
        and min(chosen) < m <= max(chosen)
    )
    if instance.theta == 1:
        on_correct_side = value >= tau
    else:
        on_correct_side = value <= tau
    return {
        "theta": instance.theta,
        "opt_value": value,
        "tau": tau,
        "chosen": chosen,
        "is_matched_pair": is_matched_pair,
        "on_correct_side": on_correct_side,
    }


def claim_4_4_bounds(instance: DMCInstance) -> Dict[str, object]:
    """Check Claim 4.4: matched pairs cover all of U2, mixed pairs ≤ (3/4+0.2)·t2 + t1."""
    params = instance.parameters
    system = instance.set_system()
    m = instance.num_pairs
    t1, t2 = params.t1, params.t2

    matched_ok = True
    for index in range(m):
        if instance.pair_coverage(index) < t2:
            matched_ok = False
            break

    mixed_bound = (0.75 + 0.2) * t2 + t1
    mixed_ok = True
    worst_mixed = 0
    # Check a bounded number of mixed pairs so the check stays cheap.
    limit = min(m, 8)
    for i in range(limit):
        for j in range(limit):
            if i == j:
                continue
            for left in (i, m + i):
                for right in (j, m + j):
                    value = system.coverage([left, right])
                    worst_mixed = max(worst_mixed, value)
                    if value > mixed_bound:
                        mixed_ok = False
    return {
        "matched_pairs_cover_u2": matched_ok,
        "mixed_pairs_below_bound": mixed_ok,
        "mixed_bound": mixed_bound,
        "worst_mixed_coverage": worst_mixed,
    }


def good_indices(assignment: Dict[int, str], num_pairs: int) -> List[int]:
    """Lemma 3.7's good indices: i such that S_i and T_i land on different players."""
    good: List[int] = []
    for index in range(num_pairs):
        owner_s = assignment.get(index)
        owner_t = assignment.get(num_pairs + index)
        if owner_s is not None and owner_t is not None and owner_s != owner_t:
            good.append(index)
    return good


def good_index_fraction(assignment: Dict[int, str], num_pairs: int) -> float:
    """Fraction of good indices (Lemma 3.7 predicts ≈ 1/2)."""
    if num_pairs == 0:
        return 0.0
    return len(good_indices(assignment, num_pairs)) / num_pairs
