"""Empirical machinery for Lemma 2.2 (coverage of random large sets).

Lemma 2.2: let ``S_1, ..., S_k`` be independent uniformly random
``(n−s)``-subsets of ``[n]`` and ``U ⊆ [n]`` be independent of them with
``k = o(e^s)``.  Then

    P( |U \\ (S_1 ∪ ... ∪ S_k)| < (|U|/2)·(s/2n)^k ) < 2·exp(−(|U|/8)·(s/2n)^k).

The E4 benchmark runs the random process directly and compares the empirical
shortfall probability against the lemma's bound, including the coupling-to-
independent-drops distribution ``D'`` the proof introduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.utils.rng import SeedLike, spawn_rng


@dataclass
class CoverageTrial:
    """Outcome of one draw of the Lemma 2.2 random process."""

    uncovered_count: int
    threshold: float
    below_threshold: bool


def lemma_2_2_threshold(universe_size: int, u_size: int, s: int, k: int) -> float:
    """The lemma's lower threshold (|U|/2)·(s/2n)^k."""
    if universe_size <= 0:
        raise ValueError("universe_size must be positive")
    return (u_size / 2.0) * (s / (2.0 * universe_size)) ** k


def lemma_2_2_bound(universe_size: int, u_size: int, s: int, k: int) -> float:
    """The lemma's failure-probability bound 2·exp(−(|U|/8)·(s/2n)^k)."""
    if universe_size <= 0:
        raise ValueError("universe_size must be positive")
    exponent = (u_size / 8.0) * (s / (2.0 * universe_size)) ** k
    return min(1.0, 2.0 * math.exp(-exponent))


def coverage_shortfall_trial(
    universe_size: int,
    u_size: int,
    s: int,
    k: int,
    seed: SeedLike = None,
    independent_drops: bool = False,
) -> CoverageTrial:
    """Run one trial of the Lemma 2.2 process.

    Parameters
    ----------
    universe_size, u_size, s, k:
        n, |U|, s and k of the lemma.  U is taken to be a fixed ``u_size``-
        subset (the lemma only requires independence from the S_i, which
        holds for any fixed U).
    independent_drops:
        When True, sample from the proof's auxiliary distribution ``D'``
        (every element dropped from each set independently with probability
        s/2n) instead of exact ``(n−s)``-subsets.
    """
    if not 0 < s <= universe_size:
        raise ValueError(f"s must lie in (0, n], got {s}")
    if not 0 <= u_size <= universe_size:
        raise ValueError(f"u_size must lie in [0, n], got {u_size}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    rng = spawn_rng(seed)
    universe_elements = list(range(universe_size))
    u_elements = set(universe_elements[:u_size])

    uncovered = set(u_elements)
    for _ in range(k):
        if independent_drops:
            drop_probability = s / (2.0 * universe_size)
            covered_set = {
                element
                for element in universe_elements
                if not rng.bernoulli(drop_probability)
            }
        else:
            missing = set(rng.sample(universe_elements, s))
            covered_set = set(universe_elements) - missing
        uncovered -= covered_set
        if not uncovered:
            break

    threshold = lemma_2_2_threshold(universe_size, u_size, s, k)
    count = len(uncovered)
    return CoverageTrial(
        uncovered_count=count,
        threshold=threshold,
        below_threshold=count < threshold,
    )


def estimate_uncovered_probability(
    universe_size: int,
    u_size: int,
    s: int,
    k: int,
    trials: int,
    seed: SeedLike = None,
    independent_drops: bool = False,
) -> float:
    """Empirical probability of the lemma's bad event over ``trials`` draws."""
    if trials < 1:
        raise ValueError("trials must be at least 1")
    rng = spawn_rng(seed)
    failures = 0
    for _ in range(trials):
        trial = coverage_shortfall_trial(
            universe_size,
            u_size,
            s,
            k,
            seed=rng.spawn(),
            independent_drops=independent_drops,
        )
        if trial.below_threshold:
            failures += 1
    return failures / trials


def expected_uncovered(universe_size: int, u_size: int, s: int, k: int) -> float:
    """The heuristic expectation |U|·(s/n)^k discussed before the lemma."""
    if universe_size <= 0:
        raise ValueError("universe_size must be positive")
    return u_size * (s / universe_size) ** k


def run_sweep(
    universe_size: int,
    u_size: int,
    s: int,
    ks: Sequence[int],
    trials: int,
    seed: SeedLike = None,
) -> List[dict]:
    """Sweep k and report empirical vs predicted shortfall probabilities."""
    rng = spawn_rng(seed)
    rows = []
    for k in ks:
        empirical = estimate_uncovered_probability(
            universe_size, u_size, s, k, trials, seed=rng.spawn()
        )
        rows.append(
            {
                "k": k,
                "empirical_failure": empirical,
                "lemma_bound": lemma_2_2_bound(universe_size, u_size, s, k),
                "expected_uncovered": expected_uncovered(universe_size, u_size, s, k),
                "threshold": lemma_2_2_threshold(universe_size, u_size, s, k),
            }
        )
    return rows
