"""The hard maximum coverage distribution ``D_MC`` (Section 4.2).

Parameters: ``t1 = 1/ε²`` (GHD gadget size, universe part U1) and
``t2 = 10·t1`` (the pairing part U2); the universe is ``U1 ∪ U2`` with
``n = t1 + t2``.

For every ``i ∈ [m]``:

* draw ``(A_i, B_i) ~ D_GHD^N`` on U1 (hamming distance below the gap);
* randomly split U2 into ``C_i`` (Alice's half) and ``D_i`` (Bob's half);
* set ``S_i := A_i ∪ C_i`` and ``T_i := B_i ∪ D_i``.

Flip θ; when θ = 1 resample ``(A_{i*}, B_{i*}) ~ D_GHD^Y`` for a random i*.
Lemma 4.3: the optimal 2-coverage is ``(1 ± Θ(ε))·τ`` depending on θ, so a
(1−ε)-approximation must determine θ; Claim 4.4: a near-optimal 2-cover must
take a matched pair (S_i, T_i) because mixed pairs cover ≤ (3/4 + 0.2)·t2 of
U2 while matched pairs cover all of it.

Draw protocol: per pair, the GHD gadget's rejection attempts (2·t1 floats
each, see :mod:`repro.problems.ghd`) followed by ``t2`` split uniforms
(``u < 1/2`` sends the U2 element to Alice's half ``C_i``); then the θ flip
and, when θ = 1, the special index and a D_GHD^Y gadget resample (the U2
split is reused).  The split draws batch through
:meth:`~repro.utils.rng.RandomSource.random_array` with packed mask
assembly; the loop path applies identical transforms to identical floats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.communication.protocols.setcover_protocol import SetCoverInput
from repro.exceptions import DistributionError
from repro.problems.ghd import GHDInstance, default_set_sizes, sample_dghd_no, sample_dghd_yes
from repro.setcover.instance import SetSystem
from repro.telemetry import metrics
from repro.telemetry.spans import span
from repro.utils.bitset import bitset_from_indices, mask_from_bools
from repro.utils.rng import SeedLike, batching_numpy, spawn_rng


@dataclass(frozen=True)
class DMCParameters:
    """Parameters of the D_MC sampler.

    ``epsilon`` controls the GHD gadget size ``t1 = ceil(1/ε²)``;
    ``u2_factor`` is the paper's factor 10 relating ``t2`` to ``t1``.
    """

    num_pairs: int  # m in the paper; the instance has 2m sets
    epsilon: float
    u2_factor: int = 10
    ghd_set_sizes: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.num_pairs < 1:
            raise DistributionError("num_pairs must be at least 1")
        if not 0 < self.epsilon < 1:
            raise DistributionError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if self.u2_factor < 1:
            raise DistributionError("u2_factor must be at least 1")

    @property
    def t1(self) -> int:
        """GHD gadget size: ceil(1/ε²)."""
        return max(1, int(round(1.0 / self.epsilon ** 2)))

    @property
    def t2(self) -> int:
        """Size of the pairing part U2."""
        return self.u2_factor * self.t1

    @property
    def universe_size(self) -> int:
        """Total universe size n = t1 + t2."""
        return self.t1 + self.t2

    def resolved_set_sizes(self) -> Tuple[int, int]:
        """The (a, b) sizes used for the GHD gadgets."""
        if self.ghd_set_sizes is not None:
            return self.ghd_set_sizes
        return default_set_sizes(self.t1)


@dataclass
class DMCInstance:
    """One sample from D_MC with full provenance.

    Universe layout: elements ``0..t1-1`` are U1 (the GHD part) and elements
    ``t1..t1+t2-1`` are U2 (the pairing part).  Global set indices follow the
    D_SC convention: ``S_i`` is index ``i``, ``T_i`` is index ``m + i``.
    """

    parameters: DMCParameters
    theta: int
    special_index: Optional[int]
    ghd: List[GHDInstance]
    alice_sets: List[int] = field(default_factory=list)
    bob_sets: List[int] = field(default_factory=list)

    @property
    def universe_size(self) -> int:
        """Universe size n = t1 + t2."""
        return self.parameters.universe_size

    @property
    def num_pairs(self) -> int:
        """Number of (S_i, T_i) pairs m."""
        return self.parameters.num_pairs

    def set_system(self) -> SetSystem:
        """All 2m sets as one system."""
        names = [f"S{i}" for i in range(self.num_pairs)] + [
            f"T{i}" for i in range(self.num_pairs)
        ]
        return SetSystem.from_masks(
            self.universe_size, self.alice_sets + self.bob_sets, names
        )

    def communication_inputs(self) -> Tuple[SetCoverInput, SetCoverInput]:
        """Alice gets all S_i, Bob all T_i (the fixed-partition distribution)."""
        alice = SetCoverInput(
            self.universe_size, {i: mask for i, mask in enumerate(self.alice_sets)}
        )
        bob = SetCoverInput(
            self.universe_size,
            {self.num_pairs + i: mask for i, mask in enumerate(self.bob_sets)},
        )
        return alice, bob

    def pair_coverage(self, index: int) -> int:
        """|S_i ∪ T_i| — the matched-pair coverage for pair ``index``."""
        return self.set_system().coverage([index, self.num_pairs + index])


def _u2_split_masks(rng, t1: int, t2: int) -> Tuple[int, int]:
    """Draw one pair's U2 split: t2 uniforms → (C_i, D_i) masks over [t1, t1+t2).

    Batched through :meth:`~repro.utils.rng.RandomSource.random_array` with a
    single packed-bit assembly per half; the loop path consumes the identical
    floats in the identical ascending element order.
    """
    numpy = batching_numpy()
    draws = rng.random_array(t2) if numpy is not None else None
    if draws is not None:
        in_c = draws < 0.5
        return mask_from_bools(in_c) << t1, mask_from_bools(~in_c) << t1
    batch = rng.random_batch(t2)
    c_elements = [t1 + offset for offset, draw in enumerate(batch) if draw < 0.5]
    d_elements = [t1 + offset for offset, draw in enumerate(batch) if draw >= 0.5]
    return bitset_from_indices(c_elements), bitset_from_indices(d_elements)


def sample_dmc(
    parameters: DMCParameters,
    seed: SeedLike = None,
    theta: Optional[int] = None,
) -> DMCInstance:
    """Sample an instance from D_MC (optionally forcing the hidden bit θ)."""
    rng = spawn_rng(seed)
    m = parameters.num_pairs
    t1 = parameters.t1
    t2 = parameters.t2
    a, b = parameters.resolved_set_sizes()

    with span("sampler.dmc", m=m, t1=t1, t2=t2) as active:
        metrics.add("sampler.dmc_instances")
        ghd_instances: List[GHDInstance] = []
        alice_sets: List[int] = []
        bob_sets: List[int] = []
        c_masks: List[int] = []
        d_masks: List[int] = []
        for _ in range(m):
            pair = sample_dghd_no(t1, a, b, seed=rng)
            ghd_instances.append(pair)
            c_mask, d_mask = _u2_split_masks(rng, t1, t2)
            c_masks.append(c_mask)
            d_masks.append(d_mask)
            alice_sets.append(bitset_from_indices(sorted(pair.alice)) | c_mask)
            bob_sets.append(bitset_from_indices(sorted(pair.bob)) | d_mask)

        if theta is None:
            theta = rng.randint(0, 1)
        if theta not in (0, 1):
            raise DistributionError(f"theta must be 0 or 1, got {theta}")
        special_index: Optional[int] = None
        if theta == 1:
            special_index = rng.randrange(m)
            pair = sample_dghd_yes(t1, a, b, seed=rng)
            ghd_instances[special_index] = pair
            alice_sets[special_index] = (
                bitset_from_indices(sorted(pair.alice)) | c_masks[special_index]
            )
            bob_sets[special_index] = (
                bitset_from_indices(sorted(pair.bob)) | d_masks[special_index]
            )
        active.set(theta=theta)

    return DMCInstance(
        parameters=parameters,
        theta=theta,
        special_index=special_index,
        ghd=ghd_instances,
        alice_sets=alice_sets,
        bob_sets=bob_sets,
    )


def dmc_to_set_system(instance: DMCInstance) -> SetSystem:
    """Convenience alias for :meth:`DMCInstance.set_system`."""
    return instance.set_system()


def lemma_4_3_tau(parameters: DMCParameters) -> float:
    """The threshold τ = t2 + (a+b)/2 + t1/4 separating the two θ cases."""
    a, b = parameters.resolved_set_sizes()
    return parameters.t2 + (a + b) / 2.0 + parameters.t1 / 4.0
