"""The hard set cover distribution ``D_SC`` (Section 3.1) and ``D_SC^rnd``.

For parameters (n, m, α) and ``t ≈ (n / log m)^{1/α}``:

* for every ``i ∈ [m]`` draw a disjointness pair ``(A_i, B_i) ~ D_Disj^N``
  (i.e. with a single planted intersection) and an independent random
  mapping-extension ``f_i``; set ``S_i := [n] \\ f_i(A_i)`` and
  ``T_i := [n] \\ f_i(B_i)``;
* flip ``θ``; when ``θ = 1`` pick ``i* ∈ [m]`` and resample
  ``(A_{i*}, B_{i*}) ~ D_Disj^Y`` (disjoint), so ``S_{i*} ∪ T_{i*} = [n]``
  and the optimal cover has size 2; when ``θ = 0`` every pair misses the
  block of its planted intersection element, and Lemma 3.2 shows
  ``opt > 2α`` w.h.p.
* Alice receives ``S = {S_i}`` and Bob receives ``T = {T_i}``.

``D_SC^rnd`` (Section 3.3) draws the same collections and then assigns each of
the 2m sets to Alice or Bob independently with probability 1/2 — the
random-partition form used to extend the lower bound to random arrival
streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.communication.protocols.setcover_protocol import SetCoverInput
from repro.exceptions import DistributionError
from repro.lowerbound.mapping_extension import MappingExtension, random_mapping_extension
from repro.problems.disjointness import (
    DisjointnessInstance,
    sample_ddisj_no,
    sample_ddisj_yes,
)
from repro.setcover.instance import SetSystem
from repro.utils.bitset import universe_mask
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class DSCParameters:
    """Parameters of the D_SC sampler.

    ``t`` defaults to the unscaled ``(n / ln m)^{1/α}`` (the paper's 2^{-15}
    constant only matters asymptotically); it is clamped to ``[1, n]``.
    """

    universe_size: int
    num_pairs: int  # m in the paper; the instance has 2m sets
    alpha: int
    t: Optional[int] = None

    def resolved_t(self) -> int:
        """The gadget size t actually used by the sampler."""
        if self.t is not None:
            if not 1 <= self.t <= self.universe_size:
                raise DistributionError(
                    f"t must lie in [1, {self.universe_size}], got {self.t}"
                )
            return self.t
        log_m = math.log(max(self.num_pairs, 2))
        value = (self.universe_size / log_m) ** (1.0 / self.alpha)
        return max(1, min(self.universe_size, int(value)))

    def __post_init__(self) -> None:
        if self.universe_size < 2:
            raise DistributionError("universe_size must be at least 2")
        if self.num_pairs < 1:
            raise DistributionError("num_pairs must be at least 1")
        if self.alpha < 1:
            raise DistributionError("alpha must be at least 1")


@dataclass
class DSCInstance:
    """One sample from D_SC with full provenance for verification.

    ``alice_sets[i]`` is the mask of ``S_i`` and ``bob_sets[i]`` of ``T_i``.
    Global set indices: ``S_i`` is index ``i`` and ``T_i`` is index ``m + i``.
    """

    parameters: DSCParameters
    theta: int
    special_index: Optional[int]
    disjointness: List[DisjointnessInstance]
    mappings: List[MappingExtension]
    alice_sets: List[int] = field(default_factory=list)
    bob_sets: List[int] = field(default_factory=list)

    @property
    def universe_size(self) -> int:
        """Universe size n."""
        return self.parameters.universe_size

    @property
    def num_pairs(self) -> int:
        """Number of (S_i, T_i) pairs m."""
        return self.parameters.num_pairs

    def set_system(self) -> SetSystem:
        """All 2m sets as one system: S_0..S_{m-1}, T_0..T_{m-1}."""
        names = [f"S{i}" for i in range(self.num_pairs)] + [
            f"T{i}" for i in range(self.num_pairs)
        ]
        return SetSystem.from_masks(
            self.universe_size, self.alice_sets + self.bob_sets, names
        )

    def communication_inputs(self) -> Tuple[SetCoverInput, SetCoverInput]:
        """The paper's fixed partition: Alice gets all S_i, Bob all T_i."""
        alice = SetCoverInput(
            self.universe_size,
            {i: mask for i, mask in enumerate(self.alice_sets)},
        )
        bob = SetCoverInput(
            self.universe_size,
            {self.num_pairs + i: mask for i, mask in enumerate(self.bob_sets)},
        )
        return alice, bob

    def pair_union_mask(self, index: int) -> int:
        """S_i ∪ T_i as a mask (equals [n] minus f_i(A_i ∩ B_i))."""
        return self.alice_sets[index] | self.bob_sets[index]

    @property
    def planted_opt(self) -> Optional[int]:
        """2 when θ = 1 (the special pair covers [n]); unknown otherwise."""
        return 2 if self.theta == 1 else None


def sample_dsc(
    parameters: DSCParameters,
    seed: SeedLike = None,
    theta: Optional[int] = None,
) -> DSCInstance:
    """Sample an instance from D_SC (optionally forcing the hidden bit θ)."""
    rng = spawn_rng(seed)
    n = parameters.universe_size
    m = parameters.num_pairs
    t = parameters.resolved_t()
    full = universe_mask(n)

    disjointness: List[DisjointnessInstance] = []
    mappings: List[MappingExtension] = []
    alice_sets: List[int] = []
    bob_sets: List[int] = []
    for _ in range(m):
        pair = sample_ddisj_no(t, seed=rng.spawn())
        mapping = random_mapping_extension(n, t, seed=rng.spawn())
        disjointness.append(pair)
        mappings.append(mapping)
        alice_sets.append(full & ~mapping.extend_mask(pair.alice))
        bob_sets.append(full & ~mapping.extend_mask(pair.bob))

    if theta is None:
        theta = rng.randint(0, 1)
    if theta not in (0, 1):
        raise DistributionError(f"theta must be 0 or 1, got {theta}")
    special_index: Optional[int] = None
    if theta == 1:
        special_index = rng.randrange(m)
        pair = sample_ddisj_yes(t, seed=rng.spawn())
        disjointness[special_index] = pair
        mapping = mappings[special_index]
        alice_sets[special_index] = full & ~mapping.extend_mask(pair.alice)
        bob_sets[special_index] = full & ~mapping.extend_mask(pair.bob)

    return DSCInstance(
        parameters=parameters,
        theta=theta,
        special_index=special_index,
        disjointness=disjointness,
        mappings=mappings,
        alice_sets=alice_sets,
        bob_sets=bob_sets,
    )


def sample_dsc_random_partition(
    parameters: DSCParameters,
    seed: SeedLike = None,
    theta: Optional[int] = None,
) -> Tuple[DSCInstance, SetCoverInput, SetCoverInput, Dict[int, str]]:
    """Sample from D_SC^rnd: a D_SC instance with a random 1/2-1/2 set partition.

    Returns the underlying instance, the two players' inputs, and the
    assignment map from global set index to ``"alice"`` / ``"bob"``.
    """
    rng = spawn_rng(seed)
    instance = sample_dsc(parameters, seed=rng.spawn(), theta=theta)
    assignment: Dict[int, str] = {}
    alice_sets: Dict[int, int] = {}
    bob_sets: Dict[int, int] = {}
    for global_index in range(2 * instance.num_pairs):
        if global_index < instance.num_pairs:
            mask = instance.alice_sets[global_index]
        else:
            mask = instance.bob_sets[global_index - instance.num_pairs]
        owner = "alice" if rng.bernoulli(0.5) else "bob"
        assignment[global_index] = owner
        if owner == "alice":
            alice_sets[global_index] = mask
        else:
            bob_sets[global_index] = mask
    return (
        instance,
        SetCoverInput(instance.universe_size, alice_sets),
        SetCoverInput(instance.universe_size, bob_sets),
        assignment,
    )


def dsc_to_set_system(instance: DSCInstance) -> SetSystem:
    """Convenience alias for :meth:`DSCInstance.set_system`."""
    return instance.set_system()
