"""The hard set cover distribution ``D_SC`` (Section 3.1) and ``D_SC^rnd``.

For parameters (n, m, α) and ``t ≈ (n / log m)^{1/α}``:

* for every ``i ∈ [m]`` draw a disjointness pair ``(A_i, B_i) ~ D_Disj^N``
  (i.e. with a single planted intersection) and an independent random
  mapping-extension ``f_i``; set ``S_i := [n] \\ f_i(A_i)`` and
  ``T_i := [n] \\ f_i(B_i)``;
* flip ``θ``; when ``θ = 1`` pick ``i* ∈ [m]`` and resample
  ``(A_{i*}, B_{i*}) ~ D_Disj^Y`` (disjoint), so ``S_{i*} ∪ T_{i*} = [n]``
  and the optimal cover has size 2; when ``θ = 0`` every pair misses the
  block of its planted intersection element, and Lemma 3.2 shows
  ``opt > 2α`` w.h.p.
* Alice receives ``S = {S_i}`` and Bob receives ``T = {T_i}``.

``D_SC^rnd`` (Section 3.3) draws the same collections and then assigns each of
the 2m sets to Alice or Bob independently with probability 1/2 — the
random-partition form used to extend the lower bound to random arrival
streams.

Draw protocol: each pair consumes a fixed float budget from the sampler's
stream — ``t`` gadget rolls, one planted uniform, then ``n`` mapping uniforms
(argsort permutation; see :mod:`repro.lowerbound.mapping_extension`) — in
pair order, followed by the θ flip and, when θ = 1, the special index and
``t`` resample rolls.  The fixed layout lets the sampler draw whole pair
blocks through one :meth:`~repro.utils.rng.RandomSource.random_array` call
(exact MT19937 state transfer) and assemble all 2m masks via packed-bit
matrix operations, while the sequential loop path applies the identical
transforms to the identical floats — batched and loop sampling are
bit-identical.  Mapping-extension provenance is materialised lazily: the
sampler keeps the permutations and builds :class:`MappingExtension` objects
only when ``instance.mappings`` is actually inspected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.communication.protocols.setcover_protocol import SetCoverInput
from repro.exceptions import DistributionError
from repro.lowerbound.mapping_extension import (
    MappingExtension,
    block_sizes,
    blocks_from_block_ids,
    mapping_permutation,
)
from repro.problems.disjointness import (
    DisjointnessInstance,
    gadget_membership_matrix,
    sample_ddisj_no,
    sample_ddisj_yes,
)
from repro.setcover.instance import SetSystem
from repro.telemetry import metrics
from repro.telemetry.spans import span
from repro.utils.bitset import bitset_from_indices, masks_from_bool_rows, universe_mask
from repro.utils.rng import SeedLike, batching_numpy, spawn_rng

#: Bound on the transient float matrix drawn per batched chunk (doubles), the
#: same convention as the generators' row chunking; chunk boundaries never
#: change the stream (draws are consumed sequentially either way).
_PAIR_CHUNK_FLOATS = 1 << 20


@dataclass(frozen=True)
class DSCParameters:
    """Parameters of the D_SC sampler.

    ``t`` defaults to the unscaled ``(n / ln m)^{1/α}`` (the paper's 2^{-15}
    constant only matters asymptotically); it is clamped to ``[1, n]``.
    """

    universe_size: int
    num_pairs: int  # m in the paper; the instance has 2m sets
    alpha: int
    t: Optional[int] = None

    def resolved_t(self) -> int:
        """The gadget size t actually used by the sampler."""
        if self.t is not None:
            if not 1 <= self.t <= self.universe_size:
                raise DistributionError(
                    f"t must lie in [1, {self.universe_size}], got {self.t}"
                )
            return self.t
        log_m = math.log(max(self.num_pairs, 2))
        value = (self.universe_size / log_m) ** (1.0 / self.alpha)
        return max(1, min(self.universe_size, int(value)))

    def __post_init__(self) -> None:
        if self.universe_size < 2:
            raise DistributionError("universe_size must be at least 2")
        if self.num_pairs < 1:
            raise DistributionError("num_pairs must be at least 1")
        if self.alpha < 1:
            raise DistributionError("alpha must be at least 1")


@dataclass
class DSCInstance:
    """One sample from D_SC with full provenance for verification.

    ``alice_sets[i]`` is the mask of ``S_i`` and ``bob_sets[i]`` of ``T_i``.
    Global set indices: ``S_i`` is index ``i`` and ``T_i`` is index ``m + i``.
    """

    parameters: DSCParameters
    theta: int
    special_index: Optional[int]
    disjointness: List[DisjointnessInstance]
    mappings: Sequence[MappingExtension]
    alice_sets: List[int] = field(default_factory=list)
    bob_sets: List[int] = field(default_factory=list)

    @property
    def universe_size(self) -> int:
        """Universe size n."""
        return self.parameters.universe_size

    @property
    def num_pairs(self) -> int:
        """Number of (S_i, T_i) pairs m."""
        return self.parameters.num_pairs

    def set_system(self) -> SetSystem:
        """All 2m sets as one system: S_0..S_{m-1}, T_0..T_{m-1}."""
        names = [f"S{i}" for i in range(self.num_pairs)] + [
            f"T{i}" for i in range(self.num_pairs)
        ]
        return SetSystem.from_masks(
            self.universe_size, self.alice_sets + self.bob_sets, names
        )

    def communication_inputs(self) -> Tuple[SetCoverInput, SetCoverInput]:
        """The paper's fixed partition: Alice gets all S_i, Bob all T_i."""
        alice = SetCoverInput(
            self.universe_size,
            {i: mask for i, mask in enumerate(self.alice_sets)},
        )
        bob = SetCoverInput(
            self.universe_size,
            {self.num_pairs + i: mask for i, mask in enumerate(self.bob_sets)},
        )
        return alice, bob

    def pair_union_mask(self, index: int) -> int:
        """S_i ∪ T_i as a mask (equals [n] minus f_i(A_i ∩ B_i))."""
        return self.alice_sets[index] | self.bob_sets[index]

    @property
    def planted_opt(self) -> Optional[int]:
        """2 when θ = 1 (the special pair covers [n]); unknown otherwise."""
        return 2 if self.theta == 1 else None


class LazyMappings(Sequence):
    """Mapping-extension provenance materialised on demand.

    The batched sampler keeps only each pair's universe permutation; the
    corresponding :class:`MappingExtension` (frozenset blocks plus the
    constructor's disjointness validation) is built — and cached — the first
    time an index is inspected.  Compares equal to any sequence of the same
    materialised mappings, so instances from the batched and loop paths
    compare equal field for field.
    """

    def __init__(self, universe_size: int, t: int, block_id_rows: Sequence) -> None:
        self._universe_size = universe_size
        self._t = t
        self._block_id_rows = block_id_rows
        self._cache: Dict[int, MappingExtension] = {}

    def __len__(self) -> int:
        return len(self._block_id_rows)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        if index not in self._cache:
            self._cache[index] = MappingExtension(
                universe_size=self._universe_size,
                blocks=blocks_from_block_ids(self._block_id_rows[index], self._t),
            )
        return self._cache[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (LazyMappings, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyMappings(count={len(self)}, materialised={len(self._cache)})"


def _sample_pairs_loop(rng, n: int, m: int, t: int):
    """The sequential pair loop: per-draw transforms of the same float stream."""
    full = universe_mask(n)
    disjointness: List[DisjointnessInstance] = []
    block_id_rows: List[List[int]] = []
    alice_sets: List[int] = []
    bob_sets: List[int] = []
    sizes = block_sizes(n, t)
    for _ in range(m):
        pair = sample_ddisj_no(t, seed=rng)
        permutation = mapping_permutation(n, rng)
        block_of_element = [0] * n
        cursor = 0
        for block_index, size in enumerate(sizes):
            for position in range(cursor, cursor + size):
                block_of_element[permutation[position]] = block_index
            cursor += size
        in_alice = [False] * t
        in_bob = [False] * t
        for element in pair.alice:
            in_alice[element] = True
        for element in pair.bob:
            in_bob[element] = True
        alice_elements = [
            element for element in range(n) if not in_alice[block_of_element[element]]
        ]
        bob_elements = [
            element for element in range(n) if not in_bob[block_of_element[element]]
        ]
        disjointness.append(pair)
        block_id_rows.append(block_of_element)
        alice_sets.append(full & bitset_from_indices(alice_elements))
        bob_sets.append(full & bitset_from_indices(bob_elements))
    return disjointness, block_id_rows, alice_sets, bob_sets


def _block_ids_batched(numpy, mapping_floats, sizes):
    """Per-element block ids for a chunk of mapping draws, vectorized.

    A mapping draw assigns element ``e`` the block whose rank range contains
    ``rank(e)`` in the stable ascending order of the row's floats.  Ranks
    themselves are never needed — only which of the ``t-1`` boundary ranks an
    element's draw clears — so each row takes an O(n) ``partition`` for the
    boundary values plus one flat ``searchsorted`` (rows offset into disjoint
    value ranges) instead of a full argsort.  Rows where a boundary value is
    duplicated (ties straddling a block boundary, a measure-zero event) are
    detected by their block-size histogram and recomputed with the stable
    argsort, so the result always equals the loop path's slicing.
    """
    rows, n = mapping_floats.shape
    t = len(sizes)
    if t == 1:
        return numpy.zeros((rows, n), dtype=numpy.int64)
    boundaries = numpy.cumsum(sizes[:-1])
    partitioned = numpy.partition(mapping_floats, boundaries, axis=1)
    boundary_values = partitioned[:, boundaries]
    if t <= 16:
        # Few boundaries: a broadcast compare-and-sum beats searchsorted.
        block_ids = (
            mapping_floats[:, None, :] >= boundary_values[:, :, None]
        ).sum(axis=1, dtype=numpy.int64)
    else:
        row_offsets = 2.0 * numpy.arange(rows)[:, None]
        flat_boundaries = (boundary_values + row_offsets).ravel()
        flat_draws = (mapping_floats + row_offsets).ravel()
        block_ids = (
            numpy.searchsorted(flat_boundaries, flat_draws, side="right").reshape(rows, n)
            - numpy.arange(rows)[:, None] * (t - 1)
        )
    counts = numpy.bincount(
        (block_ids + numpy.arange(rows)[:, None] * t).ravel(), minlength=rows * t
    ).reshape(rows, t)
    expected = numpy.asarray(sizes)
    bad_rows = numpy.nonzero((counts != expected[None, :]).any(axis=1))[0]
    if len(bad_rows):  # pragma: no cover - measure-zero boundary ties
        block_of_position = numpy.repeat(numpy.arange(t), sizes)
        for row in bad_rows:
            order = numpy.argsort(mapping_floats[row], kind="stable")
            block_ids[row, order] = block_of_position
    return block_ids


def _sample_pairs_batched(numpy, rng, n: int, m: int, t: int):
    """Bulk pair sampling: one float draw + vectorized masks per pair chunk."""
    stride = t + 1 + n
    chunk_pairs = max(1, _PAIR_CHUNK_FLOATS // stride)
    sizes = block_sizes(n, t)
    disjointness: List[DisjointnessInstance] = []
    block_id_rows: List = []
    alice_sets: List[int] = []
    bob_sets: List[int] = []
    for start in range(0, m, chunk_pairs):
        rows = min(chunk_pairs, m - start)
        draws = rng.random_array(rows * stride)
        if draws is None:
            # Too small a batch to amortise the state transfer (or NumPy
            # went away): the loop path consumes the identical draws.
            part = _sample_pairs_loop(rng, n, rows, t)
            disjointness.extend(part[0])
            block_id_rows.extend(part[1])
            alice_sets.extend(part[2])
            bob_sets.extend(part[3])
            continue
        block = draws.reshape(rows, stride)
        in_alice, in_bob, planted = gadget_membership_matrix(numpy, block, t)
        block_of_element = _block_ids_batched(numpy, block[:, t + 1 :], sizes)
        alice_sets.extend(
            masks_from_bool_rows(
                ~numpy.take_along_axis(in_alice, block_of_element, axis=1)
            )
        )
        bob_sets.extend(
            masks_from_bool_rows(
                ~numpy.take_along_axis(in_bob, block_of_element, axis=1)
            )
        )
        for row in range(rows):
            disjointness.append(
                DisjointnessInstance(
                    t=t,
                    alice=frozenset(numpy.nonzero(in_alice[row])[0].tolist()),
                    bob=frozenset(numpy.nonzero(in_bob[row])[0].tolist()),
                    z=1,
                    planted_element=int(planted[row]),
                )
            )
            block_id_rows.append(block_of_element[row])
    return disjointness, block_id_rows, alice_sets, bob_sets


def _rebuild_pair_masks(
    pair: DisjointnessInstance, mapping: MappingExtension, full: int
) -> Tuple[int, int]:
    """Masks of (S, T) for one pair under an already-drawn mapping."""
    return (
        full & ~mapping.extend_mask(pair.alice),
        full & ~mapping.extend_mask(pair.bob),
    )


def sample_dsc(
    parameters: DSCParameters,
    seed: SeedLike = None,
    theta: Optional[int] = None,
) -> DSCInstance:
    """Sample an instance from D_SC (optionally forcing the hidden bit θ).

    Sampling cost is O(total incidences): the whole pair block draws through
    bulk :meth:`~repro.utils.rng.RandomSource.random_array` calls and the 2m
    masks assemble as packed-bit matrix rows.  Without NumPy (or with
    ``REPRO_SAMPLER_BATCH=off``) the per-draw loop path runs instead,
    producing bit-identical instances from the identical float stream.
    """
    rng = spawn_rng(seed)
    n = parameters.universe_size
    m = parameters.num_pairs
    t = parameters.resolved_t()
    full = universe_mask(n)

    with span("sampler.dsc", n=n, m=m, t=t) as active:
        metrics.add("sampler.dsc_instances")
        numpy = batching_numpy()
        if numpy is not None:
            disjointness, block_id_rows, alice_sets, bob_sets = _sample_pairs_batched(
                numpy, rng, n, m, t
            )
        else:
            disjointness, block_id_rows, alice_sets, bob_sets = _sample_pairs_loop(
                rng, n, m, t
            )
        mappings = LazyMappings(n, t, block_id_rows)

        if theta is None:
            theta = rng.randint(0, 1)
        if theta not in (0, 1):
            raise DistributionError(f"theta must be 0 or 1, got {theta}")
        special_index: Optional[int] = None
        if theta == 1:
            special_index = rng.randrange(m)
            pair = sample_ddisj_yes(t, seed=rng)
            disjointness[special_index] = pair
            alice_sets[special_index], bob_sets[special_index] = _rebuild_pair_masks(
                pair, mappings[special_index], full
            )
        active.set(theta=theta, batched=numpy is not None)

    return DSCInstance(
        parameters=parameters,
        theta=theta,
        special_index=special_index,
        disjointness=disjointness,
        mappings=mappings,
        alice_sets=alice_sets,
        bob_sets=bob_sets,
    )


def sample_dsc_random_partition(
    parameters: DSCParameters,
    seed: SeedLike = None,
    theta: Optional[int] = None,
) -> Tuple[DSCInstance, SetCoverInput, SetCoverInput, Dict[int, str]]:
    """Sample from D_SC^rnd: a D_SC instance with a random 1/2-1/2 set partition.

    Returns the underlying instance, the two players' inputs, and the
    assignment map from global set index to ``"alice"`` / ``"bob"``.
    """
    rng = spawn_rng(seed)
    instance = sample_dsc(parameters, seed=rng.spawn(), theta=theta)
    assignment: Dict[int, str] = {}
    alice_sets: Dict[int, int] = {}
    bob_sets: Dict[int, int] = {}
    draws = rng.random_batch(2 * instance.num_pairs)
    for global_index in range(2 * instance.num_pairs):
        if global_index < instance.num_pairs:
            mask = instance.alice_sets[global_index]
        else:
            mask = instance.bob_sets[global_index - instance.num_pairs]
        owner = "alice" if draws[global_index] < 0.5 else "bob"
        assignment[global_index] = owner
        if owner == "alice":
            alice_sets[global_index] = mask
        else:
            bob_sets[global_index] = mask
    return (
        instance,
        SetCoverInput(instance.universe_size, alice_sets),
        SetCoverInput(instance.universe_size, bob_sets),
        assignment,
    )


def dsc_to_set_system(instance: DSCInstance) -> SetSystem:
    """Convenience alias for :meth:`DSCInstance.set_system`."""
    return instance.set_system()
