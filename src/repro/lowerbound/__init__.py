"""The paper's lower-bound constructions and their empirical verifiers.

* Mapping-extensions (Definition 3).
* The hard set cover distribution ``D_SC`` (Section 3.1) and its random
  partitioning ``D_SC^rnd`` (Section 3.3).
* The hard maximum coverage distribution ``D_MC`` (Section 4.2) and its
  random partitioning.
* The reduction protocols of Lemma 3.4 (solving Disj via a SetCover protocol)
  and Lemma 4.5 (solving GHD via a MaxCover protocol).
* Monte-Carlo verifiers of the supporting lemmas (Lemma 2.2, Lemma 3.2,
  Claim 3.3, Lemma 4.3, Claim 4.4, Lemma 3.7's good-index count).
"""

from repro.lowerbound.mapping_extension import MappingExtension, random_mapping_extension
from repro.lowerbound.dsc import (
    DSCInstance,
    DSCParameters,
    sample_dsc,
    sample_dsc_random_partition,
    dsc_to_set_system,
)
from repro.lowerbound.dmc import (
    DMCInstance,
    DMCParameters,
    sample_dmc,
    dmc_to_set_system,
)
from repro.lowerbound.covering_lemma import (
    coverage_shortfall_trial,
    lemma_2_2_bound,
    estimate_uncovered_probability,
)
from repro.lowerbound.properties import (
    check_remark_3_1,
    dsc_opt_gap,
    dmc_value_gap,
    good_indices,
)
from repro.lowerbound.reduction import (
    DisjViaSetCoverProtocol,
    GHDViaMaxCoverProtocol,
)

__all__ = [
    "MappingExtension",
    "random_mapping_extension",
    "DSCInstance",
    "DSCParameters",
    "sample_dsc",
    "sample_dsc_random_partition",
    "dsc_to_set_system",
    "DMCInstance",
    "DMCParameters",
    "sample_dmc",
    "dmc_to_set_system",
    "coverage_shortfall_trial",
    "lemma_2_2_bound",
    "estimate_uncovered_probability",
    "check_remark_3_1",
    "dsc_opt_gap",
    "dmc_value_gap",
    "good_indices",
    "DisjViaSetCoverProtocol",
    "GHDViaMaxCoverProtocol",
]
