"""The runner registry: every function the runtime can schedule, by name.

Scenarios, tasks, and the result store reference experiment functions by
*name* so work stays picklable and workers can re-resolve callables after a
fork/spawn.  The paper's twelve experiments live in
:data:`~repro.experiments.experiment_defs.EXPERIMENT_REGISTRY`; this module
merges them with the workload runners of
:mod:`repro.experiments.workload_defs` into the single registry the runtime
layer consumes.  ``EXPERIMENT_REGISTRY`` itself stays exactly the paper's
E1–E12 (the CLI's ``run all`` contract).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.experiments.experiment_defs import (
    EXPERIMENT_DESCRIPTIONS,
    EXPERIMENT_REGISTRY,
)
from repro.experiments.workload_defs import WORKLOAD_DESCRIPTIONS, WORKLOAD_RUNNERS

#: Every schedulable runner: the paper experiments plus the workload sweeps.
RUNNER_REGISTRY: Dict[str, Callable[..., Any]] = {
    **EXPERIMENT_REGISTRY,
    **WORKLOAD_RUNNERS,
}

#: Human-readable descriptions for every registered runner.
RUNNER_DESCRIPTIONS: Dict[str, str] = {
    **EXPERIMENT_DESCRIPTIONS,
    **WORKLOAD_DESCRIPTIONS,
}
