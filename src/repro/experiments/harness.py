"""Shared infrastructure for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.utils.tables import Table


@dataclass
class ExperimentResult:
    """One experiment's output: a table of rows plus summary findings.

    Attributes
    ----------
    experiment_id:
        E1..E12 identifier from DESIGN.md.
    title:
        Human-readable description of the reproduced claim.
    table:
        The rows the experiment reports (the analogue of a paper table).
    findings:
        Named scalar conclusions (fitted exponents, gaps, error rates) that
        the benchmark assertions and EXPERIMENTS.md reference.
    """

    experiment_id: str
    title: str
    table: Table
    findings: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Render the table and findings as printable text."""
        lines = [f"[{self.experiment_id}] {self.title}", self.table.render()]
        if self.findings:
            lines.append("findings:")
            for key in sorted(self.findings):
                lines.append(f"  {key} = {self.findings[key]}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class SweepRunner:
    """Runs a function over a grid of parameter settings and collects rows.

    By default settings run serially in-process.  Passing ``workers > 1``
    emits the sweep as runtime tasks through
    :func:`repro.runtime.executor.parallel_map`, sharding the settings across
    worker processes; rows always come back in setting order, so the
    resulting table is identical to the serial one (``runner`` must be
    picklable — a module-level function — for the parallel path).
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None) -> None:
        self.table = Table(headers, title=title)

    def run(
        self,
        settings: Iterable[Dict[str, Any]],
        runner: Callable[[Dict[str, Any]], Sequence[Any]],
        workers: int = 1,
        chunksize: Optional[int] = None,
    ) -> Table:
        """Apply ``runner`` to each setting dict; each call returns one row."""
        ordered = list(settings)
        if workers > 1:
            from repro.runtime.executor import parallel_map

            rows = parallel_map(runner, ordered, workers=workers, chunksize=chunksize)
        else:
            rows = [runner(setting) for setting in ordered]
        for row in rows:
            self.table.add_row(*row)
        return self.table


def summarize_results(results: Iterable[ExperimentResult]) -> str:
    """Concatenate rendered experiment results with separators."""
    blocks = [result.render() for result in results]
    separator = "\n" + "=" * 72 + "\n"
    return separator.join(blocks)
