"""Serialisation and reporting of experiment results.

The CLI (:mod:`repro.cli`) and downstream notebooks need experiment results
in machine-readable form; this module converts :class:`ExperimentResult`
objects to/from plain dictionaries, writes JSON files, and renders a combined
markdown report (one ``## <id> — <title>`` section per experiment).

Markdown rendering delegates to :mod:`repro.analysis.render` — the
tradeoff-analysis subsystem owns all report generation; this module keeps
only the (de)serialisation primitives the runtime store is built on, plus
thin wrappers preserving the legacy entry points.  For full paper-style
tradeoff reports over a result-store directory, use ``repro report`` /
:func:`repro.analysis.render.build_report` instead.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.experiments.harness import ExperimentResult
from repro.utils.tables import Table

PathLike = Union[str, Path]


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Convert an ExperimentResult into JSON-serialisable plain data."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "table": {
            "title": result.table.title,
            "headers": list(result.table.headers),
            "rows": [list(row) for row in result.table.rows],
        },
        "findings": _jsonable(result.findings),
    }


def result_from_dict(payload: Dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    table_payload = payload["table"]
    table = Table(table_payload["headers"], title=table_payload.get("title"))
    for row in table_payload["rows"]:
        table.add_row(*row)
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        table=table,
        findings=dict(payload.get("findings", {})),
    )


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of finding values into JSON-compatible data."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        if value != value or value in (float("inf"), float("-inf")):  # NaN / inf
            return str(value)
        return value
    return str(value)


def save_results_json(
    results: Iterable[ExperimentResult], path: PathLike
) -> Path:
    """Write a list of results to a JSON file and return the path."""
    path = Path(path)
    payload = [result_to_dict(result) for result in results]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results_json(path: PathLike) -> List[ExperimentResult]:
    """Read results previously written by :func:`save_results_json`."""
    payload = json.loads(Path(path).read_text())
    return [result_from_dict(entry) for entry in payload]


def render_markdown_report(
    results: Iterable[ExperimentResult], title: Optional[str] = None
) -> str:
    """Render results as a markdown report (one section per experiment).

    Delegates to :func:`repro.analysis.render.experiment_results_markdown`;
    the section format is stable because downstream notebooks parse it.
    """
    from repro.analysis.render import experiment_results_markdown

    return experiment_results_markdown(list(results), title=title)


def save_markdown_report(
    results: Iterable[ExperimentResult], path: PathLike, title: Optional[str] = None
) -> Path:
    """Write the markdown report to disk and return the path."""
    path = Path(path)
    path.write_text(render_markdown_report(list(results), title=title))
    return path
