"""The twelve experiments of DESIGN.md (the paper's reproducible claims).

Every ``run_*`` function is deterministic given its ``seed`` and returns an
:class:`~repro.experiments.harness.ExperimentResult`.  Default parameters are
sized so each experiment finishes in seconds; the benchmarks pass larger
values where the scaling story needs more range.
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, List, Optional, Sequence

from repro.baselines import (
    EmekRosenSemiStreaming,
    IterativePruningSetCover,
    ProgressiveGreedyPasses,
    SahaGetoorGreedy,
    StoreEverythingSetCover,
)
from repro.communication.protocols.setcover_protocol import (
    FullExchangeSetCoverProtocol,
    TwoPartyAlgorithmOneProtocol,
)
from repro.communication.protocols.maxcover_protocol import (
    FullExchangeMaxCoverProtocol,
    SampledMaxCoverProtocol,
)
from repro.core.algorithm1 import AlgorithmOneConfig, StreamingSetCover
from repro.core.element_sampling import element_sample, sampling_probability
from repro.core.guessing import OptGuessingSetCover
from repro.core.maxcover_stream import StreamingMaxCoverage
from repro.core.tradeoff import (
    fit_power_law,
    theorem1_space_lower_bound,
    theorem2_pass_count,
)
from repro.experiments.harness import ExperimentResult
from repro.infotheory.distributions import JointDistribution
from repro.infotheory.entropy import conditional_mutual_information
from repro.infotheory.facts import (
    check_fact_a4,
    check_fact_chain_rule,
    check_fact_entropy_bounds,
    check_fact_mi_nonnegative,
)
from repro.lowerbound.covering_lemma import lemma_2_2_bound, run_sweep
from repro.lowerbound.dmc import DMCParameters, sample_dmc
from repro.lowerbound.dsc import DSCParameters, sample_dsc, sample_dsc_random_partition
from repro.lowerbound.properties import (
    check_remark_3_1,
    claim_4_4_bounds,
    dmc_value_gap,
    dsc_opt_gap,
    good_index_fraction,
)
from repro.lowerbound.reduction import (
    DisjViaSetCoverProtocol,
    GHDViaMaxCoverProtocol,
    evaluate_disj_reduction,
    evaluate_ghd_reduction,
)
from repro.problems.disjointness import enumerate_ddisj_support, sample_ddisj
from repro.problems.ghd import sample_dghd
from repro.setcover.exact import exact_cover_value
from repro.setcover.greedy import greedy_set_cover
from repro.setcover.instance import SetSystem
from repro.setcover.maxcover import exact_max_coverage
from repro.setcover.verify import is_feasible_cover
from repro.streaming.engine import run_streaming_algorithm
from repro.streaming.stream import StreamOrder
from repro.utils.rng import spawn_rng
from repro.utils.tables import Table
from repro.workloads.adversarial import dsc_stream_instance
from repro.workloads.random_instances import plant_cover_instance


# ---------------------------------------------------------------------------
# E1 — Theorem 2 space scaling: peak space ~ m · n^{1/alpha}
# ---------------------------------------------------------------------------
def run_e01_space_tradeoff(
    universe_sizes: Sequence[int] = (1024, 2048, 4096, 8192),
    num_sets: int = 40,
    alphas: Sequence[int] = (1, 2, 3),
    cover_size: int = 3,
    epsilon: float = 0.5,
    sampling_constant: float = 1.0,
    seed: int = 2017,
) -> ExperimentResult:
    """Measure Algorithm 1's stored projections as n grows, per alpha.

    The quantity fitted is the peak of the ``stored_incidences`` category —
    the ``Õ(m·n^{1/α})`` leading term of Lemma 3.8 (the additive ``+n`` term
    for the uncovered universe is reported separately in the table).  The
    sampling constant is reduced from the paper's 16 so the sampling rate is
    below 1 at laptop-scale n; this changes only constants, not the exponent.
    """
    rng = spawn_rng(seed)
    table = Table(
        ["alpha", "n", "m", "stored_incidences_peak", "total_peak_words", "predicted_lower_bound", "passes"],
        title="E1: Algorithm 1 stored projections vs n (per alpha)",
    )
    findings: Dict[str, Any] = {}
    for alpha in alphas:
        xs: List[float] = []
        ys: List[float] = []
        for n in universe_sizes:
            instance = plant_cover_instance(
                n, num_sets, cover_size, seed=rng.spawn()
            )
            config = AlgorithmOneConfig(
                alpha=alpha,
                opt_guess=cover_size,
                epsilon=epsilon,
                sampling_constant=sampling_constant,
                subinstance_solver="greedy",
            )
            algorithm = StreamingSetCover(config, seed=rng.spawn())
            result = run_streaming_algorithm(algorithm, instance.system)
            stored = result.space.peak_by_category.get("stored_incidences", 0)
            table.add_row(
                alpha,
                n,
                num_sets,
                stored,
                result.space.peak_words,
                theorem1_space_lower_bound(n, num_sets, alpha),
                result.passes,
            )
            xs.append(float(n))
            ys.append(float(max(stored, 1)))
        fit = fit_power_law(xs, ys)
        findings[f"alpha_{alpha}_fitted_exponent"] = round(fit.exponent, 3)
        findings[f"alpha_{alpha}_theoretical_exponent"] = round(1.0 / alpha, 3)
    return ExperimentResult(
        experiment_id="E1",
        title="Space of Algorithm 1 scales as m·n^{1/alpha} (Theorem 2)",
        table=table,
        findings=findings,
    )


# ---------------------------------------------------------------------------
# E2 — Theorem 2 pass count and approximation ratio
# ---------------------------------------------------------------------------
def run_e02_passes_and_approx(
    universe_size: int = 256,
    num_sets: int = 60,
    cover_sizes: Sequence[int] = (2, 4, 6),
    alphas: Sequence[int] = (1, 2, 3),
    epsilon: float = 0.5,
    seed: int = 2018,
) -> ExperimentResult:
    """Check passes ≤ 2α+1 (+cleanup) and solution size ≤ (α+ε)·opt."""
    rng = spawn_rng(seed)
    table = Table(
        ["alpha", "opt", "solution_size", "bound", "passes", "pass_bound", "feasible"],
        title="E2: Algorithm 1 approximation and pass count",
    )
    violations = 0
    pass_violations = 0
    rows = 0
    for alpha in alphas:
        for cover_size in cover_sizes:
            instance = plant_cover_instance(
                universe_size, num_sets, cover_size, seed=rng.spawn()
            )
            config = AlgorithmOneConfig(
                alpha=alpha,
                opt_guess=cover_size,
                epsilon=epsilon,
                subinstance_solver="exact",
            )
            algorithm = StreamingSetCover(config, seed=rng.spawn())
            result = run_streaming_algorithm(algorithm, instance.system)
            feasible = is_feasible_cover(instance.system, result.solution)
            bound = (alpha + epsilon) * cover_size
            pass_bound = theorem2_pass_count(alpha) + 1  # +1 optional clean-up
            rows += 1
            if result.solution_size > bound + 1e-9:
                violations += 1
            if result.passes > pass_bound:
                pass_violations += 1
            table.add_row(
                alpha,
                cover_size,
                result.solution_size,
                bound,
                result.passes,
                pass_bound,
                feasible,
            )
    return ExperimentResult(
        experiment_id="E2",
        title="Algorithm 1 returns ≤ (α+ε)·opt sets in ≤ 2α+1 (+1) passes",
        table=table,
        findings={
            "approx_bound_violations": violations,
            "pass_bound_violations": pass_violations,
            "rows": rows,
        },
    )


# ---------------------------------------------------------------------------
# E3 — Lemma 3.12 element sampling
# ---------------------------------------------------------------------------
def run_e03_element_sampling(
    universe_size: int = 400,
    num_sets: int = 40,
    cover_size: int = 4,
    rhos: Sequence[float] = (0.5, 0.25, 0.1),
    constants: Sequence[float] = (16.0, 4.0, 1.0),
    trials: int = 20,
    seed: int = 2019,
) -> ExperimentResult:
    """Check that covers of the sampled universe cover (1-ρ)·n of the full universe."""
    rng = spawn_rng(seed)
    table = Table(
        ["constant", "rho", "sample_rate", "avg_sample_size", "violation_rate"],
        title="E3: element sampling (Lemma 3.12) across rates and constants",
    )
    findings: Dict[str, Any] = {}
    for constant in constants:
        for rho in rhos:
            violation = 0
            sample_sizes = []
            for _ in range(trials):
                instance = plant_cover_instance(
                    universe_size, num_sets, cover_size, seed=rng.spawn()
                )
                probability = sampling_probability(
                    universe_size, num_sets, cover_size, rho, constant=constant
                )
                sample = element_sample(
                    range(universe_size), probability, seed=rng.spawn()
                )
                sample_sizes.append(len(sample))
                sampled_system = instance.system.restrict_to_elements(sample)
                # A cover of the sample (at most cover_size sets exists since the
                # planted cover covers everything).
                cover = greedy_set_cover(
                    sampled_system,
                    required_mask=sampled_system.coverage_mask(
                        range(sampled_system.num_sets)
                    ),
                )
                covered = instance.system.coverage(cover)
                if covered < (1 - rho) * universe_size:
                    violation += 1
            rate = sampling_probability(
                universe_size, num_sets, cover_size, rho, constant=constant
            )
            table.add_row(
                constant,
                rho,
                round(rate, 4),
                statistics.mean(sample_sizes),
                violation / trials,
            )
            findings[f"c{constant}_rho{rho}_violation_rate"] = violation / trials
    return ExperimentResult(
        experiment_id="E3",
        title="Element sampling preserves (1−ρ)-coverage (Lemma 3.12)",
        table=table,
        findings=findings,
    )


# ---------------------------------------------------------------------------
# E4 — Lemma 2.2 coverage concentration
# ---------------------------------------------------------------------------
def run_e04_covering_lemma(
    universe_size: int = 600,
    u_size: int = 600,
    s: int = 150,
    ks: Sequence[int] = (1, 2, 3, 4),
    trials: int = 200,
    seed: int = 2020,
) -> ExperimentResult:
    """Empirical failure probability of the Lemma 2.2 event vs the proved bound."""
    rows = run_sweep(universe_size, u_size, s, ks, trials, seed=seed)
    table = Table(
        ["k", "empirical_failure", "lemma_bound", "threshold", "expected_uncovered"],
        title="E4: Lemma 2.2 shortfall probability vs bound",
    )
    all_within = True
    for row in rows:
        table.add_row(
            row["k"],
            row["empirical_failure"],
            row["lemma_bound"],
            round(row["threshold"], 3),
            round(row["expected_uncovered"], 3),
        )
        if row["empirical_failure"] > row["lemma_bound"] + 0.05:
            all_within = False
    return ExperimentResult(
        experiment_id="E4",
        title="Random (n−s)-subsets leave the predicted residue uncovered (Lemma 2.2)",
        table=table,
        findings={"all_within_bound": all_within},
    )


# ---------------------------------------------------------------------------
# E5 — Lemma 3.2 / Remark 3.1: the D_SC optimum gap
# ---------------------------------------------------------------------------
def run_e05_dsc_opt_gap(
    universe_size: int = 900,
    num_pairs: int = 8,
    alpha: int = 2,
    t: Optional[int] = 5,
    trials: int = 6,
    seed: int = 2021,
) -> ExperimentResult:
    """Exact optima of D_SC samples: 2 when θ=1, > 2α when θ=0.

    The Lemma 3.2 gap is asymptotic; at finite scale it requires the gadget
    size ``t`` to be well below the unscaled ``(n/log m)^{1/α}`` (the paper's
    own definition carries a 2^{-15} constant for exactly this reason).  The
    defaults use an explicit small ``t`` so the leftover block of every
    non-special pair is large enough that no 2α sets can cover the universe,
    while the exact solver stays fast.
    """
    rng = spawn_rng(seed)
    parameters = DSCParameters(
        universe_size=universe_size, num_pairs=num_pairs, alpha=alpha, t=t
    )
    table = Table(
        ["trial", "theta", "opt", "strong_gap (>2α)", "weak_gap (θ separation)", "remark_3_1_ok"],
        title="E5: optimum gap of the hard distribution D_SC",
    )
    strong_gap_failures = 0
    weak_gap_failures = 0
    theta1_opts: List[int] = []
    theta0_opts: List[int] = []
    for trial in range(trials):
        theta = trial % 2
        instance = sample_dsc(parameters, seed=rng.spawn(), theta=theta)
        verdict = dsc_opt_gap(instance, alpha=alpha)
        remark_ok = all(check.holds for check in check_remark_3_1(instance))
        if not verdict["respects_gap"]:
            strong_gap_failures += 1
        if not verdict["respects_weak_gap"]:
            weak_gap_failures += 1
        (theta1_opts if theta == 1 else theta0_opts).append(verdict["opt"])
        table.add_row(
            trial,
            theta,
            verdict["opt"],
            verdict["respects_gap"],
            verdict["respects_weak_gap"],
            remark_ok,
        )
    return ExperimentResult(
        experiment_id="E5",
        title="D_SC optimum is 2 when θ=1 and > 2α when θ=0 (Lemma 3.2)",
        table=table,
        findings={
            "strong_gap_failures": strong_gap_failures,
            "weak_gap_failures": weak_gap_failures,
            "trials": trials,
            "theta1_max_opt": max(theta1_opts) if theta1_opts else None,
            "theta0_min_opt": min(theta0_opts) if theta0_opts else None,
        },
    )


# ---------------------------------------------------------------------------
# E6 — Communication cost on D_SC: full exchange vs Algorithm-1 protocol
# ---------------------------------------------------------------------------
def run_e06_communication_cost(
    universe_sizes: Sequence[int] = (256, 512, 1024, 2048),
    num_pairs: int = 8,
    alpha: int = 2,
    trials: int = 4,
    sampling_constant: float = 1.0,
    seed: int = 2022,
) -> ExperimentResult:
    """Compare the Θ(mn)-bit trivial protocol with the Õ(α·m·n^{1/α})-bit one."""
    rng = spawn_rng(seed)
    table = Table(
        ["n", "full_exchange_bits", "algorithm1_bits", "ratio", "mean_est_theta0", "mean_est_theta1"],
        title="E6: two-party communication on D_SC",
    )
    ratios: List[float] = []
    xs: List[float] = []
    alg1_bits_series: List[float] = []
    estimates_theta0: List[float] = []
    estimates_theta1: List[float] = []
    for n in universe_sizes:
        parameters = DSCParameters(universe_size=n, num_pairs=num_pairs, alpha=alpha)
        full_bits = []
        alg1_bits = []
        local_estimates: Dict[int, List[float]] = {0: [], 1: []}
        for trial in range(trials):
            theta = trial % 2
            instance = sample_dsc(parameters, seed=rng.spawn(), theta=theta)
            alice, bob = instance.communication_inputs()
            full = FullExchangeSetCoverProtocol(solver="greedy").execute(alice, bob)
            approx = TwoPartyAlgorithmOneProtocol(
                alpha=alpha,
                opt_guess=2,
                seed=rng.spawn(),
                subinstance_solver="greedy",
                sampling_constant=sampling_constant,
            ).execute(alice, bob)
            full_bits.append(full.total_bits)
            alg1_bits.append(approx.total_bits)
            estimate = float(approx.output)
            local_estimates[theta].append(estimate)
            if theta == 0:
                estimates_theta0.append(estimate)
            else:
                estimates_theta1.append(estimate)
        mean_full = statistics.mean(full_bits)
        mean_alg1 = statistics.mean(alg1_bits)
        ratios.append(mean_full / mean_alg1 if mean_alg1 else float("inf"))
        xs.append(float(n))
        alg1_bits_series.append(mean_alg1)
        table.add_row(
            n,
            round(mean_full, 1),
            round(mean_alg1, 1),
            round(mean_full / mean_alg1, 3) if mean_alg1 else float("inf"),
            round(statistics.mean(local_estimates[0]), 2) if local_estimates[0] else "-",
            round(statistics.mean(local_estimates[1]), 2) if local_estimates[1] else "-",
        )
    # The α-approximate protocol's estimates must separate the two θ cases on
    # average (the decision the lower bound shows is expensive to make).
    separation = (
        statistics.mean(estimates_theta0) - statistics.mean(estimates_theta1)
        if estimates_theta0 and estimates_theta1
        else 0.0
    )
    findings: Dict[str, Any] = {
        "ratio_increases_with_n": ratios == sorted(ratios) or ratios[-1] > ratios[0],
        "estimate_separation_theta0_minus_theta1": round(separation, 3),
    }
    if len(xs) >= 2:
        findings["alg1_bits_exponent_vs_n"] = round(
            fit_power_law(xs, alg1_bits_series).exponent, 3
        )
    return ExperimentResult(
        experiment_id="E6",
        title="Protocol cost on D_SC: trivial Θ(mn) vs Algorithm-1 Õ(α·m·n^{1/α})",
        table=table,
        findings=findings,
    )


# ---------------------------------------------------------------------------
# E7 — Lemma 3.4 reduction correctness
# ---------------------------------------------------------------------------
def run_e07_reduction_disj(
    universe_size: int = 240,
    num_pairs: int = 5,
    alpha: int = 2,
    t: Optional[int] = 24,
    trials: int = 10,
    seed: int = 2023,
) -> ExperimentResult:
    """Solve Disj via a set cover oracle on the embedded D_SC instance.

    With an exact inner oracle the decision threshold 2 is justified at any
    scale (a pair covers the universe iff its embedded Disj instance is
    disjoint); the paper's 2α threshold additionally needs the asymptotic
    Lemma 3.2 gap, which E5 checks separately.  ``t`` is large enough that the
    embedded sets concentrate (mixed pairs cannot accidentally cover [n]).
    """
    rng = spawn_rng(seed)
    parameters = DSCParameters(
        universe_size=universe_size, num_pairs=num_pairs, alpha=alpha, t=t
    )
    t = parameters.resolved_t()
    inner = FullExchangeSetCoverProtocol(solver="exact")
    reduction = DisjViaSetCoverProtocol(
        inner, parameters, seed=rng.spawn(), decision_threshold=2
    )
    instances = [sample_ddisj(t, seed=rng.spawn()) for _ in range(trials)]
    error_rate, average_bits = evaluate_disj_reduction(reduction, instances)
    table = Table(
        ["t", "trials", "error_rate", "avg_bits"],
        title="E7: Disj solved through the Lemma 3.4 embedding",
    )
    table.add_row(t, trials, error_rate, round(average_bits, 1))
    return ExperimentResult(
        experiment_id="E7",
        title="The Lemma 3.4 reduction answers Disj correctly",
        table=table,
        findings={"error_rate": error_rate, "t": t},
    )


# ---------------------------------------------------------------------------
# E8 — Random partitioning / random arrival (Lemma 3.7, Theorem 1)
# ---------------------------------------------------------------------------
def run_e08_random_arrival(
    universe_size: int = 48,
    num_pairs: int = 8,
    alpha: int = 2,
    trials: int = 8,
    seed: int = 2024,
) -> ExperimentResult:
    """Good-index fraction under D_SC^rnd and Algorithm 1 on random vs adversarial order."""
    rng = spawn_rng(seed)
    parameters = DSCParameters(
        universe_size=universe_size, num_pairs=num_pairs, alpha=alpha
    )
    fractions = []
    for _ in range(trials):
        _instance, _alice, _bob, assignment = sample_dsc_random_partition(
            parameters, seed=rng.spawn()
        )
        fractions.append(good_index_fraction(assignment, num_pairs))
    mean_fraction = statistics.mean(fractions)

    # Algorithm 1 on the same hard instance under both stream orders.
    table = Table(
        ["order", "theta", "solution_size", "passes", "peak_space"],
        title="E8: random partition statistics and stream-order comparison",
    )
    order_sizes: Dict[str, List[int]] = {"adversarial": [], "random": []}
    for trial in range(trials):
        theta = trial % 2
        instance = dsc_stream_instance(
            universe_size, num_pairs, alpha, theta=theta, seed=rng.spawn()
        )
        for order in (StreamOrder.ADVERSARIAL, StreamOrder.RANDOM):
            config = AlgorithmOneConfig(
                alpha=alpha, opt_guess=2, epsilon=0.5, subinstance_solver="greedy"
            )
            algorithm = StreamingSetCover(config, seed=rng.spawn())
            result = run_streaming_algorithm(
                algorithm,
                instance.system,
                order=order,
                seed=rng.spawn(),
                verify_solution=False,
            )
            order_sizes[order.value].append(result.solution_size)
            table.add_row(
                order.value,
                theta,
                result.solution_size,
                result.passes,
                result.space.peak_words,
            )
    mean_adversarial = statistics.mean(order_sizes["adversarial"])
    mean_random = statistics.mean(order_sizes["random"])
    return ExperimentResult(
        experiment_id="E8",
        title="Random partitioning keeps ≈ m/2 good indices; random order does not help",
        table=table,
        findings={
            "mean_good_index_fraction": round(mean_fraction, 3),
            "mean_solution_adversarial": mean_adversarial,
            "mean_solution_random": mean_random,
            "random_order_advantage": round(mean_adversarial - mean_random, 3),
        },
    )


# ---------------------------------------------------------------------------
# E9 — Lemma 4.3 / Claim 4.4: the D_MC value gap
# ---------------------------------------------------------------------------
def run_e09_dmc_gap(
    num_pairs: int = 5,
    epsilons: Sequence[float] = (0.35, 0.25),
    trials: int = 4,
    seed: int = 2025,
) -> ExperimentResult:
    """Exact max-coverage values of D_MC samples straddle τ according to θ."""
    rng = spawn_rng(seed)
    table = Table(
        ["epsilon", "theta", "opt_value", "tau", "correct_side", "matched_pair"],
        title="E9: maximum coverage gap of D_MC (k = 2)",
    )
    side_failures = 0
    claim_failures = 0
    rows = 0
    for epsilon in epsilons:
        parameters = DMCParameters(num_pairs=num_pairs, epsilon=epsilon)
        for trial in range(trials):
            theta = trial % 2
            instance = sample_dmc(parameters, seed=rng.spawn(), theta=theta)
            verdict = dmc_value_gap(instance)
            claims = claim_4_4_bounds(instance)
            rows += 1
            if not verdict["on_correct_side"]:
                side_failures += 1
            if not (
                claims["matched_pairs_cover_u2"] and claims["mixed_pairs_below_bound"]
            ):
                claim_failures += 1
            table.add_row(
                epsilon,
                theta,
                verdict["opt_value"],
                round(verdict["tau"], 2),
                verdict["on_correct_side"],
                verdict["is_matched_pair"],
            )
    return ExperimentResult(
        experiment_id="E9",
        title="D_MC optimum differs by (1±Θ(ε))·τ with θ (Lemma 4.3, Claim 4.4)",
        table=table,
        findings={
            "side_failures": side_failures,
            "claim_4_4_failures": claim_failures,
            "rows": rows,
        },
    )


# ---------------------------------------------------------------------------
# E10 — Max coverage space/communication grows as m/ε²
# ---------------------------------------------------------------------------
def run_e10_maxcover_tradeoff(
    num_topics: int = 800,
    num_sets: int = 60,
    k: int = 2,
    epsilons: Sequence[float] = (0.5, 0.35, 0.25, 0.18),
    seed: int = 2026,
    ghd_reduction_trials: int = 4,
    ghd_num_pairs: int = 4,
    ghd_epsilon: float = 0.35,
) -> ExperimentResult:
    """Streaming max coverage space vs ε, plus the Lemma 4.5 GHD reduction."""
    rng = spawn_rng(seed)
    from repro.workloads.coverage import topic_coverage_instance

    instance = topic_coverage_instance(num_topics, num_sets, communities=k, seed=rng.spawn())
    table = Table(
        ["epsilon", "peak_space_words", "estimate", "true_opt", "relative_error"],
        title="E10: streaming (1−ε)-approx max coverage space vs ε",
    )
    _, true_opt = exact_max_coverage(instance.system, k)
    xs: List[float] = []
    ys: List[float] = []
    for epsilon in epsilons:
        algorithm = StreamingMaxCoverage(
            k=k, epsilon=epsilon, solver="greedy", seed=rng.spawn()
        )
        result = run_streaming_algorithm(
            algorithm, instance.system, verify_solution=False
        )
        estimate = result.estimated_value or 0.0
        relative_error = abs(estimate - true_opt) / true_opt if true_opt else 0.0
        table.add_row(
            epsilon,
            result.space.peak_words,
            round(estimate, 1),
            true_opt,
            round(relative_error, 3),
        )
        xs.append(1.0 / epsilon)
        ys.append(float(max(result.space.peak_words, 1)))
    fit = fit_power_law(xs, ys)

    # Lemma 4.5 reduction: GHD answered through a max coverage oracle.
    parameters = DMCParameters(num_pairs=ghd_num_pairs, epsilon=ghd_epsilon)
    inner = FullExchangeMaxCoverProtocol(k=2, solver="exact")
    reduction = GHDViaMaxCoverProtocol(inner, parameters, seed=rng.spawn())
    a, b = parameters.resolved_set_sizes()
    ghd_instances = [
        sample_dghd(parameters.t1, a, b, seed=rng.spawn())
        for _ in range(ghd_reduction_trials)
    ]
    ghd_error, _bits = evaluate_ghd_reduction(reduction, ghd_instances)
    return ExperimentResult(
        experiment_id="E10",
        title="(1−ε)-approx max coverage space grows as 1/ε² (Theorems 4/5)",
        table=table,
        findings={
            "space_exponent_vs_inverse_epsilon": round(fit.exponent, 3),
            "theoretical_exponent": 2.0,
            "ghd_reduction_error_rate": ghd_error,
        },
    )


# ---------------------------------------------------------------------------
# E11 — Positioning against prior streaming algorithms
# ---------------------------------------------------------------------------
def run_e11_baselines(
    universe_size: int = 2048,
    num_sets: int = 60,
    cover_size: int = 4,
    alpha: int = 2,
    epsilon: float = 1.0,
    sampling_constant: float = 1.0,
    seed: int = 2027,
) -> ExperimentResult:
    """Pass/space/approximation of Algorithm 1 vs prior streaming algorithms."""
    rng = spawn_rng(seed)
    instance = plant_cover_instance(universe_size, num_sets, cover_size, seed=rng.spawn())
    offline_opt = instance.planted_opt or exact_cover_value(instance.system)

    algorithms = [
        (
            "algorithm1 (one-shot pruning)",
            StreamingSetCover(
                AlgorithmOneConfig(
                    alpha=alpha,
                    opt_guess=offline_opt,
                    epsilon=epsilon,
                    sampling_constant=sampling_constant,
                    subinstance_solver="greedy",
                ),
                seed=rng.spawn(),
            ),
        ),
        (
            "har-peled (iterative pruning)",
            IterativePruningSetCover(
                alpha=alpha,
                opt_guess=offline_opt,
                epsilon=epsilon,
                sampling_constant=sampling_constant,
                seed=rng.spawn(),
            ),
        ),
        ("demaine progressive greedy", ProgressiveGreedyPasses(num_passes=2 * alpha)),
        ("saha-getoor single pass", SahaGetoorGreedy()),
        ("emek-rosen semi-streaming", EmekRosenSemiStreaming()),
        ("store everything", StoreEverythingSetCover(solver="greedy")),
    ]
    table = Table(
        ["algorithm", "solution_size", "approx_ratio", "passes", "peak_space_words"],
        title="E11: streaming set cover algorithms on a planted-cover workload",
    )
    findings: Dict[str, Any] = {"offline_opt": offline_opt}
    for label, algorithm in algorithms:
        result = run_streaming_algorithm(
            algorithm, instance.system, verify_solution=False
        )
        ratio = result.solution_size / offline_opt if offline_opt else float("inf")
        table.add_row(
            label,
            result.solution_size,
            round(ratio, 2),
            result.passes,
            result.space.peak_words,
        )
        key = label.split(" ")[0].replace("-", "_")
        findings[f"{key}_space"] = result.space.peak_words
        findings[f"{key}_ratio"] = round(ratio, 3)
    return ExperimentResult(
        experiment_id="E11",
        title="Algorithm 1 vs prior streaming set cover algorithms",
        table=table,
        findings=findings,
    )


# ---------------------------------------------------------------------------
# E12 — Information-theory toolkit and the Disj information-cost gap
# ---------------------------------------------------------------------------
def run_e12_infotheory(
    t: int = 3,
    seed: int = 2028,
) -> ExperimentResult:
    """Exact information quantities on D_Disj at small t plus Facts A.1–A.4."""
    # Build the exact joint of (A, B, Z) under D_Disj.
    pmf: Dict[tuple, float] = {}
    for alice, bob, z, probability in enumerate_ddisj_support(t):
        key = (tuple(sorted(alice)), tuple(sorted(bob)), z)
        pmf[key] = pmf.get(key, 0.0) + probability
    joint = JointDistribution(["A", "B", "Z"], pmf)

    # Information a trivial transcript (Alice's whole set) reveals.
    transcript_joint = joint.map_variable("Z", "Z", lambda z: z)
    revealed = conditional_mutual_information(joint, ["A"], ["A"], ["B"])

    facts = [
        check_fact_entropy_bounds(joint, "A"),
        check_fact_mi_nonnegative(joint, ["A"], ["B"]),
        check_fact_chain_rule(joint, "A", "B", "Z"),
        check_fact_a4(joint, "A", "B", "Z"),
    ]
    table = Table(
        ["quantity", "value"],
        title="E12: exact information quantities on D_Disj (small t)",
    )
    table.add_row("t", t)
    table.add_row("H(A)-style transcript information I(A:A|B)", round(revealed, 4))
    table.add_row("I(A:B)", round(
        conditional_mutual_information(joint, ["A"], ["B"], []), 4
    ))
    table.add_row("I(A:B|Z)", round(
        conditional_mutual_information(joint, ["A"], ["B"], ["Z"]), 4
    ))
    for fact in facts:
        table.add_row(fact.name, f"lhs={fact.lhs:.4f} rhs={fact.rhs:.4f} holds={fact.holds}")
    all_hold = all(fact.holds for fact in facts)
    return ExperimentResult(
        experiment_id="E12",
        title="Information-theory facts (Appendix A) verified on D_Disj",
        table=table,
        findings={
            "all_facts_hold": all_hold,
            "transcript_information_lower_bound": round(revealed, 4),
        },
    )


#: Short human-readable descriptions (shown by ``repro list`` and the
#: runtime scenario registry).
EXPERIMENT_DESCRIPTIONS: Dict[str, str] = {
    "E1": "Algorithm 1 space scales as m*n^(1/alpha) (Theorem 2)",
    "E2": "Algorithm 1 pass count and approximation bounds (Theorem 2)",
    "E3": "Element sampling preserves coverage (Lemma 3.12)",
    "E4": "Coverage concentration of random large sets (Lemma 2.2)",
    "E5": "Optimum gap of the hard distribution D_SC (Lemma 3.2)",
    "E6": "Two-party communication cost on D_SC (Theorem 3)",
    "E7": "Disjointness via a set cover oracle (Lemma 3.4)",
    "E8": "Random partitioning / random arrival robustness (Lemma 3.7)",
    "E9": "Maximum coverage gap of D_MC (Lemma 4.3 / Claim 4.4)",
    "E10": "Max coverage space grows as m/eps^2 (Theorems 4/5)",
    "E11": "Algorithm 1 vs prior streaming algorithms",
    "E12": "Information-theory facts and D_Disj quantities (Appendix A)",
}


#: Registry used by the benchmark harness and the examples.
EXPERIMENT_REGISTRY = {
    "E1": run_e01_space_tradeoff,
    "E2": run_e02_passes_and_approx,
    "E3": run_e03_element_sampling,
    "E4": run_e04_covering_lemma,
    "E5": run_e05_dsc_opt_gap,
    "E6": run_e06_communication_cost,
    "E7": run_e07_reduction_disj,
    "E8": run_e08_random_arrival,
    "E9": run_e09_dmc_gap,
    "E10": run_e10_maxcover_tradeoff,
    "E11": run_e11_baselines,
    "E12": run_e12_infotheory,
}
