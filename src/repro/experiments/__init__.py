"""Experiment harness: parameter sweeps, result tables, scaling fits.

Each experiment E1–E12 of DESIGN.md has a ``run_*`` function here that
produces a :class:`~repro.experiments.harness.ExperimentResult`; the
``benchmarks/`` directory wraps these in pytest-benchmark targets and prints
the resulting tables, and ``EXPERIMENTS.md`` records representative output.
"""

from repro.experiments.harness import ExperimentResult, SweepRunner, summarize_results
from repro.experiments.experiment_defs import (
    run_e01_space_tradeoff,
    run_e02_passes_and_approx,
    run_e03_element_sampling,
    run_e04_covering_lemma,
    run_e05_dsc_opt_gap,
    run_e06_communication_cost,
    run_e07_reduction_disj,
    run_e08_random_arrival,
    run_e09_dmc_gap,
    run_e10_maxcover_tradeoff,
    run_e11_baselines,
    run_e12_infotheory,
    EXPERIMENT_REGISTRY,
)

__all__ = [
    "ExperimentResult",
    "SweepRunner",
    "summarize_results",
    "run_e01_space_tradeoff",
    "run_e02_passes_and_approx",
    "run_e03_element_sampling",
    "run_e04_covering_lemma",
    "run_e05_dsc_opt_gap",
    "run_e06_communication_cost",
    "run_e07_reduction_disj",
    "run_e08_random_arrival",
    "run_e09_dmc_gap",
    "run_e10_maxcover_tradeoff",
    "run_e11_baselines",
    "run_e12_infotheory",
    "EXPERIMENT_REGISTRY",
]
