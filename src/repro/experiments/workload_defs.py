"""Workload sweeps: the paper's hard distributions as schedulable runs.

``run_workload_sweep`` is a generic experiment runner that builds one
workload instance — the adversarial lower-bound distributions D_SC / D_MC
(experiments E5–E8's hard instances) or the structured random / coverage
generators — streams it to a named set cover algorithm under a chosen
arrival order, and reports the solution quality together with the
:class:`~repro.streaming.space.SpaceReport` peaks.  Registered in the
runner registry under ``"WL"``, it is the runner behind the ``ADV``
scenario grids in :mod:`repro.runtime.scenarios`: every combination of
``{dsc, dmc, random, coverage} × {adversarial, random} × algorithm`` is one
reproducible, store/resume-cacheable task for the sharded executor.

Hard instances may be uncoverable at finite scale (a θ=0 D_SC sample can
leave elements uncovered by every set), so the engine-side verification is
replaced by an explicit feasibility column; ``space_budget`` arms the
engine's :class:`~repro.streaming.space.SpaceMeter` and a budget overrun is
reported as a row outcome instead of aborting the sweep.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.baselines import (
    EmekRosenSemiStreaming,
    IterativePruningSetCover,
    ProgressiveGreedyPasses,
    SahaGetoorGreedy,
    StoreEverythingSetCover,
)
from repro.core.algorithm1 import AlgorithmOneConfig, StreamingSetCover
from repro.exceptions import InfeasibleInstanceError, SpaceBudgetExceededError
from repro.resilience.degrade import record_degradation
from repro.experiments.harness import ExperimentResult
from repro.setcover.greedy import greedy_set_cover
from repro.setcover.instance import SetCoverInstance, SetSystem
from repro.setcover.verify import is_feasible_cover
from repro.streaming.engine import run_streaming_algorithm
from repro.streaming.stream import StreamOrder
from repro.utils.rng import RandomSource, spawn_rng
from repro.utils.tables import Table
from repro.workloads.adversarial import dmc_stream_instance, dsc_stream_instance
from repro.workloads.coverage import topic_coverage_instance
from repro.workloads.random_instances import random_instance

#: The workload axis: adversarial lower-bound distributions plus the
#: structured generators, by registry key.
WORKLOAD_KINDS = ("dsc", "dmc", "random", "coverage")

#: The algorithm axis: Algorithm 1 plus the five set cover baselines of E11.
ALGORITHM_KINDS = (
    "algorithm1",
    "har_peled",
    "demaine",
    "saha_getoor",
    "emek_rosen",
    "store_everything",
)


def _build_instance(
    workload: str,
    rng: RandomSource,
    universe_size: int,
    num_sets: int,
    num_pairs: int,
    alpha: int,
    epsilon: float,
    cover_size: int,
    theta: Optional[int],
) -> SetCoverInstance:
    if workload == "dsc":
        return dsc_stream_instance(
            universe_size, num_pairs, alpha, theta=theta, seed=rng.spawn()
        )
    if workload == "dmc":
        return dmc_stream_instance(num_pairs, epsilon, theta=theta, seed=rng.spawn())
    if workload == "random":
        return random_instance(universe_size, num_sets, seed=rng.spawn())
    if workload == "coverage":
        return topic_coverage_instance(
            universe_size, num_sets, communities=max(2, cover_size), seed=rng.spawn()
        )
    raise ValueError(
        f"unknown workload {workload!r}; expected one of {WORKLOAD_KINDS}"
    )


def _resolve_instance(instance: Any) -> SetCoverInstance:
    """Accept a concrete instance in any of its plane representations.

    ``SetCoverInstance`` passes through; a bare ``SetSystem`` is wrapped; a
    :class:`~repro.setcover.source.SourceDescriptor` (shared-memory or
    container-file reference — what ``repro run --instance-file`` attaches
    to every task) is opened through the instance plane, which keeps a
    file-backed system windowed instead of materialising it.
    """
    if isinstance(instance, SetCoverInstance):
        return instance
    if isinstance(instance, SetSystem):
        return SetCoverInstance(instance)
    from repro.setcover.source import SourceDescriptor, open_source

    if isinstance(instance, SourceDescriptor):
        return SetCoverInstance(SetSystem.from_source(open_source(instance)))
    raise TypeError(
        "instance must be a SetCoverInstance, SetSystem, or SourceDescriptor, "
        f"got {type(instance).__name__}"
    )


def _offline_opt_guess(instance: SetCoverInstance) -> int:
    """Opt guess for the guess-driven algorithms: planted opt or greedy bound.

    Restricting greedy to the coverable part keeps the guess defined on hard
    instances whose union misses part of the universe.
    """
    if instance.planted_opt:
        return instance.planted_opt
    system = instance.system
    coverable = system.coverage_mask(range(system.num_sets))
    if not coverable:
        return 1
    try:
        return max(1, len(greedy_set_cover(system, required_mask=coverable)))
    except InfeasibleInstanceError:  # pragma: no cover - coverable mask given
        return 1


def _build_algorithm(algorithm: str, alpha: int, opt_guess: int, rng: RandomSource):
    if algorithm == "algorithm1":
        return StreamingSetCover(
            AlgorithmOneConfig(
                alpha=alpha,
                opt_guess=opt_guess,
                epsilon=0.5,
                subinstance_solver="greedy",
            ),
            seed=rng.spawn(),
        )
    if algorithm == "har_peled":
        return IterativePruningSetCover(
            alpha=alpha, opt_guess=opt_guess, subinstance_solver="greedy", seed=rng.spawn()
        )
    if algorithm == "demaine":
        return ProgressiveGreedyPasses(num_passes=2 * alpha)
    if algorithm == "saha_getoor":
        return SahaGetoorGreedy()
    if algorithm == "emek_rosen":
        return EmekRosenSemiStreaming()
    if algorithm == "store_everything":
        return StoreEverythingSetCover(solver="greedy")
    raise ValueError(
        f"unknown algorithm {algorithm!r}; expected one of {ALGORITHM_KINDS}"
    )


def run_workload_sweep(
    workload: str = "dsc",
    algorithm: str = "algorithm1",
    order: str = "adversarial",
    universe_size: int = 96,
    num_sets: int = 24,
    num_pairs: int = 6,
    alpha: int = 2,
    epsilon: float = 0.35,
    cover_size: int = 3,
    theta: Optional[int] = None,
    space_budget: Optional[int] = None,
    seed: int = 20170,
    instance: Optional[Any] = None,
) -> ExperimentResult:
    """Run one workload × algorithm × arrival-order combination.

    Deterministic given ``seed``: the instance, the algorithm's internal
    randomness, and the stream-order shuffle draw from derived child
    streams.  The result table carries the space peaks (total and dominant
    category) so hard-instance sweeps through the runtime executor report
    exactly what Theorem 2's space accounting measures.

    ``instance`` short-circuits generation: pass a concrete
    :class:`SetCoverInstance` / :class:`SetSystem`, or a
    :class:`~repro.setcover.source.SourceDescriptor` referencing a shared
    or file-backed instance (``workload`` then only labels the rows, and
    the generator knobs are ignored).  The instance-seed child stream is
    not spawned on this path, so two runs handed the same descriptor — on
    any backing, through any dispatch backend — draw identical algorithm
    and shuffle seeds and report identical bytes.
    """
    stream_order = StreamOrder(order)
    rng = spawn_rng(seed)
    provided = instance is not None
    if provided:
        instance = _resolve_instance(instance)
    else:
        instance = _build_instance(
            workload,
            rng,
            universe_size,
            num_sets,
            num_pairs,
            alpha,
            epsilon,
            cover_size,
            theta,
        )
    system = instance.system
    opt_guess = _offline_opt_guess(instance)
    runner = _build_algorithm(algorithm, alpha, opt_guess, rng)
    stream_seed = rng.spawn()

    budget_exceeded = False
    infeasible = False
    try:
        result = run_streaming_algorithm(
            runner,
            system,
            order=stream_order,
            seed=stream_seed,
            space_budget=space_budget,
            verify_solution=False,
        )
        solution_size: Optional[int] = result.solution_size
        feasible = is_feasible_cover(system, result.solution)
        passes = result.passes
        space = result.space
    except SpaceBudgetExceededError:
        budget_exceeded = True
        solution_size = None
        feasible = False
        passes = None
        space = runner.space.report()
        record_degradation(
            "outcome_row",
            reason="space budget exceeded",
            workload=workload,
            algorithm=algorithm,
        )
    except InfeasibleInstanceError:
        # A θ=0 hard instance can be uncoverable outright; algorithms with
        # offline sub-solves surface that as an exception.  It is a workload
        # outcome, not a sweep failure.
        infeasible = True
        solution_size = None
        feasible = False
        passes = None
        space = runner.space.report()
        record_degradation(
            "outcome_row",
            reason="instance uncoverable",
            workload=workload,
            algorithm=algorithm,
        )

    table = Table(
        [
            "workload",
            "algorithm",
            "order",
            "n",
            "m",
            "solution_size",
            "feasible",
            "passes",
            "peak_space_words",
            "dominant_category",
            "budget_exceeded",
            "instance_uncoverable",
        ],
        title="WL: workload x algorithm x arrival order",
    )
    table.add_row(
        workload,
        algorithm,
        stream_order.value,
        system.universe_size,
        system.num_sets,
        solution_size if solution_size is not None else "-",
        feasible,
        passes if passes is not None else "-",
        space.peak_words,
        space.dominant_category() or "-",
        budget_exceeded,
        infeasible,
    )
    findings: Dict[str, Any] = {
        "workload": workload,
        "algorithm": algorithm,
        "order": stream_order.value,
        "n": system.universe_size,
        "m": system.num_sets,
        "opt_guess": opt_guess,
        "solution_size": solution_size,
        "feasible": feasible,
        "passes": passes,
        # The full SpaceReport, surfaced per row so downstream analysis
        # (repro.analysis) never re-parses the rendered table.
        "peak_space_words": space.peak_words,
        "final_space_words": space.final_words,
        "dominant_category": space.dominant_category(),
        "peak_by_category": dict(space.peak_by_category),
        "stored_incidences_peak": space.peak_by_category.get("stored_incidences", 0),
        "space_budget": space_budget,
        "budget_exceeded": budget_exceeded,
        "instance_uncoverable": infeasible,
    }
    if instance.planted_opt is not None:
        findings["planted_opt"] = instance.planted_opt
    if "theta" in instance.metadata:
        findings["theta"] = instance.metadata["theta"]
    if provided:
        close = getattr(system, "close", None)
        if close is not None:
            close()
    return ExperimentResult(
        experiment_id="WL",
        title=f"{workload} workload, {algorithm}, {stream_order.value} arrival",
        table=table,
        findings=findings,
    )


#: Runners this module contributes to the runner registry.
WORKLOAD_RUNNERS = {"WL": run_workload_sweep}

WORKLOAD_DESCRIPTIONS = {
    "WL": "Workload sweep: {dsc,dmc,random,coverage} x arrival order x algorithm",
}
