"""Clients for the solver service: blocking socket and asyncio stream.

Both speak the framing in :mod:`repro.service.protocol` and return the raw
response dict — status handling is the caller's business (a ``shed`` or
``deadline`` is a *valid answer* from a service under load, not an
exception).  :class:`ServiceClient` is the blocking client the CLI and
tests use; :class:`AsyncServiceClient` is what the load generator drives by
the thousand.

Example — request construction is pure and deterministic::

    >>> req = build_request("r1", "maxcover", params={"k": 3}, deadline_s=0.5)
    >>> sorted(req)
    ['deadline_s', 'id', 'kind', 'params', 'v']
    >>> req["kind"], req["params"]
    ('maxcover', {'k': 3})
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, Optional

from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    read_message,
    recv_message,
    send_message,
    write_message,
)


class ServiceUnavailableError(ConnectionError):
    """The service closed the connection instead of answering."""


def build_request(
    request_id: str,
    kind: str,
    params: Optional[Dict[str, Any]] = None,
    instance: Optional[str] = None,
    deadline_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble one request message (validation happens server-side)."""
    request: Dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request_id, "kind": kind}
    if params is not None:
        request["params"] = params
    if instance is not None:
        request["instance"] = instance
    if deadline_s is not None:
        request["deadline_s"] = deadline_s
    return request


class ServiceClient:
    """A blocking client over one connection; requests run strictly in order."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._seq = 0

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        send_message(self._sock, message)
        response = recv_message(self._sock)
        if response is None:
            raise ServiceUnavailableError(
                f"service at {self.host}:{self.port} closed the connection"
            )
        return response

    def request(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        instance: Optional[str] = None,
        deadline_s: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Send one solver request and block for its response."""
        self._seq += 1
        rid = request_id or f"c{self._seq}"
        return self._roundtrip(
            build_request(rid, kind, params=params, instance=instance, deadline_s=deadline_s)
        )

    def ping(self) -> Dict[str, Any]:
        """Liveness probe (answered inline even while draining)."""
        self._seq += 1
        return self._roundtrip(build_request(f"c{self._seq}", "ping"))

    def health(self) -> Dict[str, Any]:
        """Readiness probe: queue depth, cache stats, pool state, counters."""
        self._seq += 1
        return self._roundtrip(build_request(f"c{self._seq}", "health"))


class AsyncServiceClient:
    """The asyncio twin of :class:`ServiceClient` (one in-order connection)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._seq = 0

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def request(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        instance: Optional[str] = None,
        deadline_s: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Send one request and await its response on this connection."""
        if self._writer is None or self._reader is None:
            raise ServiceUnavailableError("client is not connected")
        self._seq += 1
        rid = request_id or f"c{self._seq}"
        await write_message(
            self._writer,
            build_request(rid, kind, params=params, instance=instance, deadline_s=deadline_s),
        )
        try:
            response = await read_message(self._reader)
        except FrameError as exc:
            raise ServiceUnavailableError(str(exc)) from exc
        if response is None:
            raise ServiceUnavailableError(
                f"service at {self.host}:{self.port} closed the connection"
            )
        return response

    async def ping(self) -> Dict[str, Any]:
        """Liveness probe (answered inline even while draining)."""
        if self._writer is None or self._reader is None:
            raise ServiceUnavailableError("client is not connected")
        self._seq += 1
        await write_message(self._writer, build_request(f"c{self._seq}", "ping"))
        response = await read_message(self._reader)
        if response is None:
            raise ServiceUnavailableError(
                f"service at {self.host}:{self.port} closed the connection"
            )
        return response

    async def health(self) -> Dict[str, Any]:
        """Readiness probe: queue depth, cache stats, pool state, counters."""
        if self._writer is None or self._reader is None:
            raise ServiceUnavailableError("client is not connected")
        self._seq += 1
        await write_message(self._writer, build_request(f"c{self._seq}", "health"))
        response = await read_message(self._reader)
        if response is None:
            raise ServiceUnavailableError(
                f"service at {self.host}:{self.port} closed the connection"
            )
        return response


__all__ = [
    "AsyncServiceClient",
    "ServiceClient",
    "ServiceUnavailableError",
    "build_request",
]
