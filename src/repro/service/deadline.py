"""Cooperative deadline propagation: an ambient, zero-cost cancellation token.

A :class:`Deadline` is a monotonic-clock expiry instant.  The service front
end arms one per request with :func:`deadline_scope`; deep compute layers —
:class:`~repro.streaming.engine.MultiPassEngine` and the pass grants in
:class:`~repro.streaming.stream.SetStream` — call :func:`check_deadline` at
their natural cancellation points and raise
:class:`~repro.exceptions.DeadlineExceededError` once the budget is gone.

The discipline mirrors telemetry's off-switch: when no deadline is armed the
check is one context-variable load and a ``None`` test, so batch sweeps pay
nothing.  Contextvars also give the right asyncio semantics for free — each
request task carries its own deadline without any threading of handles.

Checks are *cooperative* and only placed at pass boundaries: a request is
never torn down mid-kernel-call (which could leave shared state inconsistent)
but also never survives a whole extra pass once its budget is spent — the
serving analogue of the streaming model's "bounded resources per pass".

Example — an expired deadline trips the check, an absent one is free::

    >>> from repro.exceptions import DeadlineExceededError
    >>> check_deadline()  # no deadline armed: a no-op
    >>> with deadline_scope(Deadline.after(3600.0)):
    ...     check_deadline()  # plenty of budget left
    ...     remaining_budget() > 3590.0
    True
    >>> with deadline_scope(Deadline(expires_at=0.0)):  # already in the past
    ...     try:
    ...         check_deadline()
    ...     except DeadlineExceededError as exc:
    ...         print(exc.overrun > 0.0)
    True
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.exceptions import DeadlineExceededError

#: The monotonic clock deadlines are measured against (same as telemetry's).
clock = time.perf_counter

#: The ambient deadline; ``None`` (the default) means "no deadline armed"
#: and keeps every check a single context-variable load.
_DEADLINE: "ContextVar[Optional[Deadline]]" = ContextVar(
    "repro_service_deadline", default=None
)


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry instant on the monotonic clock.

    Deadlines never cross process boundaries as absolute instants — the two
    processes' monotonic clocks are unrelated — so the service ships the
    *remaining* budget (:meth:`remaining`) and the worker re-anchors it with
    :meth:`after`.
    """

    expires_at: float

    @classmethod
    def after(cls, budget_s: float) -> "Deadline":
        """A deadline ``budget_s`` seconds from now."""
        return cls(expires_at=clock() + budget_s)

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.expires_at - clock()

    @property
    def expired(self) -> bool:
        return clock() >= self.expires_at


def current_deadline() -> Optional[Deadline]:
    """The ambient deadline, or ``None`` when no scope is active."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[None]:
    """Make ``deadline`` ambient for the block (``None`` clears any outer one).

    Scopes nest: an inner scope with an *earlier* expiry tightens the budget;
    callers that want the effective minimum of nested deadlines should arm
    ``Deadline(min(inner, outer.expires_at))`` themselves — the scope is
    deliberately a plain set/reset so its cost stays trivial.
    """
    token = _DEADLINE.set(deadline)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def check_deadline() -> None:
    """Raise :class:`DeadlineExceededError` if the ambient deadline passed.

    The cooperative cancellation point: one contextvar load when no deadline
    is armed, one clock read when one is.  Placed at streaming pass
    boundaries and service dispatch edges — cheap enough for both.
    """
    deadline = _DEADLINE.get()
    if deadline is None:
        return
    overrun = clock() - deadline.expires_at
    if overrun >= 0.0:
        raise DeadlineExceededError(overrun)


def remaining_budget(default: Optional[float] = None) -> Optional[float]:
    """Seconds left on the ambient deadline, or ``default`` when none is armed.

    Never negative: an expired deadline reports 0.0 (callers use this to ship
    a non-negative budget across a process boundary; the expiry itself is
    :func:`check_deadline`'s job).
    """
    deadline = _DEADLINE.get()
    if deadline is None:
        return default
    return max(0.0, deadline.remaining())


__all__ = [
    "Deadline",
    "check_deadline",
    "clock",
    "current_deadline",
    "deadline_scope",
    "remaining_budget",
]
