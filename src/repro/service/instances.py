"""Hot-instance specs: the ``repro serve --instance NAME=SPEC`` grammar.

A served instance is named and described by a compact spec string so a
service, a load generator, and a parity test can all build **the same**
system independently (generation is a pure function of the spec)::

    hot=random:n=128,m=256,seed=7
    planted=planted:n=96,m=192,cover=8,seed=3

Grammar: ``NAME=GENERATOR:key=value,...``.  Generators:

=============  ==========================================================
``random``     :func:`~repro.workloads.random_instances.random_set_system`
               — keys ``n``, ``m``, optional ``density`` / ``set_size``,
               ``seed``
``planted``    :func:`~repro.workloads.random_instances.plant_cover_instance`
               — keys ``n``, ``m``, ``cover`` (planted optimum), optional
               ``overlap``, ``seed``
``file``       a container file written by
               :func:`~repro.workloads.outofcore.generate_to_file` or
               ``SetSystem.to_file`` — keys ``path`` (required) and
               optional ``backing`` (``mmap``, the default, serves the
               instance windowed straight off disk; ``heap`` loads it
               resident)
=============  ==========================================================

Every generator accepts ``backend`` (``auto``/``python``/``numpy``) so the
parity suite can pin the compute kernel per side.

Example — specs are deterministic and name-addressable::

    >>> name, system = build_instance("hot=random:n=32,m=16,seed=5")
    >>> name, system.universe_size, system.num_sets
    ('hot', 32, 16)
    >>> _, again = build_instance("hot=random:n=32,m=16,seed=5")
    >>> system.to_packed().buffer == again.to_packed().buffer
    True
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.setcover.instance import SetSystem

#: The default spec ``repro serve`` uses when no ``--instance`` is given.
#: Sized so every request kind — including ``estimate``, whose multi-pass
#: machinery grows steeply with the universe — answers in well under a
#: second; larger instances are an explicit ``--instance`` decision.
DEFAULT_INSTANCE_SPEC = "hot=random:n=48,m=64,seed=7"


class InstanceSpecError(ValueError):
    """A malformed or unknown instance spec string."""


def _parse_kv(clauses: str) -> Dict[str, Any]:
    options: Dict[str, Any] = {}
    for raw in clauses.split(","):
        clause = raw.strip()
        if not clause:
            continue
        key, sep, value = clause.partition("=")
        if not sep:
            raise InstanceSpecError(f"bad instance option {clause!r}; expected key=value")
        options[key.strip()] = value.strip()
    return options


def _as_int(options: Dict[str, Any], key: str, required: bool = False, default: int = 0) -> int:
    if key not in options:
        if required:
            raise InstanceSpecError(f"instance spec is missing required key {key!r}")
        return default
    try:
        return int(options[key])
    except ValueError:
        raise InstanceSpecError(f"instance key {key!r} must be an integer, got {options[key]!r}")


def build_instance(spec: str) -> Tuple[str, SetSystem]:
    """Build ``(name, system)`` from a ``NAME=GENERATOR:key=value,...`` spec."""
    name, sep, rest = spec.partition("=")
    name = name.strip()
    if not sep or not name or "=" in name:
        raise InstanceSpecError(
            f"bad instance spec {spec!r}; expected NAME=GENERATOR:key=value,..."
        )
    generator, _, clauses = rest.partition(":")
    generator = generator.strip().lower()
    options = _parse_kv(clauses)
    backend = options.pop("backend", "auto")

    if generator == "file":
        # References an on-disk container rather than generating; ``n``/``m``
        # come from the container header, not the spec.
        path = options.get("path")
        if not path:
            raise InstanceSpecError("file instance spec requires a 'path' key")
        backing = options.get("backing", "mmap")
        unknown = set(options) - {"path", "backing"}
        if unknown:
            raise InstanceSpecError(
                f"unknown instance key(s) {sorted(unknown)} in {spec!r}"
            )
        if backing not in ("mmap", "heap"):
            raise InstanceSpecError(
                f"file instance backing must be 'mmap' or 'heap', got {backing!r}"
            )
        from repro.exceptions import InstanceSourceLostError
        from repro.setcover.source import MmapSource

        try:
            source = MmapSource.open(path)
        except (ValueError, OSError, InstanceSourceLostError) as error:
            raise InstanceSpecError(f"cannot open instance file {path!r}: {error}")
        if backing == "heap":
            try:
                system = SetSystem.from_packed(source.to_packed())
            finally:
                source.close()
            if backend != "auto":
                system = _rebackend(system, backend)
        else:
            system = SetSystem.from_source(
                source, backend=None if backend == "auto" else backend
            )
        return name, system

    n = _as_int(options, "n", required=True)
    m = _as_int(options, "m", required=True)
    seed = _as_int(options, "seed", default=0)

    if generator == "random":
        from repro.workloads.random_instances import random_set_system

        density = float(options["density"]) if "density" in options else None
        set_size = _as_int(options, "set_size") if "set_size" in options else None
        known = {"n", "m", "seed", "density", "set_size"}
        system = random_set_system(
            n, m, set_size=set_size, density=density, seed=seed
        )
    elif generator == "planted":
        from repro.workloads.random_instances import plant_cover_instance

        cover = _as_int(options, "cover", required=True)
        overlap = float(options.get("overlap", 0.1))
        known = {"n", "m", "seed", "cover", "overlap"}
        system = plant_cover_instance(
            n, m, cover_size=cover, overlap=overlap, seed=seed
        ).system
    else:
        raise InstanceSpecError(
            f"unknown instance generator {generator!r}; "
            "expected 'random', 'planted', or 'file'"
        )
    unknown = set(options) - known
    if unknown:
        raise InstanceSpecError(f"unknown instance key(s) {sorted(unknown)} in {spec!r}")
    if backend != "auto":
        system = _rebackend(system, backend)
    return name, system


def _rebackend(system: SetSystem, backend: str) -> SetSystem:
    """Rebuild ``system`` with an explicit compute-kernel backend."""
    packed = system.to_packed()
    from dataclasses import replace

    return SetSystem.from_packed(replace(packed, backend=backend))


def instance_digest(system: SetSystem) -> str:
    """The packed-buffer identity of a served instance.

    The same digest the runtime's task fingerprinting uses for concrete
    systems (:func:`repro.runtime.tasks._listify`): SHA-256 over the packed
    incidence buffer, stable across processes, compute backends, and
    instance backings — a file-backed system answers from its container
    header digest without materialising the buffer.
    """
    return system.content_digest()


__all__ = [
    "DEFAULT_INSTANCE_SPEC",
    "InstanceSpecError",
    "build_instance",
    "instance_digest",
]
