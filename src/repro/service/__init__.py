"""Solver-as-a-service: a long-lived async front end over hot instances.

``repro.service`` turns the batch stack into a serving path: a long-lived
asyncio server (``repro serve``) holds hot set-system instances in shared
memory (:class:`~repro.runtime.transport.PackedPublication`), accepts
cover / max-coverage / value-estimate requests over a length-prefixed JSON
socket protocol, micro-batches them onto a worker pool, and caches responses
by the packed-buffer request fingerprint.  The robustness layer is the point:

* **Deadlines** (:mod:`~repro.service.deadline`): a contextvar deadline token
  that propagates into cooperative cancellation checks at streaming pass
  boundaries — zero-cost when unset, same off-switch pattern as telemetry.
* **Admission control** (:mod:`~repro.service.server`): a bounded request
  queue; when it is full the service *sheds* with an explicit response,
  never queues unboundedly, never hangs.
* **Worker-side resilience**: worker crashes respawn the pool and re-execute
  under :class:`~repro.resilience.policy.RetryPolicy`; a
  :class:`~repro.resilience.policy.CircuitBreaker` turns persistent pool
  loss into inline degraded execution (requests keep being answered).
* **Graceful drain**: SIGTERM lets in-flight requests finish or time out,
  rejects the queue with explicit ``draining`` responses, and unlinks the
  shared segments deterministically.

``repro loadgen`` (:mod:`~repro.service.loadgen`) drives thousands of seeded
concurrent clients against a running service and reports latency percentiles
and shed rate; ``benchmarks/bench_service.py`` commits them as
``BENCH_service.json``.

This ``__init__`` stays import-light (deadline + protocol only) because the
streaming layer imports the deadline check from here; the server, client,
and load generator are imported from their modules directly.

Example — the deadline token is ambient and cooperative::

    >>> from repro.service.deadline import Deadline, deadline_scope, current_deadline
    >>> current_deadline() is None
    True
    >>> with deadline_scope(Deadline.after(60.0)):
    ...     current_deadline().remaining() > 59.0
    True
"""

from repro.service.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
    remaining_budget,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    STATUSES,
    decode_frame,
    encode_frame,
    recv_message,
    send_message,
)

__all__ = [
    "Deadline",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "STATUSES",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "decode_frame",
    "encode_frame",
    "recv_message",
    "remaining_budget",
    "send_message",
]
