"""Request model of the solver service: validation, compute, fingerprints.

A service request names an instance, a ``kind`` from
:data:`~repro.service.protocol.REQUEST_KINDS`, and kind-specific params.
This module is the *pure* core the whole serving path hangs off:

* :func:`canonical_params` validates params and applies defaults, producing
  the one canonical form that both the fingerprint and the compute see — so
  ``{"k": 4}`` and ``{"k": 4, "extra-default": ...}`` can never fingerprint
  differently while computing identically.
* :func:`compute_response` evaluates a request against a
  :class:`~repro.setcover.SetSystem` deterministically.  Whoever calls it —
  a pool worker, the degraded inline path, a parity test — gets
  byte-identical payloads for the same ``(instance digest, kind, params)``.
* :func:`request_fingerprint` is the cache key: SHA-256 over the canonical
  JSON of the packed-buffer instance digest plus the canonical request.

Example — canonicalisation applies defaults and rejects junk::

    >>> canonical_params("maxcover", {"k": 3})
    {'k': 3}
    >>> canonical_params("estimate", {})
    {'alpha': 2, 'seed': 0}
    >>> try:
    ...     canonical_params("cover", {"bogus": 1})
    ... except BadRequestError as exc:
    ...     print("rejected")
    rejected
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from repro.service.deadline import check_deadline
from repro.service.protocol import REQUEST_KINDS
from repro.setcover.instance import SetSystem

#: Current fingerprint schema version (bump when payload shapes change).
FINGERPRINT_VERSION = 1


class BadRequestError(ValueError):
    """A request that fails validation; mapped to a ``bad_request`` response."""


def _require_int(params: Dict[str, Any], key: str, minimum: int) -> int:
    value = params[key]
    # bool is an int subclass; a boolean k/alpha is a client bug, not a count.
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"param {key!r} must be an integer, got {value!r}")
    if value < minimum:
        raise BadRequestError(f"param {key!r} must be >= {minimum}, got {value}")
    return value


def canonical_params(kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Validate ``params`` for ``kind`` and return the canonical dict.

    Canonical means: defaults applied, unknown keys rejected, value types
    checked — the exact dict that is both fingerprinted and computed.
    """
    if kind not in REQUEST_KINDS:
        raise BadRequestError(
            f"unknown request kind {kind!r}; expected one of {REQUEST_KINDS}"
        )
    if not isinstance(params, dict):
        raise BadRequestError(f"params must be an object, got {type(params).__name__}")
    if kind == "cover":
        allowed: Dict[str, Any] = {}
    elif kind == "maxcover":
        allowed = {"k": None}
    else:  # estimate
        allowed = {"alpha": 2, "seed": 0}
    unknown = set(params) - set(allowed)
    if unknown:
        raise BadRequestError(f"unknown param(s) {sorted(unknown)} for kind {kind!r}")
    if kind == "cover":
        return {}
    if kind == "maxcover":
        if "k" not in params:
            raise BadRequestError("kind 'maxcover' requires integer param 'k'")
        return {"k": _require_int(params, "k", minimum=0)}
    canonical = dict(allowed)
    canonical.update(params)
    canonical["alpha"] = _require_int(canonical, "alpha", minimum=1)
    canonical["seed"] = _require_int({"seed": canonical["seed"]}, "seed", minimum=0)
    return canonical


def request_fingerprint(
    instance_digest: str, kind: str, params: Dict[str, Any]
) -> str:
    """The content-addressed identity of a request against one instance.

    Reuses the runtime's fingerprint discipline: canonical JSON (sorted keys,
    no whitespace) of the packed-buffer digest plus the canonical request,
    hashed SHA-256.  Two requests with this fingerprint are the same pure
    computation, so a cached response is *the* response.
    """
    payload = {
        "v": FINGERPRINT_VERSION,
        "instance": instance_digest,
        "kind": kind,
        "params": params,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def compute_response(
    system: SetSystem, kind: str, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Evaluate one canonical request; pure and deterministic.

    The contract the parity suite pins: for a given packed instance buffer,
    ``kind``, and canonical params, the returned payload is byte-identical
    (as canonical JSON) no matter which process, worker, or kernel backend
    computed it.  ``params`` must already be canonical
    (:func:`canonical_params`).

    Honours the ambient deadline: checked on entry, and — for ``estimate``,
    which runs the real multi-pass streaming machinery — at every pass grant
    inside the engine.
    """
    check_deadline()
    if kind == "cover":
        from repro.setcover.greedy import greedy_set_cover

        solution = greedy_set_cover(system)
        return {
            "kind": "cover",
            "algorithm": "greedy",
            "solution": list(solution),
            "size": len(solution),
            "covered": system.coverage(solution),
            "n": system.universe_size,
            "m": system.num_sets,
        }
    if kind == "maxcover":
        from repro.setcover.maxcover import greedy_max_coverage

        chosen, covered = greedy_max_coverage(system, params["k"])
        return {
            "kind": "maxcover",
            "algorithm": "greedy",
            "k": params["k"],
            "solution": list(chosen),
            "coverage": covered,
            "n": system.universe_size,
            "m": system.num_sets,
        }
    if kind == "estimate":
        from repro.core.value_estimation import SetCoverValueEstimator
        from repro.streaming.engine import run_streaming_algorithm

        estimator = SetCoverValueEstimator(
            alpha=params["alpha"], seed=params["seed"]
        )
        result = run_streaming_algorithm(estimator, system, verify_solution=False)
        return {
            "kind": "estimate",
            "algorithm": estimator.name,
            "alpha": params["alpha"],
            "seed": params["seed"],
            "estimate": result.estimated_value,
            "passes": result.passes,
            "n": system.universe_size,
            "m": system.num_sets,
        }
    raise BadRequestError(f"unknown request kind {kind!r}")  # pragma: no cover


__all__ = [
    "BadRequestError",
    "FINGERPRINT_VERSION",
    "canonical_params",
    "compute_response",
    "request_fingerprint",
]
