"""Bounded LRU response cache keyed by request fingerprint.

Memory-bounded by construction — at most ``capacity`` entries, strict LRU
eviction — because "bounded resources under adversarial demand" applies to
the cache exactly as it does to the request queue: a client sweeping random
fingerprints must only ever evict, never grow the server.

Cached values are the *result payloads* of ``ok`` responses (never sheds,
deadlines, or errors: those are circumstances, not answers).  Since a
fingerprint names a pure computation, a hit is byte-identical to a recompute
— the parity property the serving tests assert.

Example — strict LRU over three slots::

    >>> cache = ResponseCache(capacity=2)
    >>> cache.put("a", {"x": 1}); cache.put("b", {"x": 2})
    >>> cache.get("a")          # refreshes "a"
    {'x': 1}
    >>> cache.put("c", {"x": 3})   # evicts "b", the least recent
    >>> cache.get("b") is None
    True
    >>> sorted(cache.stats().items())
    [('capacity', 2), ('entries', 2), ('evictions', 1), ('hits', 1), ('misses', 1)]
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.telemetry import metrics


class ResponseCache:
    """A strict-LRU mapping ``fingerprint -> result payload``.

    Not thread-safe by design: the service mutates it only from the event
    loop thread.  ``capacity=0`` disables caching entirely (every get is a
    miss, every put a no-op) without branching at the call sites.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached payload, refreshed to most-recent; ``None`` on miss."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            metrics.add("service.cache_misses")
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        metrics.add("service.cache_hits")
        return entry

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        """Insert (or refresh) one payload, evicting the least recent."""
        if self.capacity == 0:
            return
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
            self._entries[fingerprint] = payload
            return
        self._entries[fingerprint] = payload
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            metrics.add("service.cache_evictions")

    def stats(self) -> Dict[str, int]:
        """Counters for health probes and the drain summary."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


__all__ = ["ResponseCache"]
